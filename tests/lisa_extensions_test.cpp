// Tests for the §5 open-question extensions: developer-authored semantics
// and composition of low-level semantics into high-level properties.
#include <gtest/gtest.h>

#include "lisa/authoring.hpp"
#include "lisa/composition.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"

namespace lisa::core {
namespace {

const char* kBilling = R"(
struct Account { id: int; frozen: bool; balance: int; }
fn debit(a: Account, amount: int) {
  a.balance = a.balance - amount;
}
@entry
fn pay(a: Account?, amount: int) {
  if (a == null) { throw "NoSuchAccount"; }
  if (a.frozen) { throw "AccountFrozen"; }
  debit(a, amount);
}
@entry
fn pay_batch(a: Account?, amounts: list<int>) {
  if (a == null) { throw "NoSuchAccount"; }
  let i = 0;
  while (i < len(amounts)) {
    debit(a, amounts[i]);
    i = i + 1;
  }
}
@test
fn test_pay() {
  let a = new Account { id: 1, frozen: false, balance: 100 };
  pay(a, 10);
  assert(a.balance == 90, "debited");
}
)";

DeveloperRule frozen_rule() {
  DeveloperRule rule;
  rule.id = "no-frozen-debit";
  rule.behavior = "A frozen account must never be debited.";
  rule.operation = "debit";
  rule.required_condition = "!(a == null) && !(a.frozen)";
  return rule;
}

TEST(Authoring, AcceptsWellFormedRuleAndCheckerUsesIt) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  const AuthoringFeedback feedback = author_rule(program, frozen_rule());
  ASSERT_TRUE(feedback.accepted) << (feedback.errors.empty() ? "" : feedback.errors[0]);
  EXPECT_TRUE(feedback.errors.empty());
  EXPECT_EQ(feedback.contract.target_fragment, "debit(");

  const ContractCheckReport report = Checker().check(program, feedback.contract);
  EXPECT_EQ(report.verified, 1);  // pay
  EXPECT_EQ(report.violated, 1);  // pay_batch misses the frozen check
}

TEST(Authoring, RejectsUnknownOperation) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  DeveloperRule rule = frozen_rule();
  rule.operation = "charge";
  const AuthoringFeedback feedback = author_rule(program, rule);
  EXPECT_FALSE(feedback.accepted);
  ASSERT_FALSE(feedback.errors.empty());
  EXPECT_NE(feedback.errors[0].find("charge"), std::string::npos);
}

TEST(Authoring, RejectsOutOfFragmentCondition) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  DeveloperRule rule = frozen_rule();
  rule.required_condition = "len(a.history) > 0";
  const AuthoringFeedback feedback = author_rule(program, rule);
  EXPECT_FALSE(feedback.accepted);
}

TEST(Authoring, RejectsInvisibleConditionVariable) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  DeveloperRule rule = frozen_rule();
  rule.required_condition = "!(account.frozen)";  // target frames name it `a`
  const AuthoringFeedback feedback = author_rule(program, rule);
  EXPECT_FALSE(feedback.accepted);
  ASSERT_FALSE(feedback.errors.empty());
  EXPECT_NE(feedback.errors[0].find("account"), std::string::npos);
}

TEST(Authoring, RejectsEmptyIdAndOperation) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  DeveloperRule rule;
  const AuthoringFeedback feedback = author_rule(program, rule);
  EXPECT_FALSE(feedback.accepted);
  EXPECT_GE(feedback.errors.size(), 2u);
}

TEST(Authoring, WarnsOnVacuousRule) {
  const minilang::Program program = minilang::parse_checked(R"(
struct S { ok: bool; }
fn unused_op(s: S) { print(s); }
fn never_called_wrapper(s: S) { unused_op(s); }
@entry
fn main_entry() { print(1); }
)");
  DeveloperRule rule;
  rule.id = "vacuous";
  rule.behavior = "x";
  rule.operation = "unused_op";
  rule.required_condition = "s.ok";
  const AuthoringFeedback feedback = author_rule(program, rule);
  // never_called_wrapper has no real caller so it IS an entry root; the rule
  // is accepted and paths exist — craft true vacuity via a test-only caller.
  EXPECT_TRUE(feedback.accepted);
}

TEST(Composition, PropertyBrokenWhileAConstituentIsViolated) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  TranslationResult translation = translate(proposal, ticket->system);
  const HighLevelProperty property =
      ephemeral_lifecycle_property(std::move(translation.contracts));

  const minilang::Program patched = minilang::parse_checked(ticket->patched_source);
  CheckOptions options;
  options.run_concolic = false;
  const PropertyReport report = Composer(options).evaluate(patched, property);
  EXPECT_EQ(report.status, PropertyStatus::kBroken);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_NE(report.findings[0].find("batch_create"), std::string::npos);
}

TEST(Composition, PropertyGuaranteedOnceEveryPathIsGuarded) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  TranslationResult translation = translate(proposal, ticket->system);
  const HighLevelProperty property =
      ephemeral_lifecycle_property(std::move(translation.contracts));

  std::string guarded = ticket->patched_source;
  const std::string anchor =
      "  let i = 0;\n  while (i < len(paths)) {\n    create_ephemeral_node(";
  const std::size_t pos = guarded.find(anchor);
  ASSERT_NE(pos, std::string::npos);
  guarded.insert(pos, "  if (s.is_closing) {\n    throw \"SessionClosingException\";\n  }\n");

  const minilang::Program program = minilang::parse_checked(guarded);
  CheckOptions options;
  options.run_concolic = false;
  const PropertyReport report = Composer(options).evaluate(program, property);
  EXPECT_EQ(report.status, PropertyStatus::kGuaranteed)
      << (report.findings.empty() ? "" : report.findings[0]);
  EXPECT_NO_THROW(support::Json::parse(report.to_json().dump()));
}

TEST(Composition, MultiConstituentPropertyAggregates) {
  // Combine the mined contract with a developer-authored one over the same
  // codebase: one broken constituent breaks the property.
  const minilang::Program program = minilang::parse_checked(kBilling);
  const AuthoringFeedback feedback = author_rule(program, frozen_rule());
  ASSERT_TRUE(feedback.accepted);

  DeveloperRule null_rule;
  null_rule.id = "no-null-debit";
  null_rule.behavior = "debit requires a resolved account";
  null_rule.operation = "debit";
  null_rule.required_condition = "!(a == null)";
  const AuthoringFeedback null_feedback = author_rule(program, null_rule);
  ASSERT_TRUE(null_feedback.accepted);

  HighLevelProperty property;
  property.id = "billing-integrity";
  property.statement = "no debit on missing or frozen accounts";
  property.constituents = {feedback.contract, null_feedback.contract};

  CheckOptions options;
  options.run_concolic = false;
  const PropertyReport report = Composer(options).evaluate(program, property);
  EXPECT_EQ(report.status, PropertyStatus::kBroken);  // frozen rule violated
  ASSERT_EQ(report.constituent_reports.size(), 2u);
  // The null-check constituent alone holds everywhere.
  EXPECT_EQ(report.constituent_reports[1].violated, 0);
}

TEST(Composition, StatusNamesAreStable) {
  EXPECT_STREQ(property_status_name(PropertyStatus::kGuaranteed), "GUARANTEED");
  EXPECT_STREQ(property_status_name(PropertyStatus::kBroken), "BROKEN");
  EXPECT_STREQ(property_status_name(PropertyStatus::kInconclusive), "INCONCLUSIVE");
}

}  // namespace
}  // namespace lisa::core
