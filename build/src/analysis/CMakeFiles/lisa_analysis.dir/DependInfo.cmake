
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/callgraph.cpp" "src/analysis/CMakeFiles/lisa_analysis.dir/callgraph.cpp.o" "gcc" "src/analysis/CMakeFiles/lisa_analysis.dir/callgraph.cpp.o.d"
  "/root/repo/src/analysis/paths.cpp" "src/analysis/CMakeFiles/lisa_analysis.dir/paths.cpp.o" "gcc" "src/analysis/CMakeFiles/lisa_analysis.dir/paths.cpp.o.d"
  "/root/repo/src/analysis/patterns.cpp" "src/analysis/CMakeFiles/lisa_analysis.dir/patterns.cpp.o" "gcc" "src/analysis/CMakeFiles/lisa_analysis.dir/patterns.cpp.o.d"
  "/root/repo/src/analysis/rename.cpp" "src/analysis/CMakeFiles/lisa_analysis.dir/rename.cpp.o" "gcc" "src/analysis/CMakeFiles/lisa_analysis.dir/rename.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minilang/CMakeFiles/lisa_minilang.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/lisa_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
