# Empty dependencies file for lisa_systems.
# This may be replaced when dependencies are built.
