#include "lisa/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "lisa/journal.hpp"
#include "minilang/sema.hpp"
#include "obs/history.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "staticcheck/screener.hpp"
#include "staticcheck/slice.hpp"
#include "support/jsonl.hpp"
#include "support/log.hpp"

namespace lisa::core {

using support::Json;
using support::JsonArray;
using support::JsonObject;

bool PipelineResult::all_passed() const {
  if (inference_failed) return false;
  for (const ContractCheckReport& report : reports)
    if (!report.passed() || !report.conclusive()) return false;
  return true;
}

ScreeningSummary PipelineResult::screening() const {
  ScreeningSummary summary;
  for (const ContractCheckReport& report : reports) {
    if (report.screen_verdict == "proved-safe") ++summary.proved_safe;
    else if (report.screen_verdict == "proved-violated") ++summary.proved_violated;
    else if (report.screen_verdict == "unknown") ++summary.unknown;
    if (report.screen_skipped_concolic) ++summary.concolic_skipped;
  }
  return summary;
}

int PipelineResult::total_violations() const {
  int total = 0;
  for (const ContractCheckReport& report : reports) {
    total += report.violated;
    total += static_cast<int>(report.structural_violations.size());
    total += report.dynamic.symbolic_violations;
    total += report.schedule_violations;
  }
  return total;
}

int PipelineResult::schedules_explored() const {
  int total = 0;
  for (const ContractCheckReport& report : reports) total += report.schedules_explored;
  return total;
}

double PipelineResult::interleaving_conclusive_fraction() const {
  int explored = 0;
  int conclusive = 0;
  for (const ContractCheckReport& report : reports) {
    if (report.schedules_explored == 0 && report.schedule_conclusive) continue;
    ++explored;
    if (report.schedule_conclusive) ++conclusive;
  }
  return explored == 0 ? 1.0 : static_cast<double>(conclusive) / explored;
}

Json PipelineResult::to_json() const {
  JsonObject root;
  root["proposal"] = proposal.to_json();
  JsonArray contract_entries;
  for (const SemanticContract& contract : contracts)
    contract_entries.push_back(contract.to_json());
  root["contracts"] = Json(std::move(contract_entries));
  JsonArray rejected_entries;
  for (const std::string& entry : rejected) rejected_entries.push_back(Json(entry));
  root["rejected"] = Json(std::move(rejected_entries));
  JsonArray report_entries;
  for (const ContractCheckReport& report : reports)
    report_entries.push_back(report.to_json());
  root["reports"] = Json(std::move(report_entries));
  JsonObject timing;
  timing["infer_ms"] = timings.infer_ms;
  timing["translate_ms"] = timings.translate_ms;
  timing["check_ms"] = timings.check_ms;
  timing["screen_ms"] = timings.screen_ms;
  timing["summary_ms"] = timings.summary_ms;
  timing["total_ms"] = timings.total_ms;
  root["timings"] = Json(std::move(timing));
  const ScreeningSummary summary = screening();
  JsonObject screen;
  screen["proved_safe"] = summary.proved_safe;
  screen["proved_violated"] = summary.proved_violated;
  screen["unknown"] = summary.unknown;
  screen["settled"] = summary.settled();
  screen["settled_fraction"] = summary.settled_fraction();
  screen["concolic_skipped"] = summary.concolic_skipped;
  root["screening"] = Json(std::move(screen));
  root["all_passed"] = all_passed();
  // Present only when the schedule explorer ran, so thread-free pipeline
  // output stays byte-identical to the pre-scheduler form.
  if (schedules_explored() > 0) {
    root["schedules_explored"] = schedules_explored();
    root["interleaving_conclusive_fraction"] = interleaving_conclusive_fraction();
  }
  if (inference_attempts > 1) root["inference_attempts"] = inference_attempts;
  if (inference_failed) {
    root["inference_failed"] = true;
    root["inference_error"] = inference_error;
  }
  if (resumed_contracts > 0) root["resumed_contracts"] = resumed_contracts;
  return Json(std::move(root));
}

PipelineResult Pipeline::run(const corpus::FailureTicket& ticket,
                             const std::string& source_to_check) const {
  return run(ticket, source_to_check, PipelineRunOptions{});
}

PipelineResult Pipeline::run(const corpus::FailureTicket& ticket,
                             const std::string& source_to_check,
                             const PipelineRunOptions& run_options) const {
  PipelineResult result;
  obs::ScopedSpan run_span("pipeline.run");
  run_span.attr("case", ticket.case_id);
  // History needs per-contract SMT evidence, which only a ledger captures;
  // a history-enabled run without a caller ledger attaches a local one
  // (ledger attachment is provably output-neutral, see provenance tests).
  const bool history_enabled = !run_options.history_path.empty();
  obs::ProvenanceLedger local_ledger;
  obs::ProvenanceLedger* ledger = run_options.ledger;
  if (history_enabled && ledger == nullptr) ledger = &local_ledger;
  if (ledger != nullptr) ledger->bind(ticket.case_id + "\n" + source_to_check);

  {
    obs::ScopedSpan stage("pipeline.infer");
    inference::InferenceOutcome outcome = inference::infer_with_retry(
        [&] { return llm_.infer(ticket); }, ticket.case_id, retry_policy_);
    result.inference_attempts = outcome.attempts;
    if (ledger != nullptr) {
      // Inference provenance: how the proposal behind these contracts came
      // to be, including the retry/validation history (PR 5).
      obs::ProposalEvidence evidence;
      evidence.case_id = ticket.case_id;
      evidence.succeeded = outcome.succeeded;
      evidence.attempts = outcome.attempts;
      evidence.transient_errors = outcome.transient_errors;
      evidence.validation_failures = outcome.validation_failures;
      evidence.error = outcome.error;
      if (outcome.succeeded) {
        evidence.high_level = outcome.proposal.high_level_semantics;
        for (const inference::LowLevelSemantics& low : outcome.proposal.low_level)
          evidence.low_level.push_back(low.description);
      }
      ledger->set_proposal(std::move(evidence));
    }
    if (outcome.succeeded) {
      result.proposal = std::move(outcome.proposal);
    } else {
      result.inference_failed = true;
      result.inference_error = outcome.error;
      result.proposal.case_id = ticket.case_id;
    }
    result.timings.infer_ms = stage.elapsed_ms();
  }
  if (result.inference_failed) {
    // Structured degradation: the run completes with zero contracts and
    // all_passed() == false, so no downstream consumer mistakes a lost
    // inference for a verified case.
    result.timings.total_ms = result.timings.infer_ms;
    obs::metrics().counter("pipeline.inference_failed").add();
    run_span.attr("inference_failed", true);
    return result;
  }
  {
    obs::ScopedSpan stage("pipeline.translate");
    TranslationResult translation = translate(result.proposal, ticket.system);
    result.contracts = std::move(translation.contracts);
    result.rejected = std::move(translation.rejected);
    stage.attr("contracts", result.contracts.size());
    stage.attr("rejected", result.rejected.size());
    result.timings.translate_ms = stage.elapsed_ms();
  }
  support::log(support::LogLevel::info, "pipeline ", ticket.case_id, ": ",
               result.contracts.size(), " contract(s) translated, ",
               result.rejected.size(), " rejected");
  {
    obs::ScopedSpan stage("pipeline.check");
    const minilang::Program program = minilang::parse_checked(source_to_check);
    const Checker checker;
    CheckJournal journal(run_options.journal_path);
    const bool journaling = !run_options.journal_path.empty();
    // Resume replay is decided per entry by slice fingerprints, not by a
    // whole-input gate: after a one-function edit only the contracts whose
    // verdict cone contains the edit re-check. The engine recomputes each
    // contract's fingerprint against the current program for the match.
    std::optional<staticcheck::Screener> slice_screener;
    std::optional<staticcheck::SliceEngine> slice_engine;
    if (journaling && run_options.resume) {
      slice_screener.emplace(program, check_options_.use_summaries);
      slice_engine.emplace(program, slice_screener->graph(), slice_screener->summaries());
    }
    if (journaling) {
      const std::string fingerprint =
          CheckJournal::fingerprint(ticket.case_id + "\n" + source_to_check);
      if (run_options.resume) (void)journal.load("");
      journal.begin(fingerprint);
    }
    for (const SemanticContract& contract : result.contracts) {
      // Resume: a conclusive checkpointed report whose slice fingerprint
      // still matches stands; inconclusive ones (budget-cut, fault-degraded)
      // and entries whose cone changed get re-checked here.
      const ContractCheckReport* checkpointed =
          journaling && run_options.resume ? journal.find(contract.id) : nullptr;
      const bool replay =
          checkpointed != nullptr && checkpointed->conclusive() &&
          !checkpointed->slice_fp.empty() && slice_engine.has_value() &&
          checkpointed->slice_fp == contract_slice_fingerprint(
                                        *slice_engine, contract, check_options_.run_concolic);
      ContractCheckReport report;
      if (replay) {
        report = *checkpointed;
        ++result.resumed_contracts;
        obs::metrics().counter("pipeline.resumed_contracts").add();
      } else {
        CheckOptions contract_options = check_options_;
        contract_options.ledger = ledger;
        contract_options.compute_slice_fp = journaling || ledger != nullptr;
        report = checker.check(program, contract, contract_options);
      }
      if (journaling) journal.record(report);
      support::log(report.passed() ? support::LogLevel::debug : support::LogLevel::info,
                   "contract ", contract.id, ": ",
                   report.passed() ? "passed" : "VIOLATED", " (screen=",
                   report.screen_verdict.empty() ? "n/a" : report.screen_verdict,
                   ", paths=", report.paths.size(), ")");
      result.reports.push_back(std::move(report));
    }
    result.timings.check_ms = stage.elapsed_ms();
  }
  // screen/summary are shares of the check stage (see StageTimings);
  // total is the exact stage sum, so the fields never double-count.
  for (const ContractCheckReport& report : result.reports) {
    result.timings.screen_ms += report.screen_ms;
    result.timings.summary_ms += report.summary_ms;
  }
  result.timings.total_ms =
      result.timings.infer_ms + result.timings.translate_ms + result.timings.check_ms;

  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("pipeline.runs").add();
  registry.histogram("pipeline.infer_ms").record(result.timings.infer_ms);
  registry.histogram("pipeline.translate_ms").record(result.timings.translate_ms);
  registry.histogram("pipeline.check_ms").record(result.timings.check_ms);
  registry.histogram("pipeline.total_ms").record(result.timings.total_ms);
  if (history_enabled) {
    obs::RunHistory history(run_options.history_path);
    (void)history.load();
    obs::RunRecord record;
    record.kind = "check";
    record.label = ticket.case_id;
    record.input_fingerprint =
        CheckJournal::fingerprint(ticket.case_id + "\n" + source_to_check);
    int inconclusive = 0;
    std::int64_t total_smt_queries = 0;
    std::vector<std::string> smt_digests;
    for (const ContractCheckReport& report : result.reports) {
      obs::ContractOutcome outcome;
      outcome.passed = report.passed();
      outcome.conclusive = report.conclusive();
      if (!outcome.conclusive) ++inconclusive;
      outcome.verdict = !outcome.conclusive ? "inconclusive"
                        : outcome.passed    ? "passed"
                                            : "violated";
      outcome.signature_digest = support::fnv1a_fingerprint(report.verdict_signature());
      outcome.slice_fp = report.slice_fp;
      if (const obs::ContractCapture* capture = ledger->find(report.contract_id)) {
        outcome.smt_queries = static_cast<std::int64_t>(capture->smt_queries.size());
        for (const obs::SmtQueryEvidence& query : capture->smt_queries)
          smt_digests.push_back(query.digest);
      }
      total_smt_queries += outcome.smt_queries;
      record.contracts[report.contract_id] = std::move(outcome);
    }
    if (!smt_digests.empty()) {
      std::sort(smt_digests.begin(), smt_digests.end());
      std::string joined;
      for (const std::string& digest : smt_digests) joined += digest + "\n";
      record.smt_digest = support::fnv1a_fingerprint(joined);
    }
    record.metrics["infer_ms"] = result.timings.infer_ms;
    record.metrics["translate_ms"] = result.timings.translate_ms;
    record.metrics["check_ms"] = result.timings.check_ms;
    record.metrics["screen_ms"] = result.timings.screen_ms;
    record.metrics["summary_ms"] = result.timings.summary_ms;
    record.metrics["total_ms"] = result.timings.total_ms;
    record.metrics["settled_fraction"] = result.screening().settled_fraction();
    record.metrics["smt_queries"] = static_cast<double>(total_smt_queries);
    record.metrics["contracts"] = static_cast<double>(result.reports.size());
    record.metrics["violations"] = static_cast<double>(result.total_violations());
    record.metrics["inconclusive"] = static_cast<double>(inconclusive);
    // Interleaving coverage for `lisa trends`; written only when the
    // explorer ran so thread-free history records stay byte-identical.
    if (result.schedules_explored() > 0) {
      record.metrics["schedules_explored"] =
          static_cast<double>(result.schedules_explored());
      record.metrics["interleaving_conclusive_fraction"] =
          result.interleaving_conclusive_fraction();
    }
    (void)history.append(record);
  }
  run_span.attr("contracts", result.contracts.size());
  run_span.attr("all_passed", result.all_passed());
  return result;
}

}  // namespace lisa::core
