file(REMOVE_RECURSE
  "CMakeFiles/minilang_vm_test.dir/minilang_vm_test.cpp.o"
  "CMakeFiles/minilang_vm_test.dir/minilang_vm_test.cpp.o.d"
  "minilang_vm_test"
  "minilang_vm_test.pdb"
  "minilang_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minilang_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
