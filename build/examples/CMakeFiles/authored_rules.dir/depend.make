# Empty dependencies file for authored_rules.
# This may be replaced when dependencies are built.
