// Cooperative resource governance for the checking stack.
//
// A CI gate is only trustworthy if it is bounded: a pathological SMT query
// or a path-explosion case must degrade into an *inconclusive* verdict, not
// hang the gate or throw out of the run. A Budget is a shared token passed
// down Checker → concolic::Engine → smt::Solver; each layer charges the
// resource it consumes (wall clock, SMT queries, static paths, fork points,
// interpreter steps) and polls cheaply for exhaustion.
//
// Semantics:
//   * All limits are soft *cutoffs*, not reservations: the charge that
//     crosses the line still completes, everything after it is refused.
//   * Exhaustion latches: once any resource runs out, every subsequent
//     charge_*/check() returns false and exhausted_reason() names the first
//     resource that ran out.
//   * Degradation is monotone toward "inconclusive": callers must never turn
//     a refused charge into a Verified or Violated verdict (asserted by
//     bench_budget_degradation).
//   * A default-constructed Budget is unlimited; callers holding a nullptr
//     budget skip charging entirely, so governance is zero-cost when idle.
//
// Thread-safety: counters are relaxed atomics; the deadline is a steady-
// clock read per poll. Charging from multiple threads is safe (the cutoff
// may then overshoot by at most one in-flight charge per thread).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lisa::support {

/// Which resource ran out first (kNone while the budget has headroom).
enum class BudgetResource {
  kNone, kDeadline, kSmtQueries, kPaths, kForkPoints, kSteps, kSchedules,
};

[[nodiscard]] const char* budget_resource_name(BudgetResource resource);

/// Limits for one checking run. 0 means unlimited for every field.
struct BudgetLimits {
  double deadline_ms = 0.0;            // wall clock from Budget construction
  std::int64_t max_smt_queries = 0;    // smt::Solver::solve calls
  std::int64_t max_paths = 0;          // static execution-tree paths asserted
  std::int64_t max_fork_points = 0;    // concolic branch decisions recorded
  std::int64_t max_steps = 0;          // concolic interpreter statements
  std::int64_t max_schedules = 0;      // interleavings the schedule explorer runs

  [[nodiscard]] bool unlimited() const {
    return deadline_ms <= 0.0 && max_smt_queries <= 0 && max_paths <= 0 &&
           max_fork_points <= 0 && max_steps <= 0 && max_schedules <= 0;
  }
};

/// Thrown by deep loops (the concolic interpreter) that cannot return a
/// degraded value mid-statement; caught at the owning stage boundary and
/// converted into a structured inconclusive outcome. Never escapes
/// Checker::check / Pipeline::run / CiGate::evaluate.
class BudgetExhausted : public std::runtime_error {
 public:
  explicit BudgetExhausted(const std::string& reason) : std::runtime_error(reason) {}
};

class Budget {
 public:
  /// Unlimited budget (every charge succeeds).
  Budget() = default;
  explicit Budget(const BudgetLimits& limits)
      : limits_(limits), start_(std::chrono::steady_clock::now()) {}

  /// Charge one unit of the given resource. Returns false when the budget
  /// is (or just became) exhausted — the caller must degrade, not proceed.
  bool charge_smt_query() { return charge(smt_queries_, limits_.max_smt_queries, BudgetResource::kSmtQueries, 1); }
  bool charge_path() { return charge(paths_, limits_.max_paths, BudgetResource::kPaths, 1); }
  bool charge_fork_point() { return charge(fork_points_, limits_.max_fork_points, BudgetResource::kForkPoints, 1); }
  bool charge_steps(std::int64_t n = 1) { return charge(steps_, limits_.max_steps, BudgetResource::kSteps, n); }
  bool charge_schedule() { return charge(schedules_, limits_.max_schedules, BudgetResource::kSchedules, 1); }

  /// Pure poll: deadline + latched state, no counter movement.
  bool check() {
    if (exhausted()) return false;
    return check_deadline();
  }

  [[nodiscard]] bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed) !=
           static_cast<int>(BudgetResource::kNone);
  }
  [[nodiscard]] BudgetResource exhausted_resource() const {
    return static_cast<BudgetResource>(exhausted_.load(std::memory_order_relaxed));
  }
  /// Human-readable "deadline exceeded (50.0 ms)" style reason; "" while
  /// the budget has headroom.
  [[nodiscard]] std::string exhausted_reason() const;

  // Spent-so-far accounting (exported into reports and metrics).
  [[nodiscard]] std::int64_t smt_queries() const { return smt_queries_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t paths() const { return paths_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t fork_points() const { return fork_points_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t schedules() const { return schedules_.load(std::memory_order_relaxed); }
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }
  [[nodiscard]] const BudgetLimits& limits() const { return limits_; }

 private:
  bool charge(std::atomic<std::int64_t>& counter, std::int64_t limit,
              BudgetResource resource, std::int64_t n) {
    if (exhausted()) return false;
    if (!check_deadline()) return false;
    const std::int64_t spent = counter.fetch_add(n, std::memory_order_relaxed) + n;
    if (limit > 0 && spent > limit) {
      latch(resource);
      return false;
    }
    return true;
  }

  bool check_deadline() {
    if (limits_.deadline_ms > 0.0 && elapsed_ms() > limits_.deadline_ms) {
      latch(BudgetResource::kDeadline);
      return false;
    }
    return true;
  }

  void latch(BudgetResource resource) {
    int expected = static_cast<int>(BudgetResource::kNone);
    exhausted_.compare_exchange_strong(expected, static_cast<int>(resource),
                                       std::memory_order_relaxed);
  }

  BudgetLimits limits_{};
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
  std::atomic<std::int64_t> smt_queries_{0};
  std::atomic<std::int64_t> paths_{0};
  std::atomic<std::int64_t> fork_points_{0};
  std::atomic<std::int64_t> steps_{0};
  std::atomic<std::int64_t> schedules_{0};
  std::atomic<int> exhausted_{static_cast<int>(BudgetResource::kNone)};
};

}  // namespace lisa::support
