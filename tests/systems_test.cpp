// Tests for the native mini cloud systems and the discrete-event simulator.
#include <gtest/gtest.h>

#include "systems/cassandra/hints.hpp"
#include "systems/hbase/snapshots.hpp"
#include "systems/hdfs/namenode.hpp"
#include "systems/sim/event_loop.hpp"
#include "systems/sim/network.hpp"
#include "systems/zookeeper/registry.hpp"
#include "systems/zookeeper/server.hpp"

namespace lisa::systems {
namespace {

// ---------------------------------------------------------------------------
// Event loop + network
// ---------------------------------------------------------------------------

TEST(EventLoop, RunsEventsInTimeThenFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] { order.push_back(2); });
  loop.schedule_at(5, [&] { order.push_back(1); });
  loop.schedule_at(10, [&] { order.push_back(3); });  // same time: FIFO
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoop, HandlersCanScheduleMoreEvents) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_after(1, [&] {
    ++fired;
    loop.schedule_after(1, [&] { ++fired; });
  });
  loop.run_until(100);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 100);  // run_until advances the clock
}

TEST(EventLoop, RunAllGuardsAgainstEventStorms) {
  EventLoop loop;
  std::function<void()> storm = [&] { loop.schedule_after(1, storm); };
  loop.schedule_after(1, storm);
  EXPECT_THROW(loop.run_all(1000), std::runtime_error);
}

TEST(Network, DeliversWithConfiguredDelay) {
  EventLoop loop;
  NetworkOptions options;
  options.base_delay_ms = 7;
  MessageBus bus(loop, options);
  std::int64_t delivered_at = -1;
  bus.register_endpoint("b", [&](const Message& m) {
    delivered_at = loop.now();
    EXPECT_EQ(m.payload, "hello");
  });
  bus.send("a", "b", "greet", "hello");
  loop.run_all();
  EXPECT_EQ(delivered_at, 7);
  EXPECT_EQ(bus.delivered(), 1u);
}

TEST(Network, DropsAndDeadLetters) {
  EventLoop loop;
  NetworkOptions lossy;
  lossy.drop_rate = 1.0;
  MessageBus bus(loop, lossy);
  EXPECT_FALSE(bus.send("a", "b", "t", "p"));
  EXPECT_EQ(bus.dropped(), 1u);

  MessageBus bus2(loop, NetworkOptions{});
  bus2.send("a", "nowhere", "t", "p");
  loop.run_all();
  EXPECT_EQ(bus2.dead_lettered(), 1u);
}

TEST(Network, DeterministicUnderSeed) {
  const auto run_once = [](std::uint64_t seed) {
    EventLoop loop;
    NetworkOptions options;
    options.jitter_ms = 10;
    options.drop_rate = 0.3;
    options.seed = seed;
    MessageBus bus(loop, options);
    int got = 0;
    bus.register_endpoint("sink", [&](const Message&) { ++got; });
    for (int i = 0; i < 100; ++i) bus.send("src", "sink", "t", std::to_string(i));
    loop.run_all();
    return got;
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

// ---------------------------------------------------------------------------
// Mini-ZooKeeper
// ---------------------------------------------------------------------------

TEST(ZooKeeper, EphemeralNodesVanishWithSession) {
  EventLoop loop;
  zk::ZooKeeperServer server(loop);
  const std::int64_t session = server.create_session("c1");
  EXPECT_EQ(server.create(session, "/e/1", "addr", true), zk::ZkStatus::kOk);
  EXPECT_TRUE(server.exists("/e/1"));
  server.close_session(session);
  loop.run_until(loop.now() + 100);
  EXPECT_FALSE(server.exists("/e/1"));
  EXPECT_TRUE(server.find_stale_ephemerals().empty());
}

TEST(ZooKeeper, FixedServerRejectsCreateOnClosingSession) {
  EventLoop loop;
  zk::ZooKeeperServer server(loop);  // fix_zk1208 = true
  const std::int64_t session = server.create_session("c1");
  server.close_session(session);
  EXPECT_EQ(server.create(session, "/e/x", "addr", true), zk::ZkStatus::kSessionClosing);
  loop.run_until(loop.now() + 100);
  EXPECT_FALSE(server.exists("/e/x"));
}

TEST(ZooKeeper, BuggyServerLeavesStaleEphemeral) {
  EventLoop loop;
  zk::ZkConfig config;
  config.fix_zk1208 = false;
  zk::ZooKeeperServer server(loop, config);
  const std::int64_t session = server.create_session("c1");
  server.close_session(session);
  // The create lands in the CLOSING window (ZK-1208 race).
  EXPECT_EQ(server.create(session, "/e/x", "addr", true), zk::ZkStatus::kOk);
  loop.run_until(loop.now() + 1000);
  EXPECT_TRUE(server.exists("/e/x"));
  EXPECT_EQ(server.find_stale_ephemerals().size(), 1u);
}

TEST(ZooKeeper, SessionsExpireWithoutTouch) {
  EventLoop loop;
  zk::ZkConfig config;
  config.session_timeout_ms = 100;
  zk::ZooKeeperServer server(loop, config);
  const std::int64_t session = server.create_session("c1");
  server.create(session, "/e/1", "d", true);
  loop.run_until(500);
  EXPECT_EQ(server.live_sessions(), 0u);
  EXPECT_FALSE(server.exists("/e/1"));
  EXPECT_GE(server.stats().sessions_expired, 1u);
}

TEST(ZooKeeper, TouchKeepsSessionAlive) {
  EventLoop loop;
  zk::ZkConfig config;
  config.session_timeout_ms = 100;
  zk::ZooKeeperServer server(loop, config);
  const std::int64_t session = server.create_session("c1");
  for (int i = 1; i <= 20; ++i)
    loop.schedule_at(i * 40, [&server, session] { server.touch_session(session); });
  loop.run_until(800);
  EXPECT_EQ(server.live_sessions(), 1u);
}

TEST(ZooKeeper, WatchesFireOnceOnDelete) {
  EventLoop loop;
  zk::ZooKeeperServer server(loop);
  const std::int64_t session = server.create_session("c1");
  server.create(session, "/n", "d", false);
  int events = 0;
  server.watch("/n", [&](const zk::WatchEvent& event) {
    ++events;
    EXPECT_EQ(event.type, "deleted");
  });
  server.delete_node("/n");
  server.create(session, "/n", "d2", false);  // watch is one-shot
  server.delete_node("/n");
  EXPECT_EQ(events, 1);
}

TEST(ZooKeeper, GetChildrenFiltersByPrefix) {
  EventLoop loop;
  zk::ZooKeeperServer server(loop);
  const std::int64_t session = server.create_session("c1");
  server.create(session, "/a/1", "", false);
  server.create(session, "/a/2", "", false);
  server.create(session, "/ab/3", "", false);
  EXPECT_EQ(server.get_children("/a").size(), 2u);
}

TEST(ZooKeeper, BuggySnapshotStallsWriters) {
  EventLoop loop;
  zk::ZkConfig config;
  config.fix_sync_blocking = false;
  zk::ZooKeeperServer server(loop, config);
  const std::int64_t session = server.create_session("c1");
  for (int i = 0; i < 10; ++i)
    server.create(session, "/n/" + std::to_string(i), "d", false);
  server.take_snapshot();
  // A write arriving while the lock is held stalls.
  loop.schedule_after(1, [&] { server.create(session, "/during", "d", false); });
  loop.run_until(loop.now() + 200);
  EXPECT_GT(server.stats().write_stall_ms, 0);

  zk::ZooKeeperServer fixed(loop);  // fix enabled
  const std::int64_t s2 = fixed.create_session("c2");
  fixed.create(s2, "/m", "d", false);
  fixed.take_snapshot();
  fixed.create(s2, "/after", "d", false);
  EXPECT_EQ(fixed.stats().write_stall_ms, 0);
}

TEST(Registry, ProducerSeesStaleAddressOnlyWithBuggyServer) {
  EventLoop loop;
  zk::ZkConfig buggy;
  buggy.fix_zk1208 = false;
  zk::ZooKeeperServer server(loop, buggy);
  zk::ConsumerRegistry registry(server);
  std::map<std::string, bool> live;

  ASSERT_TRUE(registry.register_consumer("c1", "host-a:9092").has_value());
  live["c1"] = true;
  zk::Producer producer(registry, &live);
  EXPECT_TRUE(producer.send("c1"));

  // The consumer dies; its session close races with a re-registration.
  live["c1"] = false;
  registry.unregister_consumer("c1");
  // Race: a new registration for the same consumer id lands in the close
  // window on the SAME (still closing) session path — simulate by creating
  // directly on the closing session.
  loop.run_until(loop.now() + 1000);
  // With the bug the old node may survive; with a clean close it is gone.
  const bool resolved = registry.lookup("c1").has_value();
  if (resolved) {
    EXPECT_FALSE(producer.send("c1"));
    EXPECT_GE(producer.stale_address_errors(), 1u);
  } else {
    EXPECT_FALSE(producer.send("c1"));
    EXPECT_GE(producer.unresolved_errors(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Mini-HDFS
// ---------------------------------------------------------------------------

TEST(Hdfs, ObserverServesAfterReportArrives) {
  EventLoop loop;
  MessageBus bus(loop);
  hdfs::ActiveNameNode active;
  hdfs::ObserverNameNode observer(loop, bus, "observer-1");
  active.add_file("/f", 100, {"dn1", "dn2"});
  observer.receive_report_later(active, "/f", 5);
  loop.run_all();
  const auto block = observer.read("/f", /*check_locations=*/true);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->locations.size(), 2u);
  EXPECT_EQ(observer.stats().block_reports_applied, 1u);
}

TEST(Hdfs, DelayedReportWithCheckRedirects) {
  EventLoop loop;
  MessageBus bus(loop);
  hdfs::ActiveNameNode active;
  hdfs::ObserverNameNode observer(loop, bus, "observer-1");
  active.add_file("/f", 100, {"dn1"});
  observer.receive_report_later(active, "/f", 10'000);  // very delayed
  loop.run_until(10);  // report not yet arrived
  const auto block = observer.read("/f", /*check_locations=*/true);
  EXPECT_FALSE(block.has_value());
  EXPECT_EQ(observer.stats().reads_redirected, 1u);
  EXPECT_EQ(observer.stats().empty_location_reads, 0u);
}

TEST(Hdfs, DelayedReportWithoutCheckServesEmptyLocations) {
  EventLoop loop;
  MessageBus bus(loop);
  hdfs::ActiveNameNode active;
  hdfs::ObserverNameNode observer(loop, bus, "observer-1");
  active.add_file("/f", 100, {"dn1"});
  observer.receive_report_later(active, "/f", 10'000);
  loop.run_until(10);
  const auto block = observer.read("/f", /*check_locations=*/false);
  ASSERT_TRUE(block.has_value());
  EXPECT_TRUE(block->locations.empty());  // the incident symptom
  EXPECT_EQ(observer.stats().empty_location_reads, 1u);
}

TEST(Hdfs, BatchedListingMirrorsCheckCoverage) {
  EventLoop loop;
  MessageBus bus(loop);
  hdfs::ActiveNameNode active;
  hdfs::ObserverNameNode observer(loop, bus, "observer-1");
  active.add_file("/a", 1, {"dn1"});
  active.add_file("/b", 2, {"dn2"});
  observer.receive_report_later(active, "/a", 0);
  observer.receive_report_later(active, "/b", 10'000);
  loop.run_until(10);
  const auto unchecked = observer.batched_listing({"/a", "/b"}, false);
  EXPECT_EQ(unchecked.size(), 2u);
  EXPECT_EQ(observer.stats().empty_location_reads, 1u);
  const auto checked = observer.batched_listing({"/a", "/b"}, true);
  EXPECT_EQ(checked.size(), 1u);
}

// ---------------------------------------------------------------------------
// Mini-HBase
// ---------------------------------------------------------------------------

TEST(Hbase, ExpirationByVirtualClock) {
  EventLoop loop;
  hbase::SnapshotStore store(loop);
  store.create_snapshot("s1", 1000, {"r1", "r2"});
  EXPECT_FALSE(store.is_expired("s1"));
  loop.run_until(1500);
  EXPECT_TRUE(store.is_expired("s1"));
  store.create_snapshot("forever", 0, {});
  loop.run_until(100'000);
  EXPECT_FALSE(store.is_expired("forever"));
}

TEST(Hbase, CoveredPathsRejectExpired) {
  EventLoop loop;
  hbase::SnapshotStore store(loop);  // full coverage
  store.create_snapshot("s1", 10, {"row"});
  loop.run_until(100);
  EXPECT_EQ(store.restore("s1"), hbase::SnapshotStatus::kExpired);
  EXPECT_EQ(store.export_snapshot("s1"), hbase::SnapshotStatus::kExpired);
  EXPECT_EQ(store.scan("s1").first, hbase::SnapshotStatus::kExpired);
  EXPECT_EQ(store.stats().expired_served, 0u);
  EXPECT_EQ(store.stats().expired_rejected, 3u);
}

TEST(Hbase, LatestCoverageServesExpiredViaScan) {
  EventLoop loop;
  hbase::CheckCoverage latest;
  latest.scan = false;  // the HBASE-29296 gap
  hbase::SnapshotStore store(loop, latest);
  store.create_snapshot("s1", 10, {"stale-row"});
  loop.run_until(100);
  EXPECT_EQ(store.restore("s1"), hbase::SnapshotStatus::kExpired);
  const auto [status, rows] = store.scan("s1");
  EXPECT_EQ(status, hbase::SnapshotStatus::kOk);  // silently serves stale data
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(store.stats().expired_served, 1u);
}

TEST(Hbase, MissingSnapshotIsNotFound) {
  EventLoop loop;
  hbase::SnapshotStore store(loop);
  EXPECT_EQ(store.restore("ghost"), hbase::SnapshotStatus::kNotFound);
  EXPECT_EQ(store.stats().not_found, 1u);
}

// ---------------------------------------------------------------------------
// Mini-Cassandra
// ---------------------------------------------------------------------------

TEST(Cassandra, HintsReplayToLiveNode) {
  EventLoop loop;
  cassandra::HintedHandoff handoff(loop);
  handoff.add_node("n1");
  handoff.queue_hint("n1", "m1", false);
  handoff.queue_hint("n1", "m2", false);
  EXPECT_EQ(handoff.replay_endpoint("n1", true), 2u);
  EXPECT_EQ(handoff.node("n1")->mutations_applied, 2u);
  EXPECT_EQ(handoff.pending_hints(), 0u);
}

TEST(Cassandra, CheckedReplayRejectsDecommissioned) {
  EventLoop loop;
  cassandra::HintedHandoff handoff(loop);
  handoff.add_node("n1");
  handoff.queue_hint("n1", "m1", true);
  handoff.decommission("n1");
  EXPECT_EQ(handoff.replay_endpoint("n1", true), 0u);
  EXPECT_EQ(handoff.stats().hints_rejected, 1u);
  EXPECT_EQ(handoff.stats().rows_resurrected, 0u);
}

TEST(Cassandra, UncheckedReplayResurrectsRows) {
  EventLoop loop;
  cassandra::HintedHandoff handoff(loop);
  handoff.add_node("n1");
  handoff.add_node("n2");
  handoff.queue_hint("n1", "m1", true);
  handoff.queue_hint("n2", "m2", false);
  handoff.decommission("n1");
  EXPECT_EQ(handoff.replay_all(false), 2u);
  EXPECT_EQ(handoff.stats().hints_to_decommissioned, 1u);
  EXPECT_EQ(handoff.stats().rows_resurrected, 1u);
}

}  // namespace
}  // namespace lisa::systems
