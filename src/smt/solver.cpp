#include "smt/solver.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/faultpoint.hpp"

namespace lisa::smt {

const char* status_name(Status status) {
  switch (status) {
    case Status::kSat: return "sat";
    case Status::kUnsat: return "unsat";
    case Status::kUnknown: return "unknown";
  }
  return "?";
}

std::string Model::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : bools) {
    if (!first) out += ", ";
    first = false;
    out += name + " = " + (value ? "true" : "false");
  }
  for (const auto& [name, value] : ints) {
    if (!first) out += ", ";
    first = false;
    out += name + " = " + std::to_string(value);
  }
  return out + "}";
}

namespace {

// ---------------------------------------------------------------------------
// Primitive atoms: boolean variables and difference bounds a - b <= k.
// An empty variable name denotes the distinguished ZERO variable.
// ---------------------------------------------------------------------------

struct Primitive {
  bool is_diff = false;
  std::string name;  // boolean variable name (is_diff == false)
  std::string a, b;  // difference constraint a - b <= k (is_diff == true)
  std::int64_t k = 0;

  [[nodiscard]] std::string key() const {
    if (!is_diff) return "b:" + name;
    return "d:" + a + "|" + b + "|" + std::to_string(k);
  }
};

class PrimitiveTable {
 public:
  int intern(const Primitive& primitive) {
    const std::string key = primitive.key();
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const int id = static_cast<int>(primitives_.size());
    primitives_.push_back(primitive);
    index_.emplace(key, id);
    return id;
  }

  [[nodiscard]] const Primitive& at(int id) const {
    return primitives_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int size() const { return static_cast<int>(primitives_.size()); }

 private:
  std::vector<Primitive> primitives_;
  std::unordered_map<std::string, int> index_;
};

// Lowered formula: same tree shape but every atom replaced by a primitive
// literal (positive or negative primitive id).
struct LNode {
  enum class Kind { kTrue, kFalse, kLit, kAnd, kOr };
  Kind kind = Kind::kTrue;
  int lit = 0;  // kLit: primitive id + 1, negative for negated occurrence
  std::vector<LNode> children;
};

LNode make_lit(int primitive_id, bool positive) {
  LNode node;
  node.kind = LNode::Kind::kLit;
  node.lit = positive ? primitive_id + 1 : -(primitive_id + 1);
  return node;
}

LNode make_bool_node(bool value) {
  LNode node;
  node.kind = value ? LNode::Kind::kTrue : LNode::Kind::kFalse;
  return node;
}

/// Lowers one comparison atom into difference-bound structure.
/// For x ⋈ c:   x - ZERO ⋈ c.  For x ⋈ y:  x - y ⋈ 0.
LNode lower_cmp(PrimitiveTable& table, const std::string& lhs, CmpOp op,
                const std::string& rhs_var, std::int64_t rhs_const) {
  const auto diff_le = [&](const std::string& a, const std::string& b, std::int64_t k) {
    Primitive primitive;
    primitive.is_diff = true;
    primitive.a = a;
    primitive.b = b;
    primitive.k = k;
    return table.intern(primitive);
  };
  // a - b <= k primitives for the four basic shapes.
  const std::string& y = rhs_var;  // empty when comparing against a constant
  const std::int64_t c = rhs_const;
  const auto le = [&] { return make_lit(diff_le(lhs, y, y.empty() ? c : 0), true); };
  const auto ge = [&] {
    return make_lit(diff_le(y, lhs, y.empty() ? -c : 0), true);
  };
  const auto lt = [&] { return make_lit(diff_le(lhs, y, (y.empty() ? c : 0) - 1), true); };
  const auto gt = [&] {
    return make_lit(diff_le(y, lhs, (y.empty() ? -c : 0) - 1), true);
  };
  switch (op) {
    case CmpOp::kLe: return le();
    case CmpOp::kGe: return ge();
    case CmpOp::kLt: return lt();
    case CmpOp::kGt: return gt();
    case CmpOp::kEq: {
      LNode node;
      node.kind = LNode::Kind::kAnd;
      node.children.push_back(le());
      node.children.push_back(ge());
      return node;
    }
    case CmpOp::kNe: {
      LNode node;
      node.kind = LNode::Kind::kOr;
      node.children.push_back(lt());
      node.children.push_back(gt());
      return node;
    }
  }
  return make_bool_node(true);
}

LNode lower(PrimitiveTable& table, const FormulaPtr& f, bool negated) {
  switch (f->kind) {
    case Formula::Kind::kTrue: return make_bool_node(!negated);
    case Formula::Kind::kFalse: return make_bool_node(negated);
    case Formula::Kind::kNot: return lower(table, f->children[0], !negated);
    case Formula::Kind::kAtom: {
      const Atom& atom = f->atom;
      if (atom.kind == Atom::Kind::kBoolVar) {
        Primitive primitive;
        primitive.is_diff = false;
        primitive.name = atom.lhs;
        return make_lit(table.intern(primitive), !negated);
      }
      const CmpOp op = negated ? cmp_negate(atom.op) : atom.op;
      const std::string rhs_var =
          atom.kind == Atom::Kind::kCmpVar ? atom.rhs_var : std::string();
      return lower_cmp(table, atom.lhs, op, rhs_var, atom.rhs_const);
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      LNode node;
      const bool is_and = (f->kind == Formula::Kind::kAnd) != negated;
      node.kind = is_and ? LNode::Kind::kAnd : LNode::Kind::kOr;
      for (const FormulaPtr& child : f->children) {
        LNode lowered = lower(table, child, negated);
        if (lowered.kind == LNode::Kind::kTrue) {
          if (!is_and) return make_bool_node(true);
          continue;
        }
        if (lowered.kind == LNode::Kind::kFalse) {
          if (is_and) return make_bool_node(false);
          continue;
        }
        node.children.push_back(std::move(lowered));
      }
      if (node.children.empty()) return make_bool_node(is_and);
      if (node.children.size() == 1) return std::move(node.children[0]);
      return node;
    }
  }
  return make_bool_node(true);
}

// ---------------------------------------------------------------------------
// Tseitin encoding.
// ---------------------------------------------------------------------------

class Cnf {
 public:
  explicit Cnf(int primitive_count) : var_count_(primitive_count) {}

  int fresh_var() { return var_count_++; }

  void add_clause(std::vector<int> literals) { clauses_.push_back(std::move(literals)); }

  /// Returns the literal representing `node`, adding definition clauses.
  int encode(const LNode& node) {
    switch (node.kind) {
      case LNode::Kind::kTrue: {
        const int v = fresh_var() + 1;
        add_clause({v});
        return v;
      }
      case LNode::Kind::kFalse: {
        const int v = fresh_var() + 1;
        add_clause({-v});
        return v;
      }
      case LNode::Kind::kLit:
        return node.lit;
      case LNode::Kind::kAnd: {
        const int g = fresh_var() + 1;
        std::vector<int> big{g};
        for (const LNode& child : node.children) {
          const int c = encode(child);
          add_clause({-g, c});
          big.push_back(-c);
        }
        add_clause(std::move(big));
        return g;
      }
      case LNode::Kind::kOr: {
        const int g = fresh_var() + 1;
        std::vector<int> big{-g};
        for (const LNode& child : node.children) {
          const int c = encode(child);
          add_clause({g, -c});
          big.push_back(c);
        }
        add_clause(std::move(big));
        return g;
      }
    }
    return 0;
  }

  [[nodiscard]] int var_count() const { return var_count_; }
  [[nodiscard]] std::vector<std::vector<int>>& clauses() { return clauses_; }

 private:
  int var_count_;
  std::vector<std::vector<int>> clauses_;
};

// ---------------------------------------------------------------------------
// DPLL with chronological backtracking.
// ---------------------------------------------------------------------------

enum class Assign : std::int8_t { kUnset = 0, kTrue = 1, kFalse = 2 };

class Dpll {
 public:
  using TheoryCheck = std::function<bool(const std::vector<Assign>&)>;

  Dpll(int var_count, std::vector<std::vector<int>>* clauses, SolverStats* stats,
       TheoryCheck theory_ok)
      : var_count_(var_count),
        clauses_(clauses),
        stats_(stats),
        theory_ok_(std::move(theory_ok)) {}

  /// Finds a boolean model consistent with the theory, or nullopt. The
  /// theory check runs on *partial* assignments after every propagation
  /// round — inconsistent difference constraints prune the subtree early
  /// (DPLL(T) with eager theory propagation), which keeps random formulas
  /// with many numeric atoms tractable.
  std::optional<std::vector<Assign>> next_model() {
    std::vector<Assign> assignment(static_cast<std::size_t>(var_count_), Assign::kUnset);
    if (search(assignment, 0)) return assignment;
    return std::nullopt;
  }

 private:
  [[nodiscard]] static bool lit_true(const std::vector<Assign>& a, int lit) {
    const Assign v = a[static_cast<std::size_t>(std::abs(lit) - 1)];
    return lit > 0 ? v == Assign::kTrue : v == Assign::kFalse;
  }
  [[nodiscard]] static bool lit_false(const std::vector<Assign>& a, int lit) {
    const Assign v = a[static_cast<std::size_t>(std::abs(lit) - 1)];
    return lit > 0 ? v == Assign::kFalse : v == Assign::kTrue;
  }

  /// Unit propagation over the full clause database. Returns false on
  /// conflict; records assignments in `trail` for undo.
  bool propagate(std::vector<Assign>& assignment, std::vector<int>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::vector<int>& clause : *clauses_) {
        int unassigned_lit = 0;
        int unassigned_count = 0;
        bool satisfied = false;
        for (const int lit : clause) {
          if (lit_true(assignment, lit)) {
            satisfied = true;
            break;
          }
          if (!lit_false(assignment, lit)) {
            ++unassigned_count;
            unassigned_lit = lit;
          }
        }
        if (satisfied) continue;
        if (unassigned_count == 0) {
          ++stats_->boolean_conflicts;
          return false;
        }
        if (unassigned_count == 1) {
          const int var = std::abs(unassigned_lit) - 1;
          assignment[static_cast<std::size_t>(var)] =
              unassigned_lit > 0 ? Assign::kTrue : Assign::kFalse;
          trail.push_back(var);
          ++stats_->propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  bool search(std::vector<Assign>& assignment, int from) {
    std::vector<int> trail;
    if (!propagate(assignment, trail) || !theory_ok_(assignment)) {
      for (const int var : trail) assignment[static_cast<std::size_t>(var)] = Assign::kUnset;
      return false;
    }
    int var = -1;
    for (int i = from; i < var_count_; ++i) {
      if (assignment[static_cast<std::size_t>(i)] == Assign::kUnset) {
        var = i;
        break;
      }
    }
    if (var == -1) {
      // Check residual clauses (all assigned): propagate() above already
      // returned conflict-free, and with no unassigned vars every clause is
      // satisfied. Full model found.
      return true;
    }
    ++stats_->decisions;
    for (const Assign choice : {Assign::kFalse, Assign::kTrue}) {
      assignment[static_cast<std::size_t>(var)] = choice;
      if (search(assignment, var + 1)) return true;
      assignment[static_cast<std::size_t>(var)] = Assign::kUnset;
    }
    for (const int t : trail) assignment[static_cast<std::size_t>(t)] = Assign::kUnset;
    return false;
  }

  int var_count_;
  std::vector<std::vector<int>>* clauses_;
  SolverStats* stats_;
  TheoryCheck theory_ok_;
};

// ---------------------------------------------------------------------------
// Difference-logic theory check (Bellman–Ford negative cycle detection).
// ---------------------------------------------------------------------------

struct TheoryResult {
  bool consistent = true;
  std::map<std::string, std::int64_t> values;  // only when consistent
};

TheoryResult check_theory(const PrimitiveTable& table, const std::vector<Assign>& assignment) {
  // Collect active difference constraints: primitive id asserted true gives
  // a - b <= k; asserted false gives b - a <= -k - 1.
  struct Edge {
    int from, to;
    std::int64_t weight;
  };
  std::unordered_map<std::string, int> node_index;
  const auto node = [&](const std::string& name) {
    const auto it = node_index.find(name);
    if (it != node_index.end()) return it->second;
    const int id = static_cast<int>(node_index.size());
    node_index.emplace(name, id);
    return id;
  };
  node("");  // ZERO
  std::vector<Edge> edges;
  for (int i = 0; i < table.size(); ++i) {
    const Primitive& primitive = table.at(i);
    if (!primitive.is_diff) continue;
    const Assign value = assignment[static_cast<std::size_t>(i)];
    if (value == Assign::kUnset) continue;
    std::string a = primitive.a;
    std::string b = primitive.b;
    std::int64_t k = primitive.k;
    if (value == Assign::kFalse) {
      std::swap(a, b);
      k = -k - 1;
    }
    // a - b <= k: edge b --k--> a (dist[a] <= dist[b] + k).
    edges.push_back(Edge{node(b), node(a), k});
  }
  const int n = static_cast<int>(node_index.size());
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
  bool changed = true;
  for (int round = 0; round < n && changed; ++round) {
    changed = false;
    for (const Edge& edge : edges) {
      const std::int64_t candidate = dist[static_cast<std::size_t>(edge.from)] + edge.weight;
      if (candidate < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = candidate;
        changed = true;
      }
    }
  }
  TheoryResult result;
  if (changed) {  // still relaxing after n rounds → negative cycle
    result.consistent = false;
    return result;
  }
  const std::int64_t zero = dist[0];
  for (const auto& [name, index] : node_index) {
    if (name.empty()) continue;
    result.values[name] = dist[static_cast<std::size_t>(index)] - zero;
  }
  return result;
}

}  // namespace

SolveResult Solver::solve(const FormulaPtr& formula) {
  obs::ScopedSpan span("smt.solve");
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("smt.queries").add();
  // Records the verdict exactly once on every return path.
  const auto finish = [&](SolveResult result) {
    registry.counter(std::string("smt.") + status_name(result.status)).add();
    registry.histogram("smt.query_us").record(span.elapsed_ms() * 1000.0);
    span.attr("status", status_name(result.status));
    if (capture_ != nullptr) {
      // Provenance capture is the only consumer of the rendered query text,
      // so the formula is stringified only on this (opt-in) path.
      capture_->on_smt_query(formula->to_string(), status_name(result.status),
                             result.sat() ? result.model.to_string() : std::string(),
                             result.reason);
    }
    return result;
  };
  // Governance gate: a refused or fault-degraded query is kUnknown — the
  // caller must surface "inconclusive", never interpret it as unsat.
  const auto unknown = [&](std::string reason) {
    SolveResult result;
    result.status = Status::kUnknown;
    result.reason = std::move(reason);
    return finish(std::move(result));
  };
  const support::FaultAction fault = support::faultpoint("smt.solve");
  if (fault != support::FaultAction::kNone) {
    registry.counter("fault.smt.solve").add();
    return unknown(std::string("injected fault: ") + support::fault_action_name(fault));
  }
  if (budget_ != nullptr && !budget_->charge_smt_query())
    return unknown(budget_->exhausted_reason());

  PrimitiveTable table;
  const LNode lowered = lower(table, formula, /*negated=*/false);
  SolveResult result;
  if (lowered.kind == LNode::Kind::kTrue) {
    result.status = Status::kSat;
    return finish(std::move(result));
  }
  if (lowered.kind == LNode::Kind::kFalse) {
    result.status = Status::kUnsat;
    return finish(std::move(result));
  }
  Cnf cnf(table.size());
  const int root = cnf.encode(lowered);
  cnf.add_clause({root});
  stats_.atoms += table.size();

  stats_.clauses = static_cast<std::int64_t>(cnf.clauses().size());
  registry.histogram("smt.formula_atoms").record(static_cast<double>(table.size()));
  registry.histogram("smt.formula_clauses").record(static_cast<double>(cnf.clauses().size()));
  span.attr("atoms", table.size());
  span.attr("clauses", cnf.clauses().size());
  // Theory pruning on partial assignments: only the first `table.size()`
  // variables are theory atoms (Tseitin variables carry no theory meaning).
  const auto theory_ok = [&](const std::vector<Assign>& assignment) {
    const bool consistent = check_theory(table, assignment).consistent;
    if (!consistent) ++stats_.theory_conflicts;
    return consistent;
  };
  Dpll dpll(cnf.var_count(), &cnf.clauses(), &stats_, theory_ok);
  const std::optional<std::vector<Assign>> model = dpll.next_model();
  if (!model.has_value()) {
    result.status = Status::kUnsat;
    return finish(std::move(result));
  }
  const TheoryResult theory = check_theory(table, *model);
  result.status = Status::kSat;
  for (int i = 0; i < table.size(); ++i) {
    const Primitive& primitive = table.at(i);
    if (primitive.is_diff) continue;
    const Assign value = (*model)[static_cast<std::size_t>(i)];
    if (value != Assign::kUnset) result.model.bools[primitive.name] = value == Assign::kTrue;
  }
  result.model.ints = theory.values;
  return finish(std::move(result));
}

bool Solver::implies(const FormulaPtr& premise, const FormulaPtr& conclusion) {
  const SolveResult result = solve(Formula::conj2(premise, Formula::negate(conclusion)));
  return !result.sat() && !result.unknown();
}

bool Solver::equivalent(const FormulaPtr& a, const FormulaPtr& b) {
  return implies(a, b) && implies(b, a);
}

}  // namespace lisa::smt
