// Substrate benchmark: test-replay throughput of the two execution engines.
//
// The CI gate replays test suites on every commit; this measures the
// tree-walking interpreter against the bytecode VM on (a) the full corpus
// suites and (b) a compute-heavy kernel, plus one-time compilation cost.
#include <benchmark/benchmark.h>

#include "corpus/ticket.hpp"
#include "minilang/compiler.hpp"
#include "minilang/interp.hpp"
#include "minilang/sema.hpp"
#include "minilang/vm.hpp"

namespace {

using namespace lisa::minilang;

const char* kKernel = R"(
fn fib(n: int) -> int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn work() -> int {
  let total = 0;
  let i = 0;
  while (i < 50) {
    total = total + fib(12) % 97;
    i = i + 1;
  }
  return total;
}
)";

void BM_InterpKernel(benchmark::State& state) {
  const Program program = parse_checked(kKernel);
  Interp interp(program);
  interp.set_fuel(1'000'000'000);
  for (auto _ : state) benchmark::DoNotOptimize(interp.call("work", {}).as_int());
}
BENCHMARK(BM_InterpKernel)->Unit(benchmark::kMillisecond);

void BM_VmKernel(benchmark::State& state) {
  const Program program = parse_checked(kKernel);
  const Module module = compile(program);
  Vm vm(module);
  vm.set_fuel(1'000'000'000);
  for (auto _ : state) benchmark::DoNotOptimize(vm.call("work", {}).as_int());
  state.counters["insns/iter"] = static_cast<double>(vm.instructions_executed()) /
                                 static_cast<double>(state.iterations());
}
BENCHMARK(BM_VmKernel)->Unit(benchmark::kMillisecond);

void BM_InterpCorpusSuites(benchmark::State& state) {
  std::vector<Program> programs;
  for (const auto& ticket : lisa::corpus::Corpus::all())
    programs.push_back(parse_checked(ticket.patched_source));
  for (auto _ : state) {
    int passed = 0;
    for (const Program& program : programs) {
      Interp interp(program);
      passed += interp.run_all_tests().first;
    }
    benchmark::DoNotOptimize(passed);
  }
}
BENCHMARK(BM_InterpCorpusSuites)->Unit(benchmark::kMillisecond);

void BM_VmCorpusSuites(benchmark::State& state) {
  std::vector<Program> programs;
  for (const auto& ticket : lisa::corpus::Corpus::all())
    programs.push_back(parse_checked(ticket.patched_source));
  std::vector<Module> modules;
  for (const Program& program : programs) modules.push_back(compile(program));
  for (auto _ : state) {
    int passed = 0;
    for (const Module& module : modules) {
      Vm vm(module);
      passed += vm.run_all_tests().first;
    }
    benchmark::DoNotOptimize(passed);
  }
}
BENCHMARK(BM_VmCorpusSuites)->Unit(benchmark::kMillisecond);

void BM_CompileCorpus(benchmark::State& state) {
  std::vector<Program> programs;
  for (const auto& ticket : lisa::corpus::Corpus::all())
    programs.push_back(parse_checked(ticket.patched_source));
  for (auto _ : state) {
    std::size_t chunks = 0;
    for (const Program& program : programs) chunks += compile(program).chunks.size();
    benchmark::DoNotOptimize(chunks);
  }
}
BENCHMARK(BM_CompileCorpus)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
