file(REMOVE_RECURSE
  "CMakeFiles/hdfs_observer_incident.dir/hdfs_observer_incident.cpp.o"
  "CMakeFiles/hdfs_observer_incident.dir/hdfs_observer_incident.cpp.o.d"
  "hdfs_observer_incident"
  "hdfs_observer_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdfs_observer_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
