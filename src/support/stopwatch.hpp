// Wall-clock stopwatch used by the pipeline stage-latency benchmarks (Fig. 5).
#pragma once

#include <chrono>

namespace lisa::support {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { start_ = Clock::now(); }

  /// Elapsed microseconds since construction or last reset().
  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_us() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lisa::support
