#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace lisa::support {
namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace lisa::support
