#include "staticcheck/summaries.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>

#include "minilang/interp.hpp"
#include "obs/trace.hpp"
#include "staticcheck/cfg.hpp"
#include "staticcheck/concurrency.hpp"
#include "staticcheck/dataflow.hpp"
#include "support/faultpoint.hpp"
#include "support/stopwatch.hpp"

namespace lisa::staticcheck {

using minilang::BinOp;
using minilang::Expr;
using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;
using minilang::StmtPtr;

namespace {

/// Hull bottom: the identity element, grown by every return site.
constexpr Interval bottom_interval() { return Interval{Interval::kMax, Interval::kMin}; }

/// Builtins with no effect on user heap: they neither write struct fields
/// nor retain references to their arguments. `assert` is listed here (it
/// throws but does not mutate); blocking builtins are queried separately.
const std::set<std::string>& pure_builtins() {
  static const std::set<std::string> pure = {
      "print", "log",  "len", "list_new", "map_new", "get", "has",
      "keys",  "str",  "min", "max",      "abs",     "now", "advance_clock",
      "assert", "contains"};
  return pure;
}

/// Builtins that write through or store their arguments (container
/// mutation). They still cannot write struct *fields*, so field facts
/// survive a call — only definite-assignment tracking must treat stored
/// objects as escaped (aliases may be written later).
const std::set<std::string>& mutator_builtins() {
  static const std::set<std::string> mutators = {"put", "push", "del"};
  return mutators;
}

std::string path_root(const std::string& path) {
  const std::size_t dot = path.find('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

void collect_calls(const Expr& expr, std::vector<const Expr*>& out) {
  if (expr.kind == Expr::Kind::kCall) out.push_back(&expr);
  for (const auto& arg : expr.args)
    if (arg) collect_calls(*arg, out);
}

/// Joins two nullability verdicts: agreement survives, conflict is unknown.
FunctionSummary::Nullability join_nullability(FunctionSummary::Nullability a,
                                              FunctionSummary::Nullability b) {
  return a == b ? a : FunctionSummary::Nullability::kUnknown;
}

/// Nullability of an expression under a nullness state — the shared
/// classifier for return values and call-site arguments.
FunctionSummary::Nullability classify_nullness(const Expr& expr,
                                               const NullnessAnalysis::State& state,
                                               const SummaryMap& map) {
  switch (expr.kind) {
    case Expr::Kind::kNullLit:
      return FunctionSummary::Nullability::kNull;
    case Expr::Kind::kNew:
      return FunctionSummary::Nullability::kNonNull;
    case Expr::Kind::kCall: {
      const FunctionSummary* callee = map.find(expr.text);
      return callee == nullptr ? FunctionSummary::Nullability::kUnknown
                               : callee->return_nullness;
    }
    default: {
      const std::string path = expr_access_path(expr);
      if (path.empty()) return FunctionSummary::Nullability::kUnknown;
      const auto fact = state.find(path);
      if (fact == state.end()) return FunctionSummary::Nullability::kUnknown;
      return fact->second == NullFact::kNonNull ? FunctionSummary::Nullability::kNonNull
                                                : FunctionSummary::Nullability::kNull;
    }
  }
}

/// True when the phase-A (bottom-up) fields of two summaries agree.
bool phase_a_equal(const FunctionSummary& a, const FunctionSummary& b) {
  return a.mod_fields == b.mod_fields && a.ref_fields == b.ref_fields &&
         a.mod_params == b.mod_params && a.opaque_effects == b.opaque_effects &&
         a.may_throw == b.may_throw && a.may_block == b.may_block &&
         a.net_monitor_normal == b.net_monitor_normal &&
         a.net_monitor_throw == b.net_monitor_throw &&
         a.return_nullness == b.return_nullness &&
         a.nullness_on_return == b.nullness_on_return &&
         a.return_interval == b.return_interval &&
         a.acquired_locks == b.acquired_locks &&
         a.lock_order_edges == b.lock_order_edges &&
         a.field_locks == b.field_locks &&
         a.concurrency_degraded == b.concurrency_degraded;
}

/// Classic interval widening against the previous iterate: a bound that is
/// still moving jumps straight to infinity, capping the ascending chain.
Interval widened(const Interval& previous, Interval next) {
  if (previous.empty() || next.empty()) return next;
  if (next.lo < previous.lo) next.lo = Interval::kMin;
  if (next.hi > previous.hi) next.hi = Interval::kMax;
  return next;
}

/// One bottom-up summarization pass over `fn`, reading callee summaries
/// (and same-SCC iterates) from `map`.
FunctionSummary summarize(const Program& program, const analysis::CallGraph& graph,
                          const SummaryMap& map, const FuncDecl& fn) {
  FunctionSummary s;
  s.return_interval = bottom_interval();

  const auto param_index = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < fn.params.size(); ++i)
      if (fn.params[i].name == name) return static_cast<int>(i);
    return -1;
  };

  // --- syntactic effect walk (MOD/REF, mod_params, may_throw, rebinds) ---
  std::set<std::string> rebound;  // params the function rebinds locally

  const auto apply_call = [&](const Expr& call, int try_depth) {
    const std::string& callee = call.text;
    if (const FunctionSummary* cs = map.find(callee)) {
      s.mod_fields.insert(cs->mod_fields.begin(), cs->mod_fields.end());
      s.ref_fields.insert(cs->ref_fields.begin(), cs->ref_fields.end());
      if (cs->opaque_effects) s.opaque_effects = true;
      if (cs->may_throw && try_depth == 0) s.may_throw = true;
      // A param forwarded into a slot the callee writes through is itself
      // written through.
      for (std::size_t i = 0; i < call.args.size(); ++i) {
        if (cs->mod_params.count(i) == 0) continue;
        const std::string path = expr_access_path(*call.args[i]);
        if (path.empty()) continue;
        const int pi = param_index(path_root(path));
        if (pi >= 0) s.mod_params.insert(static_cast<std::size_t>(pi));
      }
      return;
    }
    if (mutator_builtins().count(callee) > 0) {
      // put/push/del store or mutate arguments; params flowing in escape.
      for (const auto& arg : call.args) {
        if (!arg) continue;
        const std::string path = expr_access_path(*arg);
        if (path.empty()) continue;
        const int pi = param_index(path_root(path));
        if (pi >= 0) s.mod_params.insert(static_cast<std::size_t>(pi));
      }
      return;
    }
    if (minilang::blocking_builtins().count(callee) > 0) return;  // I/O, no heap
    if (pure_builtins().count(callee) > 0) {
      if (callee == "assert" && try_depth == 0) s.may_throw = true;
      return;
    }
    // Unknown name: sema normally rejects these; stay fully conservative.
    s.opaque_effects = true;
    if (try_depth == 0) s.may_throw = true;
  };

  const std::function<void(const Expr&, int)> walk_effects_expr = [&](const Expr& e,
                                                                      int try_depth) {
    switch (e.kind) {
      case Expr::Kind::kField:
        s.ref_fields.insert(e.text);
        break;
      case Expr::Kind::kBinary:
        if ((e.bin_op == BinOp::kDiv || e.bin_op == BinOp::kMod) && try_depth == 0)
          s.may_throw = true;  // division by zero raises
        break;
      case Expr::Kind::kCall:
        apply_call(e, try_depth);
        break;
      default:
        break;
    }
    for (const auto& arg : e.args)
      if (arg) walk_effects_expr(*arg, try_depth);
  };

  const std::function<void(const std::vector<StmtPtr>&, int)> walk_effects =
      [&](const std::vector<StmtPtr>& stmts, int try_depth) {
        for (const StmtPtr& stmt : stmts) {
          switch (stmt->kind) {
            case Stmt::Kind::kThrow:
              if (try_depth == 0) s.may_throw = true;
              break;
            case Stmt::Kind::kLet:
              if (param_index(stmt->name) >= 0) rebound.insert(stmt->name);
              break;
            case Stmt::Kind::kAssign: {
              const Expr& lvalue = *stmt->expr;
              const std::string path = expr_access_path(lvalue);
              if (!path.empty()) {
                const std::size_t dot = path.rfind('.');
                if (dot != std::string::npos) {
                  s.mod_fields.insert(path.substr(dot + 1));
                  const int pi = param_index(path_root(path));
                  if (pi >= 0) s.mod_params.insert(static_cast<std::size_t>(pi));
                } else if (param_index(path) >= 0) {
                  rebound.insert(path);
                }
              } else if (lvalue.kind == Expr::Kind::kIndex) {
                const std::string base = expr_access_path(*lvalue.args[0]);
                if (!base.empty()) {
                  const std::size_t dot = base.rfind('.');
                  if (dot != std::string::npos) s.mod_fields.insert(base.substr(dot + 1));
                  const int pi = param_index(path_root(base));
                  if (pi >= 0) s.mod_params.insert(static_cast<std::size_t>(pi));
                } else {
                  s.opaque_effects = true;  // write through an unmodeled lvalue
                }
              } else {
                s.opaque_effects = true;
              }
              break;
            }
            default:
              break;
          }
          if (stmt->expr) walk_effects_expr(*stmt->expr, try_depth);
          if (stmt->expr2) walk_effects_expr(*stmt->expr2, try_depth);
          if (stmt->kind == Stmt::Kind::kTry) {
            walk_effects(stmt->body, try_depth + 1);
            walk_effects(stmt->else_body, try_depth);  // handler is unprotected
            if (param_index(stmt->catch_var) >= 0) rebound.insert(stmt->catch_var);
          } else {
            walk_effects(stmt->body, try_depth);
            walk_effects(stmt->else_body, try_depth);
          }
        }
      };
  walk_effects(fn.body, 0);

  const Cfg cfg = Cfg::build(fn);

  // --- may-block: a blocking call on some CFG-reachable node. More precise
  // than the syntactic reaches_blocking (dead code does not count). ---
  if (fn.has_annotation("blocking")) s.may_block = true;
  {
    std::vector<bool> seen(cfg.nodes().size(), false);
    std::deque<int> queue{cfg.entry()};
    seen[static_cast<std::size_t>(cfg.entry())] = true;
    while (!queue.empty() && !s.may_block) {
      const CfgNode& node = cfg.node(queue.front());
      queue.pop_front();
      std::vector<const Expr*> calls;
      for_each_node_expr(node, [&](const Expr& e) { collect_calls(e, calls); });
      for (const Expr* call : calls) {
        if (minilang::blocking_builtins().count(call->text) > 0) s.may_block = true;
        const FuncDecl* decl = program.find_function(call->text);
        if (decl != nullptr && decl->has_annotation("blocking")) s.may_block = true;
        const FunctionSummary* cs = map.find(call->text);
        if (cs != nullptr && cs->may_block) s.may_block = true;
      }
      for (const CfgEdge& edge : node.succs) {
        if (seen[static_cast<std::size_t>(edge.to)]) continue;
        seen[static_cast<std::size_t>(edge.to)] = true;
        queue.push_back(edge.to);
      }
    }
  }

  // --- net monitor effect at the function boundary, split by how control
  // leaves (normal return vs throw unwind). Block-structured sync should
  // make both zero; the fixpoint proves it rather than assuming it. ---
  {
    LockStateAnalysis locks(program, graph, &map);
    const auto result = run_forward(cfg, locks);
    const CfgNode& exit_node = cfg.node(cfg.exit());
    for (const int p : exit_node.preds) {
      if (!result.reached[static_cast<std::size_t>(p)]) continue;
      const CfgNode& pred = cfg.node(p);
      LockStateAnalysis::State post = result.in[static_cast<std::size_t>(p)];
      locks.transfer(pred, post);
      const bool is_throw = pred.stmt != nullptr && pred.stmt->kind == Stmt::Kind::kThrow;
      for (const CfgEdge& edge : pred.succs) {
        if (edge.to != cfg.exit()) continue;
        LockStateAnalysis::State flowed = post;
        locks.edge_effect(edge, flowed);
        int& net = is_throw ? s.net_monitor_throw : s.net_monitor_normal;
        net = std::max(net, flowed.depth);
      }
    }
  }

  // --- concurrency: must-held locksets per statement, acquisition
  // orderings, and shared-field access sites (concurrency.cpp). ---
  summarize_concurrency(program, graph, map, fn, cfg, &s);

  // --- nullness: return nullability plus param-rooted facts holding on
  // every normal return. ---
  {
    NullnessAnalysis nullness(program, &map);
    const auto result = run_forward(cfg, nullness);

    FunctionSummary::Nullability returns = FunctionSummary::Nullability::kUnknown;
    bool first_return = true;
    for (const CfgNode& node : cfg.nodes()) {
      if (node.stmt == nullptr || node.stmt->kind != Stmt::Kind::kReturn) continue;
      if (!result.reached[static_cast<std::size_t>(node.id)]) continue;
      if (!node.stmt->expr) continue;
      const FunctionSummary::Nullability at_site = classify_nullness(
          *node.stmt->expr, result.in[static_cast<std::size_t>(node.id)], map);
      returns = first_return ? at_site : join_nullability(returns, at_site);
      first_return = false;
    }
    if (!first_return) s.return_nullness = returns;

    // Meet over every normal-exit predecessor (throw unwinds excluded).
    NullnessAnalysis::State exit_meet;
    bool first_exit = true;
    const CfgNode& exit_node = cfg.node(cfg.exit());
    for (const int p : exit_node.preds) {
      if (!result.reached[static_cast<std::size_t>(p)]) continue;
      const CfgNode& pred = cfg.node(p);
      if (pred.stmt != nullptr && pred.stmt->kind == Stmt::Kind::kThrow) continue;
      NullnessAnalysis::State post = result.in[static_cast<std::size_t>(p)];
      nullness.transfer(pred, post);
      if (first_exit) {
        exit_meet = std::move(post);
        first_exit = false;
      } else {
        nullness.join(exit_meet, post);
      }
    }
    if (!first_exit)
      for (const auto& [path, fact] : exit_meet) {
        const std::string root = path_root(path);
        if (param_index(root) < 0 || rebound.count(root) > 0) continue;
        s.nullness_on_return.emplace(path, fact);
      }
  }

  // --- return-value interval: hull over every reachable return site. ---
  {
    IntervalAnalysis intervals(program, &map);
    const auto result = run_forward(cfg, intervals);
    for (const CfgNode& node : cfg.nodes()) {
      if (node.stmt == nullptr || node.stmt->kind != Stmt::Kind::kReturn) continue;
      if (!result.reached[static_cast<std::size_t>(node.id)]) continue;
      if (!node.stmt->expr) continue;
      const Interval at_site =
          intervals.eval(*node.stmt->expr, result.in[static_cast<std::size_t>(node.id)]);
      s.return_interval.lo = std::min(s.return_interval.lo, at_site.lo);
      s.return_interval.hi = std::max(s.return_interval.hi, at_site.hi);
    }
  }

  return s;
}

}  // namespace

const FunctionSummary* SummaryMap::find(const std::string& name) const {
  const auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

CallEffect SummaryMap::effect_of(const std::string& callee) const {
  const auto it = summaries_.find(callee);
  if (it != summaries_.end()) {
    if (it->second.opaque_effects) return CallEffect{.havoc_all = true};
    CallEffect effect;
    effect.mod_fields = &it->second.mod_fields;
    effect.mod_params = &it->second.mod_params;
    return effect;
  }
  if (mutator_builtins().count(callee) > 0) {
    CallEffect effect;
    effect.writes_all_params = true;
    return effect;
  }
  if (pure_builtins().count(callee) > 0 || minilang::blocking_builtins().count(callee) > 0)
    return CallEffect{};
  return CallEffect{.havoc_all = true};
}

SummaryMap SummaryMap::compute(const Program& program, const analysis::CallGraph& graph) {
  obs::ScopedSpan span("summaries.compute");
  if (support::faultpoint("summaries.fixpoint") != support::FaultAction::kNone)
    throw std::runtime_error("injected fault at summaries.fixpoint");
  const support::Stopwatch timer;
  SummaryMap map;
  const analysis::Condensation condensation = graph.condensation();
  map.stats_.components = static_cast<int>(condensation.size());

  // ----- Phase A: bottom-up effects and transfer facts, callees first. -----
  constexpr int kWidenRound = 3;  // start widening return intervals here
  constexpr int kMaxRounds = 16;  // divergence safety net
  for (const auto& component : condensation.components) {
    for (const std::string& name : component.members) {
      FunctionSummary seed;
      seed.return_interval = bottom_interval();
      map.summaries_[name] = std::move(seed);
    }
    if (component.recursive) ++map.stats_.recursive_components;

    for (int round = 0;; ++round) {
      bool changed = false;
      for (const std::string& name : component.members) {
        const FuncDecl* fn = program.find_function(name);
        if (fn == nullptr) continue;
        FunctionSummary next = summarize(program, graph, map, *fn);
        FunctionSummary& current = map.summaries_[name];
        if (round >= kWidenRound)
          next.return_interval = widened(current.return_interval, next.return_interval);
        if (!phase_a_equal(current, next)) {
          current = std::move(next);
          changed = true;
        }
      }
      if (!component.recursive || !changed) break;
      ++map.stats_.fixpoint_iterations;
      if (round >= kMaxRounds) {
        // Should be unreachable (widening caps the interval chain; every
        // other lattice is finite). Degrade to fully conservative.
        for (const std::string& name : component.members) {
          FunctionSummary& summary = map.summaries_[name];
          summary.opaque_effects = true;
          summary.may_throw = true;
          summary.may_block = true;
          summary.return_nullness = FunctionSummary::Nullability::kUnknown;
          summary.nullness_on_return.clear();
          summary.return_interval = Interval{};
          // The concurrency sets are incomplete from here on; flag them so
          // no consumer proves acyclicity or guard coverage from them.
          summary.acquired_locks.clear();
          summary.lock_order_edges.clear();
          summary.field_locks.clear();
          summary.concurrency_degraded = true;
        }
        break;
      }
    }
    // A function with no normal return keeps the hull identity; finalize to
    // top so callers never see an empty interval.
    for (const std::string& name : component.members) {
      FunctionSummary& summary = map.summaries_[name];
      if (summary.return_interval.empty()) summary.return_interval = Interval{};
    }
  }

  // ----- Phase B: top-down boundary facts, callers first. -----
  std::set<std::string> entry_names;
  for (const FuncDecl* fn : graph.entry_functions()) entry_names.insert(fn->name);

  struct CallerStates {
    Cfg cfg;
    DataflowResult<NullnessAnalysis> nullness;
    DataflowResult<IntervalAnalysis> intervals;
  };
  std::map<std::string, CallerStates> cache;
  const auto caller_states = [&](const FuncDecl& caller) -> const CallerStates& {
    const auto it = cache.find(caller.name);
    if (it != cache.end()) return it->second;
    CallerStates states{Cfg::build(caller), {}, {}};
    NullnessAnalysis nullness(program, &map);
    states.nullness = run_forward(states.cfg, nullness);
    IntervalAnalysis intervals(program, &map);
    states.intervals = run_forward(states.cfg, intervals);
    return cache.emplace(caller.name, std::move(states)).first->second;
  };

  for (auto component = condensation.components.rbegin();
       component != condensation.components.rend(); ++component) {
    for (const std::string& name : component->members) {
      const FuncDecl* fn = program.find_function(name);
      if (fn == nullptr || fn->has_annotation("test")) continue;
      // Entries are API surface: callable from outside with anything.
      if (entry_names.count(name) > 0) continue;
      const std::vector<const analysis::CallSite*> sites = graph.sites_calling(name);
      if (sites.empty()) continue;
      // Within a cycle the argument join would depend on itself; stay top.
      const int own_component = condensation.component_index(name);
      bool cyclic = false;
      for (const analysis::CallSite* site : sites)
        if (condensation.component_index(site->caller->name) == own_component) cyclic = true;
      if (cyclic) continue;

      std::map<std::string, FunctionSummary::Nullability> null_join;
      std::map<std::string, Interval> interval_join;
      bool first_site = true;
      bool top_everything = false;
      const IntervalAnalysis interval_eval(program, &map);
      for (const analysis::CallSite* site : sites) {
        if (site->call->args.size() != fn->params.size()) {
          top_everything = true;  // arity mismatch: sema rejects, stay safe
          break;
        }
        const CallerStates& states = caller_states(*site->caller);
        const int node = states.cfg.node_of(site->stmt);
        // A statically unreachable call site contributes no executions.
        if (node < 0) {
          top_everything = true;
          break;
        }
        if (!states.nullness.reached[static_cast<std::size_t>(node)]) continue;
        const auto& null_state = states.nullness.in[static_cast<std::size_t>(node)];
        const auto& interval_state = states.intervals.in[static_cast<std::size_t>(node)];
        for (std::size_t i = 0; i < fn->params.size(); ++i) {
          const Expr& arg = *site->call->args[i];
          const std::string& param = fn->params[i].name;
          const FunctionSummary::Nullability arg_null =
              classify_nullness(arg, null_state, map);
          const Interval arg_interval = interval_eval.eval(arg, interval_state);
          if (first_site) {
            null_join[param] = arg_null;
            interval_join[param] = arg_interval;
          } else {
            null_join[param] = join_nullability(null_join[param], arg_null);
            Interval& hull = interval_join[param];
            hull.lo = std::min(hull.lo, arg_interval.lo);
            hull.hi = std::max(hull.hi, arg_interval.hi);
          }
        }
        first_site = false;
      }
      if (top_everything || first_site) continue;
      FunctionSummary& summary = map.summaries_[name];
      for (const auto& [param, nullability] : null_join) {
        if (nullability == FunctionSummary::Nullability::kNonNull)
          summary.boundary_nullness[param] = NullFact::kNonNull;
        else if (nullability == FunctionSummary::Nullability::kNull)
          summary.boundary_nullness[param] = NullFact::kNull;
      }
      for (const auto& [param, interval] : interval_join)
        if (!interval.unbounded() && !interval.empty())
          summary.boundary_intervals[param] = interval;
    }
  }

  map.stats_.elapsed_ms = timer.elapsed_ms();
  span.attr("components", map.stats_.components);
  span.attr("recursive_components", map.stats_.recursive_components);
  span.attr("fixpoint_iterations", map.stats_.fixpoint_iterations);
  return map;
}

}  // namespace lisa::staticcheck
