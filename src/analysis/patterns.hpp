// Structural (pattern) semantic rules.
//
// §3.1 / Fig. 6 of the paper: some low-level semantics generalize beyond a
// state predicate at one statement — e.g. ZK-2201/ZK-3531's "no blocking I/O
// within synchronized blocks", which recurred in a *different* serialization
// function a year later. Such rules are checked structurally over the call
// graph rather than via path conditions.
#pragma once

#include <string>
#include <vector>

#include "analysis/callgraph.hpp"

namespace lisa::analysis {

struct PatternViolation {
  std::string function;             // function whose sync block is affected
  const minilang::Stmt* stmt = nullptr;  // the offending statement
  /// The enclosing `sync` statement whose monitor is held at the site.
  const minilang::Stmt* sync_stmt = nullptr;
  std::string blocking_call;        // the blocking leaf reached
  std::vector<std::string> call_path;  // call chain from the sync site to the leaf
  std::string description;
};

/// Checks the generalized rule "no blocking call may execute while holding a
/// monitor": flags every call site lexically inside a `sync` block whose
/// callee transitively reaches a blocking builtin or @blocking function,
/// with one violation per distinct call chain to a blocking leaf (a callee
/// reaching several leaves yields several violations, not one witness).
[[nodiscard]] std::vector<PatternViolation> check_no_blocking_in_sync(
    const minilang::Program& program, const CallGraph& graph);

/// Narrow (non-generalized) variant used by the Fig. 6 bench: flags only
/// direct calls to `specific_callee` inside sync blocks. Demonstrates why
/// rules tied to one function miss recurrences elsewhere.
[[nodiscard]] std::vector<PatternViolation> check_specific_call_in_sync(
    const minilang::Program& program, const CallGraph& graph,
    const std::string& specific_callee);

}  // namespace lisa::analysis
