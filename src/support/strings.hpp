// String helpers shared across the LISA codebase.
//
// All functions are pure and allocate only when they must; inputs are taken
// as std::string_view so callers never pay for conversions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lisa::support {

/// Splits `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Splits `text` on any run of whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// True if `needle` occurs anywhere in `haystack`.
[[nodiscard]] bool contains(std::string_view haystack, std::string_view needle);

/// Case-insensitive variant of contains() for ASCII text.
[[nodiscard]] bool contains_ci(std::string_view haystack, std::string_view needle);

/// ASCII lower-casing.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view text, std::string_view from,
                                      std::string_view to);

/// Tokenizes identifier-like words (alphanumeric + '_' runs), lower-cased.
/// Used by the TF-IDF embedding model in src/inference.
[[nodiscard]] std::vector<std::string> word_tokens(std::string_view text);

}  // namespace lisa::support
