// Shared diagnostic record for the staticcheck analyses.
#pragma once

#include <string>
#include <vector>

#include "minilang/token.hpp"

namespace lisa::staticcheck {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] inline const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

struct Diagnostic {
  std::string analysis;  // "nullness" | "definite-assignment" | "lock-state" | "intervals"
  Severity severity = Severity::kWarning;
  std::string function;
  minilang::SourceLoc loc;
  std::string message;

  /// "fn:12:3: warning: message [analysis]" — the lint line format.
  [[nodiscard]] std::string render() const {
    return function + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.column) +
           ": " + severity_name(severity) + ": " + message + " [" + analysis + "]";
  }
};

}  // namespace lisa::staticcheck
