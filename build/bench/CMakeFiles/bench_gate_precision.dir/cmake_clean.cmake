file(REMOVE_RECURSE
  "CMakeFiles/bench_gate_precision.dir/bench_gate_precision.cpp.o"
  "CMakeFiles/bench_gate_precision.dir/bench_gate_precision.cpp.o.d"
  "bench_gate_precision"
  "bench_gate_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
