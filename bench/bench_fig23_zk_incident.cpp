// Figs. 2 & 3: the ZooKeeper ephemeral-node incident, replayed on the native
// mini-ZooKeeper at increasing cluster sizes, buggy vs fixed server —
// showing the blast radius of the stale registration (producers stuck on a
// dead address) and that the fixed server eliminates it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "systems/sim/event_loop.hpp"
#include "systems/zookeeper/registry.hpp"
#include "systems/zookeeper/server.hpp"

namespace {

using namespace lisa::systems;

struct Outcome {
  std::size_t stale_nodes = 0;
  std::uint64_t stale_sends = 0;
  std::uint64_t ok_sends = 0;
};

Outcome replay(int consumers, int crash_count, bool fix_enabled, int rounds) {
  EventLoop loop;
  zk::ZkConfig config;
  config.fix_zk1208 = fix_enabled;
  zk::ZooKeeperServer server(loop, config);
  zk::ConsumerRegistry registry(server);
  std::map<std::string, bool> live;

  for (int i = 1; i <= consumers; ++i) {
    const std::string id = "consumer-" + std::to_string(i);
    registry.register_consumer(id, "host-" + std::to_string(i) + ":9092");
    live[id] = true;
  }
  // The first `crash_count` consumers crash; each crash races a re-create
  // into the CLOSING window of its own session.
  for (int i = 1; i <= crash_count; ++i) {
    const std::string id = "consumer-" + std::to_string(i);
    loop.schedule_at(100 + i, [&, id, i] {
      live[id] = false;
      server.close_session(i);  // sessions are allocated 1..consumers
      const std::string ghost = id + "-ghost";
      server.create(i, "/consumers/ids/" + ghost, "host-" + std::to_string(i) + ":9092",
                    /*ephemeral=*/true);
      live[ghost] = false;
    });
  }
  loop.run_until(3000);

  zk::Producer producer(registry, &live);
  for (int round = 0; round < rounds; ++round)
    for (const std::string& id : registry.list_consumers()) producer.send(id);

  Outcome outcome;
  outcome.stale_nodes = server.find_stale_ephemerals().size();
  outcome.stale_sends = producer.stale_address_errors();
  outcome.ok_sends = producer.sent_ok();
  return outcome;
}

void print_incident_table() {
  std::printf("=== Figs. 2 & 3: ZK-1208 replay, buggy vs fixed server ===\n\n");
  std::printf("%9s %8s | %11s %12s %10s | %11s %12s %10s\n", "consumers", "crashes",
              "stale nodes", "stale sends", "ok sends", "stale nodes", "stale sends",
              "ok sends");
  std::printf("%9s %8s | %35s | %35s\n", "", "", "---------- buggy server ----------",
              "---------- fixed server ----------");
  for (const auto& [consumers, crashes] :
       std::vector<std::pair<int, int>>{{3, 1}, {10, 3}, {50, 10}, {200, 40}}) {
    const Outcome buggy = replay(consumers, crashes, /*fix_enabled=*/false, 50);
    const Outcome fixed = replay(consumers, crashes, /*fix_enabled=*/true, 50);
    std::printf("%9d %8d | %11zu %12llu %10llu | %11zu %12llu %10llu\n", consumers, crashes,
                buggy.stale_nodes, static_cast<unsigned long long>(buggy.stale_sends),
                static_cast<unsigned long long>(buggy.ok_sends), fixed.stale_nodes,
                static_cast<unsigned long long>(fixed.stale_sends),
                static_cast<unsigned long long>(fixed.ok_sends));
  }
  std::printf("\nshape check: every crash leaves exactly one stale registration on the "
              "buggy server and zero on the fixed one; producer errors scale with "
              "stale registrations (the Kafka 'zombie mode').\n\n");
}

void BM_IncidentReplay(benchmark::State& state) {
  const int consumers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Outcome outcome = replay(consumers, consumers / 5, false, 10);
    benchmark::DoNotOptimize(outcome.stale_sends);
  }
  state.counters["consumers"] = consumers;
}
BENCHMARK(BM_IncidentReplay)->Arg(10)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_incident_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
