#include "lisa/report.hpp"

#include <cstdio>

namespace lisa::core {

namespace {

std::string chain_text(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& fn : chain) {
    if (!out.empty()) out += " → ";
    out += "`" + fn + "`";
  }
  return out;
}

const char* verdict_emoji(PathVerdict verdict) {
  switch (verdict) {
    case PathVerdict::kVerified: return "✅";
    case PathVerdict::kViolated: return "❌";
    case PathVerdict::kUnmappable: return "❓";
  }
  return "?";
}

}  // namespace

std::string render_markdown(const ContractCheckReport& report,
                            const SemanticContract* contract) {
  std::string out = "### Contract `" + report.contract_id + "`\n\n";
  if (contract != nullptr) {
    out += "> " + contract->description + "\n>\n";
    out += "> `<" + contract->condition_text + "> " + contract->target_fragment + "...`\n\n";
  }
  out += "- target statements: " + std::to_string(report.target_statements) + "\n";
  out += "- paths: " + std::to_string(report.paths.size()) + " (verified " +
         std::to_string(report.verified) + ", violated " + std::to_string(report.violated) +
         ", unmappable " + std::to_string(report.unmappable) + ", uncovered by tests " +
         std::to_string(report.uncovered) + ")\n";
  out += std::string("- sanity (fixed path verifies): ") + (report.sanity_ok ? "yes" : "NO") +
         "\n";
  if (!report.screen_verdict.empty()) {
    out += "- screening: " + report.screen_verdict + " (" + report.screen_reason + ")";
    if (report.screen_skipped_concolic) out += " — concolic replay skipped";
    out += "\n";
  }
  out += std::string("- overall: **") + (report.passed() ? "PASS" : "FAIL") + "**\n\n";
  if (!report.paths.empty()) {
    out += "| path | verdict | detail |\n|---|---|---|\n";
    for (const PathReport& path : report.paths) {
      out += "| " + chain_text(path.call_chain) + " | " + verdict_emoji(path.verdict) + " " +
             path_verdict_name(path.verdict) + " | ";
      if (path.verdict == PathVerdict::kViolated)
        out += "reachable with " + path.counterexample;
      else if (!path.covering_tests.empty())
        out += "exercised by `" + path.covering_tests.front() + "`";
      out += " |\n";
    }
    out += "\n";
  }
  for (const std::string& violation : report.structural_violations)
    out += "- ⚠ structural: " + violation + "\n";
  if (report.dynamic.tests_run > 0) {
    out += "\nConcolic replay: " + std::to_string(report.dynamic.tests_run) + " tests, " +
           std::to_string(report.dynamic.target_hits) + " target hits, " +
           std::to_string(report.dynamic.symbolic_violations) + " missing-check traces, " +
           std::to_string(report.dynamic.concrete_violations) + " concrete violations.\n";
    for (const std::string& detail : report.dynamic.violation_details)
      out += "  - " + detail + "\n";
  }
  return out;
}

std::string render_markdown(const PipelineResult& result) {
  std::string out = "## LISA pipeline report — case `" + result.proposal.case_id + "`\n\n";
  out += "**High-level semantics.** " + result.proposal.high_level_semantics + "\n\n";
  out += "**Low-level semantics.**\n\n";
  for (const auto& low : result.proposal.low_level)
    out += "- `<" + low.condition_statement + "> " + low.target_statement + "...` — " +
           low.description + "\n";
  if (!result.rejected.empty()) {
    out += "\n**Rejected (outside checkable fragment).**\n\n";
    for (const std::string& rejected : result.rejected) out += "- " + rejected + "\n";
  }
  out += "\n";
  for (std::size_t i = 0; i < result.reports.size(); ++i) {
    const SemanticContract* contract =
        i < result.contracts.size() ? &result.contracts[i] : nullptr;
    out += render_markdown(result.reports[i], contract);
    out += "\n";
  }
  const ScreeningSummary screening = result.screening();
  if (screening.settled() + screening.unknown > 0) {
    char fraction[32];
    std::snprintf(fraction, sizeof(fraction), "%.0f%%", screening.settled_fraction() * 100.0);
    out += "_Screening: " + std::to_string(screening.settled()) + " settled statically (" +
           std::to_string(screening.proved_safe) + " safe, " +
           std::to_string(screening.proved_violated) + " violated, " + fraction +
           " settled), " + std::to_string(screening.unknown) +
           " explored by the full check, " + std::to_string(screening.concolic_skipped) +
           " concolic replay(s) skipped._\n\n";
  }
  char timing[224];
  std::snprintf(timing, sizeof(timing),
                "_Timings: infer %.2f ms, translate %.2f ms, assert %.2f ms (screen %.2f "
                "ms, summaries %.2f ms), total %.2f ms._\n",
                result.timings.infer_ms, result.timings.translate_ms,
                result.timings.check_ms, result.timings.screen_ms,
                result.timings.summary_ms, result.timings.total_ms);
  out += timing;
  return out;
}

std::string render_markdown(const GateDecision& decision) {
  std::string out = decision.allowed ? "## ✅ Commit admitted\n\n" : "## ⛔ Commit blocked\n\n";
  if (!decision.allowed) {
    out += "This change violates semantics learned from past incidents:\n\n";
    for (const std::string& violation : decision.violations) out += "- " + violation + "\n";
    out += "\nEach rule below links the unguarded path and a state that reaches it.\n\n";
  }
  for (const ContractCheckReport& report : decision.reports) {
    if (report.passed()) continue;
    out += render_markdown(report);
    out += "\n";
  }
  char timing[160];
  if (decision.screened_settled + decision.screened_unknown > 0) {
    std::snprintf(timing, sizeof(timing),
                  "_Gate evaluation: %.1f ms (%d/%d contracts settled statically, "
                  "summaries %.2f ms)._\n",
                  decision.evaluation_ms, decision.screened_settled,
                  decision.screened_settled + decision.screened_unknown,
                  decision.summary_ms);
  } else {
    std::snprintf(timing, sizeof(timing), "_Gate evaluation: %.1f ms._\n",
                  decision.evaluation_ms);
  }
  out += timing;
  return out;
}

std::string render_markdown(const PropertyReport& report) {
  std::string out = "## High-level property `" + report.property_id + "`: **" +
                    property_status_name(report.status) + "**\n\n";
  for (const std::string& finding : report.findings) out += "- " + finding + "\n";
  if (!report.findings.empty()) out += "\n";
  for (const ContractCheckReport& constituent : report.constituent_reports) {
    out += render_markdown(constituent);
    out += "\n";
  }
  return out;
}

}  // namespace lisa::core
