// Unit + property tests for the SMT backend: formulas, NNF, the DPLL(T)
// solver, and the MiniLang bridge.
#include <gtest/gtest.h>

#include "minilang/parser.hpp"
#include "smt/formula.hpp"
#include "smt/minilang_bridge.hpp"
#include "smt/solver.hpp"
#include "support/rng.hpp"

namespace lisa::smt {
namespace {

FormulaPtr bvar(const std::string& name) { return Formula::make_atom(Atom::bool_var(name)); }
FormulaPtr cmp(const std::string& v, CmpOp op, std::int64_t c) {
  return Formula::make_atom(Atom::cmp_const(v, op, c));
}

TEST(Formula, FactoriesSimplify) {
  EXPECT_EQ(Formula::conj2(Formula::truth(true), bvar("a"))->to_string(), "a");
  EXPECT_EQ(Formula::conj2(Formula::truth(false), bvar("a"))->kind, Formula::Kind::kFalse);
  EXPECT_EQ(Formula::disj2(Formula::truth(true), bvar("a"))->kind, Formula::Kind::kTrue);
  EXPECT_EQ(Formula::negate(Formula::negate(bvar("a")))->to_string(), "a");
  // Flattening + dedup.
  const FormulaPtr nested =
      Formula::conj2(Formula::conj2(bvar("a"), bvar("b")), Formula::conj2(bvar("a"), bvar("c")));
  EXPECT_EQ(nested->children.size(), 3u);
}

TEST(Formula, VariablesCollectsAllNames) {
  const FormulaPtr f = Formula::conj2(
      cmp("s.ttl", CmpOp::kGt, 0),
      Formula::disj2(bvar("s#null"), Formula::make_atom(Atom::cmp_var("a", CmpOp::kLt, "b"))));
  const auto vars = f->variables();
  EXPECT_EQ(vars.size(), 4u);
  EXPECT_TRUE(vars.count("s.ttl"));
  EXPECT_TRUE(vars.count("b"));
}

TEST(Formula, NnfPushesNegationToAtoms) {
  const FormulaPtr f =
      Formula::negate(Formula::conj2(bvar("a"), cmp("x", CmpOp::kLt, 3)));
  const FormulaPtr nnf = to_nnf(f);
  EXPECT_EQ(nnf->to_string(), "(!(a) || x >= 3)");
}

TEST(Solver, BasicSatUnsat) {
  Solver solver;
  EXPECT_TRUE(solver.solve(bvar("a")).sat());
  EXPECT_FALSE(solver.solve(Formula::conj2(bvar("a"), Formula::negate(bvar("a")))).sat());
  EXPECT_TRUE(solver.solve(Formula::truth(true)).sat());
  EXPECT_FALSE(solver.solve(Formula::truth(false)).sat());
}

TEST(Solver, ModelAssignsBooleans) {
  Solver solver;
  const SolveResult result =
      solver.solve(Formula::conj2(bvar("a"), Formula::negate(bvar("b"))));
  ASSERT_TRUE(result.sat());
  EXPECT_TRUE(result.model.bools.at("a"));
  EXPECT_FALSE(result.model.bools.at("b"));
}

TEST(Solver, IntervalReasoning) {
  Solver solver;
  // x > 5 && x < 3 is unsat.
  EXPECT_FALSE(
      solver.solve(Formula::conj2(cmp("x", CmpOp::kGt, 5), cmp("x", CmpOp::kLt, 3))).sat());
  // x > 5 && x <= 6 forces x == 6.
  const SolveResult result =
      solver.solve(Formula::conj2(cmp("x", CmpOp::kGt, 5), cmp("x", CmpOp::kLe, 6)));
  ASSERT_TRUE(result.sat());
  EXPECT_EQ(result.model.ints.at("x"), 6);
}

TEST(Solver, EqualityAndDisequality) {
  Solver solver;
  EXPECT_FALSE(
      solver.solve(Formula::conj2(cmp("x", CmpOp::kEq, 4), cmp("x", CmpOp::kNe, 4))).sat());
  EXPECT_TRUE(
      solver.solve(Formula::conj2(cmp("x", CmpOp::kEq, 4), cmp("x", CmpOp::kGe, 4))).sat());
  // Integer gap: x > 3 && x < 4 has no integer solution.
  EXPECT_FALSE(
      solver.solve(Formula::conj2(cmp("x", CmpOp::kGt, 3), cmp("x", CmpOp::kLt, 4))).sat());
}

TEST(Solver, VarVarOrderCycles) {
  Solver solver;
  const FormulaPtr lt_ab = Formula::make_atom(Atom::cmp_var("a", CmpOp::kLt, "b"));
  const FormulaPtr lt_bc = Formula::make_atom(Atom::cmp_var("b", CmpOp::kLt, "c"));
  const FormulaPtr lt_ca = Formula::make_atom(Atom::cmp_var("c", CmpOp::kLt, "a"));
  EXPECT_TRUE(solver.solve(Formula::conj2(lt_ab, lt_bc)).sat());
  EXPECT_FALSE(solver.solve(Formula::conj({lt_ab, lt_bc, lt_ca})).sat());
  // Equality chains propagate.
  const FormulaPtr eq_ab = Formula::make_atom(Atom::cmp_var("a", CmpOp::kEq, "b"));
  const FormulaPtr eq_bc = Formula::make_atom(Atom::cmp_var("b", CmpOp::kEq, "c"));
  const FormulaPtr ne_ac = Formula::make_atom(Atom::cmp_var("a", CmpOp::kNe, "c"));
  EXPECT_FALSE(solver.solve(Formula::conj({eq_ab, eq_bc, ne_ac})).sat());
}

TEST(Solver, DisjunctionExploresBothArms) {
  Solver solver;
  const FormulaPtr f = Formula::conj2(
      Formula::disj2(cmp("x", CmpOp::kLt, 0), cmp("x", CmpOp::kGt, 10)),
      cmp("x", CmpOp::kGe, 0));
  const SolveResult result = solver.solve(f);
  ASSERT_TRUE(result.sat());
  EXPECT_GT(result.model.ints.at("x"), 10);
}

TEST(Solver, PaperExampleEphemeralChecker) {
  // §3.2 worked example: checker = s!=null && !s.isClosing && s.ttl > 0.
  Solver solver;
  const FormulaPtr checker = Formula::conj(
      {Formula::negate(bvar("s#null")), Formula::negate(bvar("s.isClosing")),
       cmp("s.ttl", CmpOp::kGt, 0)});
  // Trace 1: (s == null) — fulfills the complement → violation.
  EXPECT_TRUE(solver.solve(Formula::conj2(bvar("s#null"), Formula::negate(checker))).sat());
  // Trace 2: s != null && !s.isClosing (ttl unchecked) → violation.
  const FormulaPtr trace2 =
      Formula::conj2(Formula::negate(bvar("s#null")), Formula::negate(bvar("s.isClosing")));
  EXPECT_TRUE(solver.solve(Formula::conj2(trace2, Formula::negate(checker))).sat());
  // Trace 3: full condition → adheres to the semantic.
  const FormulaPtr trace3 = Formula::conj2(trace2, cmp("s.ttl", CmpOp::kGt, 0));
  EXPECT_FALSE(solver.solve(Formula::conj2(trace3, Formula::negate(checker))).sat());
}

TEST(Solver, ImpliesAndEquivalent) {
  Solver solver;
  EXPECT_TRUE(solver.implies(cmp("x", CmpOp::kGt, 5), cmp("x", CmpOp::kGt, 3)));
  EXPECT_FALSE(solver.implies(cmp("x", CmpOp::kGt, 3), cmp("x", CmpOp::kGt, 5)));
  EXPECT_TRUE(solver.equivalent(Formula::negate(cmp("x", CmpOp::kLt, 3)),
                                cmp("x", CmpOp::kGe, 3)));
}

// Property test: for random formulas, solve() finding SAT must produce a
// model that actually satisfies the formula under direct evaluation.
class RandomFormulaTest : public ::testing::TestWithParam<int> {};

FormulaPtr random_formula(support::Rng& rng, int depth) {
  static const std::vector<std::string> ints = {"x", "y", "z"};
  static const std::vector<std::string> bools = {"p", "q"};
  if (depth == 0 || rng.next_bool(0.3)) {
    if (rng.next_bool(0.4)) return bvar(bools[rng.pick_index(bools.size())]);
    const CmpOp op = static_cast<CmpOp>(rng.next_below(6));
    if (rng.next_bool(0.3)) {
      return Formula::make_atom(Atom::cmp_var(ints[rng.pick_index(3)], op,
                                              ints[rng.pick_index(3)]));
    }
    return cmp(ints[rng.pick_index(3)], op, rng.next_in(-4, 4));
  }
  switch (rng.next_below(3)) {
    case 0: return Formula::negate(random_formula(rng, depth - 1));
    case 1:
      return Formula::conj2(random_formula(rng, depth - 1), random_formula(rng, depth - 1));
    default:
      return Formula::disj2(random_formula(rng, depth - 1), random_formula(rng, depth - 1));
  }
}

bool eval_formula(const FormulaPtr& f, const Model& model) {
  const auto int_of = [&](const std::string& name) {
    const auto it = model.ints.find(name);
    return it == model.ints.end() ? 0 : it->second;
  };
  switch (f->kind) {
    case Formula::Kind::kTrue: return true;
    case Formula::Kind::kFalse: return false;
    case Formula::Kind::kNot: return !eval_formula(f->children[0], model);
    case Formula::Kind::kAnd: {
      for (const FormulaPtr& child : f->children)
        if (!eval_formula(child, model)) return false;
      return true;
    }
    case Formula::Kind::kOr: {
      for (const FormulaPtr& child : f->children)
        if (eval_formula(child, model)) return true;
      return false;
    }
    case Formula::Kind::kAtom: {
      const Atom& atom = f->atom;
      if (atom.kind == Atom::Kind::kBoolVar) {
        const auto it = model.bools.find(atom.lhs);
        return it != model.bools.end() && it->second;
      }
      const std::int64_t lhs = int_of(atom.lhs);
      const std::int64_t rhs =
          atom.kind == Atom::Kind::kCmpConst ? atom.rhs_const : int_of(atom.rhs_var);
      switch (atom.op) {
        case CmpOp::kEq: return lhs == rhs;
        case CmpOp::kNe: return lhs != rhs;
        case CmpOp::kLt: return lhs < rhs;
        case CmpOp::kLe: return lhs <= rhs;
        case CmpOp::kGt: return lhs > rhs;
        case CmpOp::kGe: return lhs >= rhs;
      }
      return false;
    }
  }
  return false;
}

TEST_P(RandomFormulaTest, SatModelsActuallySatisfy) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 17);
  Solver solver;
  const FormulaPtr f = random_formula(rng, 4);
  const SolveResult result = solver.solve(f);
  if (result.sat()) {
    EXPECT_TRUE(eval_formula(f, result.model))
        << "formula: " << f->to_string() << "\nmodel: " << result.model.to_string();
  } else {
    // UNSAT must be symmetric: the negation is then valid, so it must be SAT.
    EXPECT_TRUE(solver.solve(Formula::negate(f)).sat()) << f->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, RandomFormulaTest, ::testing::Range(0, 60));

// Property: F and NNF(F) are equivalent for random formulas.
TEST_P(RandomFormulaTest, NnfPreservesSemantics) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503ULL + 99);
  Solver solver;
  const FormulaPtr f = random_formula(rng, 4);
  EXPECT_TRUE(solver.equivalent(f, to_nnf(f))) << f->to_string();
}

// ---------------------------------------------------------------------------
// MiniLang bridge
// ---------------------------------------------------------------------------

TEST(Bridge, ParsesTypicalContractConditions) {
  const auto f = parse_condition("!(s == null) && !(s.is_closing) && s.ttl > 0");
  ASSERT_TRUE(f.has_value());
  const auto vars = (*f)->variables();
  EXPECT_TRUE(vars.count("s#null"));
  EXPECT_TRUE(vars.count("s.is_closing"));
  EXPECT_TRUE(vars.count("s.ttl"));
}

TEST(Bridge, NullComparisonsBothOrders) {
  const auto a = parse_condition("s != null");
  const auto b = parse_condition("null != s");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  Solver solver;
  EXPECT_TRUE(solver.equivalent(*a, *b));
}

TEST(Bridge, BoolLiteralComparison) {
  const auto a = parse_condition("w.connected == true");
  const auto b = parse_condition("w.connected");
  ASSERT_TRUE(a.has_value());
  Solver solver;
  EXPECT_TRUE(solver.equivalent(*a, *b));
  const auto c = parse_condition("w.connected != true");
  EXPECT_TRUE(solver.equivalent(*c, Formula::negate(*b)));
}

TEST(Bridge, IntLiteralOnLeftSwapsOperator) {
  const auto a = parse_condition("0 < blk.location_count");
  const auto b = parse_condition("blk.location_count > 0");
  ASSERT_TRUE(a.has_value());
  Solver solver;
  EXPECT_TRUE(solver.equivalent(*a, *b));
}

TEST(Bridge, RejectPolicyFailsOnCalls) {
  EXPECT_FALSE(parse_condition("len(xs) > 0").has_value());
  EXPECT_FALSE(parse_condition("a + 1 > b").has_value());
}

TEST(Bridge, AbstractPolicyMakesOpaqueAtoms) {
  const minilang::ExprPtr expr = minilang::parse_expression("len(xs) > 0 && s.ok");
  const auto f = to_formula(*expr, OpaquePolicy::kAbstract);
  ASSERT_TRUE(f.has_value());
  bool has_opaque = false;
  for (const std::string& var : (*f)->variables())
    if (var.rfind("opaque:", 0) == 0) has_opaque = true;
  EXPECT_TRUE(has_opaque);
}

TEST(Bridge, AccessPathRendering) {
  const minilang::ExprPtr expr = minilang::parse_expression("a.b.c");
  EXPECT_EQ(access_path(*expr), "a.b.c");
  const minilang::ExprPtr call = minilang::parse_expression("f(x).y");
  EXPECT_EQ(access_path(*call), "");
}

TEST(Bridge, ConstantFolding) {
  const auto t = parse_condition("1 < 2");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ((*t)->kind, Formula::Kind::kTrue);
}

}  // namespace
}  // namespace lisa::smt
