// Fig. 4: comparison with alternative approaches — traditional regression
// testing vs LISA's low-level semantics vs refinement-style verification.
//
// Workload: the 15 state-predicate corpus cases right after their original
// fix landed. Each post-fix codebase still contains the path that caused the
// historical second incident; the question is which approach notices.
//
//   * TESTING      — run the full (patched) test suite, including the newly
//                    added regression test. Detection = any test failure.
//                    Spec effort = regression-test statements.
//   * LISA         — infer + translate + assert the low-level semantics with
//                    pruned execution trees (static + concolic). Detection =
//                    any violated path. Spec effort = 0 manual lines (mined).
//   * VERIFICATION — a refinement-proof stand-in: exhaustive, unpruned path
//                    exploration against a manually written whole-module
//                    spec. Detection quality equals LISA's, but effort is the
//                    full program size and exploration is unpruned.
//
// The paper's Fig. 4 claim to reproduce: testing is cheap but misses the
// class (sparse coverage); verification catches it at heavyweight spec/proof
// cost; low-level semantics sit in between — verification-grade detection on
// this bug class at near-testing cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/interp.hpp"
#include "minilang/sema.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace lisa;

struct ApproachResult {
  int detected = 0;
  int total = 0;
  double time_ms = 0.0;
  std::int64_t paths = 0;
  std::int64_t spec_lines = 0;
};

int count_statements(const minilang::Program& program, const std::string& only_fn = "") {
  int count = 0;
  program.for_each_stmt([&](const minilang::FuncDecl& fn, const minilang::Stmt&) {
    if (only_fn.empty() || fn.name == only_fn) ++count;
  });
  return count;
}

ApproachResult run_testing() {
  ApproachResult result;
  const support::Stopwatch timer;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    ++result.total;
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    minilang::Interp interp(program);
    const auto [passed, failed] = interp.run_all_tests();
    (void)passed;
    if (failed > 0) ++result.detected;  // a failing test would flag the latent path
    for (const std::string& test : ticket.regression_tests)
      result.spec_lines += count_statements(program, test);
  }
  result.time_ms = timer.elapsed_ms();
  return result;
}

ApproachResult run_lisa() {
  ApproachResult result;
  const support::Stopwatch timer;
  const core::Pipeline pipeline;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    ++result.total;
    const core::PipelineResult run = pipeline.run(ticket, ticket.patched_source);
    if (run.total_violations() > 0) ++result.detected;
    for (const core::ContractCheckReport& report : run.reports)
      result.paths += static_cast<std::int64_t>(report.paths.size());
    // Contracts are mined automatically: no manual spec lines.
  }
  result.time_ms = timer.elapsed_ms();
  return result;
}

ApproachResult run_verification() {
  ApproachResult result;
  const support::Stopwatch timer;
  const core::Checker checker;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    ++result.total;
    // The refinement stand-in: the human writes the full spec (modeled as a
    // contract equal to the ground-truth invariant, with effort proportional
    // to the whole module), and the checker explores every path, unpruned.
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    result.spec_lines += count_statements(program);  // whole-module model

    inference::SemanticsProposal proposal;
    proposal.case_id = ticket.case_id + "-manual";
    proposal.low_level.push_back({"manual spec", ticket.expected_target,
                                  ticket.expected_condition});
    core::TranslationResult translation = core::translate(proposal, ticket.system);
    core::CheckOptions options;
    options.prune_irrelevant = false;  // exhaustive exploration
    options.run_concolic = true;
    // A proof obligation covers every behaviour: replay the entire suite
    // rather than a selected subset.
    for (const minilang::FuncDecl* test : program.functions_with("test"))
      options.forced_tests.push_back(test->name);
    const core::ContractCheckReport report =
        checker.check(program, translation.contracts[0], options);
    if (!report.passed()) ++result.detected;
    result.paths += static_cast<std::int64_t>(report.paths.size());
  }
  result.time_ms = timer.elapsed_ms();
  return result;
}

void print_comparison() {
  std::printf("=== Fig. 4: testing vs low-level semantics (LISA) vs verification ===\n");
  std::printf("workload: 15 post-fix codebases, each still containing the path that\n");
  std::printf("caused the historical second incident\n\n");
  const ApproachResult testing = run_testing();
  const ApproachResult lisa_result = run_lisa();
  const ApproachResult verification = run_verification();
  std::printf("%-24s %12s %12s %10s %16s\n", "approach", "detected", "time (ms)",
              "paths", "manual spec stmts");
  const auto row = [](const char* name, const ApproachResult& r) {
    std::printf("%-24s %6d/%-5d %12.1f %10lld %16lld\n", name, r.detected, r.total,
                r.time_ms, static_cast<long long>(r.paths),
                static_cast<long long>(r.spec_lines));
  };
  row("regression testing", testing);
  row("LISA (low-level sem.)", lisa_result);
  row("refinement verification", verification);
  std::printf("\nshape check: testing detects 0/15 (the suites pass while the latent path\n"
              "ships); LISA and the verification stand-in both detect 15/15; LISA needs\n"
              "no manual spec and explores the pruned tree, verification pays the\n"
              "whole-module spec plus exhaustive exploration.\n\n");
}

void BM_Testing(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_testing().detected);
}
void BM_Lisa(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_lisa().detected);
}
void BM_Verification(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_verification().detected);
}
BENCHMARK(BM_Testing)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lisa)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Verification)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
