// Tests for Markdown report rendering.
#include <gtest/gtest.h>

#include "lisa/report.hpp"
#include "minilang/sema.hpp"

namespace lisa::core {
namespace {

PipelineResult zk_result() {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  return Pipeline().run(*ticket, ticket->patched_source);
}

TEST(Report, PipelineMarkdownContainsContractAndVerdicts) {
  const PipelineResult result = zk_result();
  const std::string markdown = render_markdown(result);
  EXPECT_NE(markdown.find("## LISA pipeline report"), std::string::npos);
  EXPECT_NE(markdown.find("create_ephemeral_node("), std::string::npos);
  EXPECT_NE(markdown.find("❌ violated"), std::string::npos);
  EXPECT_NE(markdown.find("✅ verified"), std::string::npos);
  EXPECT_NE(markdown.find("batch_create"), std::string::npos);
  EXPECT_NE(markdown.find("**FAIL**"), std::string::npos);
  EXPECT_NE(markdown.find("Timings:"), std::string::npos);
}

TEST(Report, StageTimingsAreConsistent) {
  const PipelineResult result = zk_result();
  const StageTimings& timings = result.timings;
  // total is the derived sum of the three stage spans...
  EXPECT_NEAR(timings.total_ms,
              timings.infer_ms + timings.translate_ms + timings.check_ms, 0.05);
  // ...and screening/summaries are shares of the check stage, not extra
  // time on top of it (the double-counting this invariant guards against).
  EXPECT_LE(timings.screen_ms + timings.summary_ms, timings.check_ms + 0.05);
  EXPECT_TRUE(timings.consistent());
  EXPECT_GT(timings.total_ms, 0.0);
}

TEST(Report, ContractMarkdownShowsCounterexample) {
  const PipelineResult result = zk_result();
  ASSERT_FALSE(result.reports.empty());
  const std::string markdown =
      render_markdown(result.reports[0], &result.contracts[0]);
  EXPECT_NE(markdown.find("reachable with"), std::string::npos);
  EXPECT_NE(markdown.find("is_closing"), std::string::npos);
}

TEST(Report, GateDecisionMarkdownBlockedAndAdmitted) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  TranslationResult translation = translate(proposal, ticket->system);
  ContractStore store;
  store.add_all(std::move(translation.contracts));
  CheckOptions options;
  options.run_concolic = false;
  const CiGate gate(options);

  const GateDecision blocked = gate.evaluate(ticket->patched_source, store);
  const std::string blocked_md = render_markdown(blocked);
  EXPECT_NE(blocked_md.find("⛔ Commit blocked"), std::string::npos);
  EXPECT_NE(blocked_md.find("semantics learned from past incidents"), std::string::npos);

  const GateDecision admitted = gate.evaluate("fn unrelated() { print(1); }", store);
  const std::string admitted_md = render_markdown(admitted);
  EXPECT_NE(admitted_md.find("✅ Commit admitted"), std::string::npos);
}

TEST(Report, PropertyMarkdownNamesStatus) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  TranslationResult translation = translate(proposal, ticket->system);
  const HighLevelProperty property =
      ephemeral_lifecycle_property(std::move(translation.contracts));
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  CheckOptions options;
  options.run_concolic = false;
  const PropertyReport report = Composer(options).evaluate(program, property);
  const std::string markdown = render_markdown(report);
  EXPECT_NE(markdown.find("ephemeral-lifecycle"), std::string::npos);
  EXPECT_NE(markdown.find("**BROKEN**"), std::string::npos);
}

TEST(Report, StructuralViolationsRendered) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-2201-sync-serialize");
  const PipelineResult result = Pipeline().run(*ticket, ticket->patched_source);
  const std::string markdown = render_markdown(result);
  EXPECT_NE(markdown.find("structural:"), std::string::npos);
  EXPECT_NE(markdown.find("serialize_acls"), std::string::npos);
}

}  // namespace
}  // namespace lisa::core
