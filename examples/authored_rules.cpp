// §5 extensions in action: a developer authors a rule through the structured
// template, composes it with a mined contract into a high-level property,
// and watches the property verdict flip as the codebase is fixed.
#include <cstdio>

#include "lisa/authoring.hpp"
#include "lisa/composition.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"

namespace {

const char* kOrdersV1 = R"ml(
struct Order { id: int; paid: bool; shipped: bool; }
struct Warehouse { dispatched: int; }

fn dispatch(w: Warehouse, o: Order) {
  o.shipped = true;
  w.dispatched = w.dispatched + 1;
}

@entry
fn ship_order(w: Warehouse, o: Order?) {
  if (o == null) { throw "NoSuchOrder"; }
  if (o.paid) {
    dispatch(w, o);
  }
}

@entry
fn ship_priority(w: Warehouse, o: Order?) {
  if (o == null) { throw "NoSuchOrder"; }
  dispatch(w, o);
}

@test
fn test_ship_paid_order() {
  let w = new Warehouse {};
  let o = new Order { id: 1, paid: true, shipped: false };
  ship_order(w, o);
  assert(o.shipped, "shipped");
}
)ml";

void print_feedback(const lisa::core::AuthoringFeedback& feedback) {
  std::printf("rule %s: %s\n", feedback.contract.id.c_str(),
              feedback.accepted ? "ACCEPTED" : "REJECTED");
  for (const std::string& error : feedback.errors) std::printf("  error:   %s\n", error.c_str());
  for (const std::string& warning : feedback.warnings)
    std::printf("  warning: %s\n", warning.c_str());
}

}  // namespace

int main() {
  using namespace lisa;

  std::printf("=== developer authors a semantic rule through the template ===\n\n");
  const minilang::Program program = minilang::parse_checked(kOrdersV1);

  // First attempt: the developer misnames the variable root; the assistant
  // explains instead of accepting a vacuous rule.
  core::DeveloperRule draft;
  draft.id = "no-unpaid-dispatch";
  draft.behavior = "An order must never be dispatched before it is paid.";
  draft.operation = "dispatch";
  draft.required_condition = "!(order == null) && order.paid";
  print_feedback(core::author_rule(program, draft));

  // Second attempt, as the target frames actually name it.
  draft.required_condition = "!(o == null) && o.paid";
  const core::AuthoringFeedback accepted = core::author_rule(program, draft);
  print_feedback(accepted);

  std::printf("\n=== composing into a high-level property ===\n\n");
  core::HighLevelProperty property;
  property.id = "order-integrity";
  property.statement = "only resolved, paid orders are ever dispatched";
  property.constituents = {accepted.contract};

  core::CheckOptions options;
  options.run_concolic = false;
  const core::Composer composer(options);
  const core::PropertyReport broken = composer.evaluate(program, property);
  std::printf("property '%s' on v1: %s\n", property.id.c_str(),
              core::property_status_name(broken.status));
  for (const std::string& finding : broken.findings)
    std::printf("  %s\n", finding.c_str());

  // The fix: guard the priority path too.
  std::string v2 = kOrdersV1;
  const std::string anchor = "  if (o == null) { throw \"NoSuchOrder\"; }\n  dispatch(w, o);";
  const std::size_t pos = v2.find(anchor);
  if (pos != std::string::npos) {
    v2.replace(pos, anchor.size(),
               "  if (o == null) { throw \"NoSuchOrder\"; }\n  if (o.paid) {\n"
               "    dispatch(w, o);\n  }");
  }
  const minilang::Program fixed = minilang::parse_checked(v2);
  const core::PropertyReport healed = composer.evaluate(fixed, property);
  std::printf("\nproperty '%s' on v2: %s\n", property.id.c_str(),
              core::property_status_name(healed.status));
  std::printf("\nThe high-level claim is now backed, path by path, by validated\n"
              "low-level semantics — the composition the paper's §5 envisions.\n");
  return 0;
}
