// Cassandra incident cases.
#include "corpus/ticket.hpp"

namespace lisa::corpus {
namespace {

// ---------------------------------------------------------------------------
// Case 1: hints replayed to a decommissioned node.
// ---------------------------------------------------------------------------

constexpr const char* kCassHintCommon = R"ml(
struct RingNode { host: string; decommissioned: bool; hints_received: int; }
struct HintStore { nodes: map<string, RingNode>; pending: map<string, string>; delivered: int; }

fn new_hint_store() -> HintStore {
  return new HintStore {};
}

fn add_ring_node(store: HintStore, host: string, decommissioned: bool) {
  put(store.nodes, host, new RingNode { host: host, decommissioned: decommissioned,
                                        hints_received: 0 });
}

fn queue_hint(store: HintStore, host: string, mutation: string) {
  put(store.pending, host, mutation);
}

fn deliver_hints(store: HintStore, target: RingNode) {
  target.hints_received = target.hints_received + 1;
  store.delivered = store.delivered + 1;
  del(store.pending, target.host);
}

// Full replay on coordinator restart: the second delivery path.
@entry
fn replay_all_hints(store: HintStore) {
  let hosts = keys(store.pending);
  let i = 0;
  while (i < len(hosts)) {
    let target = get(store.nodes, hosts[i]);
    if (target != null) {
      deliver_hints(store, target);
    }
    i = i + 1;
  }
}
)ml";

constexpr const char* kCassHintTests = R"ml(
@test
fn test_replay_hint_to_live_node() {
  let store = new_hint_store();
  add_ring_node(store, "10.0.0.1", false);
  queue_hint(store, "10.0.0.1", "mut-1");
  replay_hints_for(store, "10.0.0.1");
  assert(store.delivered == 1, "hint delivered");
}

@test
fn test_replay_all_delivers_pending() {
  let store = new_hint_store();
  add_ring_node(store, "10.0.0.2", false);
  queue_hint(store, "10.0.0.2", "mut-2");
  replay_all_hints(store);
  assert(store.delivered == 1, "pending hint delivered");
}
)ml";

FailureTicket cass_hint_case() {
  FailureTicket ticket;
  ticket.case_id = "cass-hint-decommissioned";
  ticket.system = "cassandra";
  ticket.feature = "hinted handoff";
  ticket.title = "Hints replayed to a decommissioned node resurrect deleted data";
  ticket.description =
      "Hinted handoff kept replaying stored mutations to a node that had "
      "been decommissioned and later re-bootstrapped with the same address; "
      "the replay resurrected deleted rows past their tombstones. Developer "
      "discussion: hints must never be delivered to a decommissioned node — "
      "the ring state must be consulted before delivery. Fix adds the check "
      "on the per-endpoint replay path.";

  const std::string buggy_replay = R"ml(
@entry
fn replay_hints_for(store: HintStore, host: string) {
  let target = get(store.nodes, host);
  if (target == null) {
    return;
  }
  deliver_hints(store, target);
}
)ml";

  const std::string patched_replay = R"ml(
@entry
fn replay_hints_for(store: HintStore, host: string) {
  let target = get(store.nodes, host);
  if (target == null) {
    return;
  }
  if (target.decommissioned) {
    throw "NodeDecommissionedException";
  }
  deliver_hints(store, target);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_casshint_no_replay_to_decommissioned() {
  let store = new_hint_store();
  add_ring_node(store, "10.0.0.3", true);
  queue_hint(store, "10.0.0.3", "mut-3");
  let rejected = false;
  try {
    replay_hints_for(store, "10.0.0.3");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "replay to decommissioned node rejected");
  assert(store.delivered == 0, "nothing delivered");
}
)ml";

  ticket.buggy_source = std::string(kCassHintCommon) + buggy_replay + kCassHintTests;
  ticket.patched_source =
      std::string(kCassHintCommon) + patched_replay + kCassHintTests + regression_test;
  ticket.regression_tests = {"test_casshint_no_replay_to_decommissioned"};
  ticket.original = {"CASS-H1", "2015-05-07",
                     "Deleted rows resurrected by hint replay to decommissioned node"};
  ticket.regressions = {{"CASS-H2", "2016-03-29",
                         "Coordinator-restart replay path delivers hints to decommissioned "
                         "nodes; per-endpoint fix missed it"},
                        {"CASS-H3", "2017-05-02",
                         "Hints delivered to a decommissioned node that re-bootstrapped "
                         "with the same address; ring check still missing on one path"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "deliver_hints(";
  ticket.expected_condition = "!(target == null) && !(target.decommissioned)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 2: read repair writes back a purgeable tombstoned row.
// ---------------------------------------------------------------------------

constexpr const char* kCassRepairCommon = R"ml(
struct Row { key: string; tombstoned: bool; purgeable: bool; repairs: int; }
struct Table { rows: map<string, Row>; repaired: int; }

fn new_table() -> Table {
  return new Table {};
}

fn add_row(t: Table, key: string, tombstoned: bool, purgeable: bool) {
  put(t.rows, key, new Row { key: key, tombstoned: tombstoned, purgeable: purgeable,
                             repairs: 0 });
}

fn send_repair(t: Table, row: Row) {
  row.repairs = row.repairs + 1;
  t.repaired = t.repaired + 1;
}

// Background anti-entropy repair: the second repair path.
@entry
fn background_repair(t: Table) {
  let ks = keys(t.rows);
  let i = 0;
  while (i < len(ks)) {
    let row = get(t.rows, ks[i]);
    if (row != null) {
      send_repair(t, row);
    }
    i = i + 1;
  }
}
)ml";

constexpr const char* kCassRepairTests = R"ml(
@test
fn test_repair_live_row() {
  let t = new_table();
  add_row(t, "k1", false, false);
  read_repair(t, "k1");
  assert(t.repaired == 1, "row repaired");
}

@test
fn test_background_repair_covers_rows() {
  let t = new_table();
  add_row(t, "k2", false, false);
  background_repair(t);
  assert(t.repaired == 1, "background repaired");
}
)ml";

FailureTicket cass_repair_case() {
  FailureTicket ticket;
  ticket.case_id = "cass-repair-purgeable-tombstone";
  ticket.system = "cassandra";
  ticket.feature = "read repair / tombstone GC";
  ticket.title = "Read repair propagates a tombstone past gc_grace and resurrects data";
  ticket.description =
      "Read repair wrote back rows whose tombstones had already passed "
      "gc_grace_seconds on some replicas; the replicas that had purged the "
      "tombstone accepted the stale live data, resurrecting deleted rows. "
      "Developer discussion: a row whose tombstone is already purgeable must "
      "never be repaired back — check the purgeable flag before sending the "
      "repair mutation. Fix guards the foreground read-repair path.";

  const std::string buggy_repair = R"ml(
@entry
fn read_repair(t: Table, key: string) {
  let row = get(t.rows, key);
  if (row == null) {
    return;
  }
  send_repair(t, row);
}
)ml";

  const std::string patched_repair = R"ml(
@entry
fn read_repair(t: Table, key: string) {
  let row = get(t.rows, key);
  if (row == null) {
    return;
  }
  if (row.purgeable == false) {
    send_repair(t, row);
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_cassrepair_skips_purgeable_row() {
  let t = new_table();
  add_row(t, "k3", true, true);
  read_repair(t, "k3");
  assert(t.repaired == 0, "purgeable row not repaired");
}
)ml";

  ticket.buggy_source = std::string(kCassRepairCommon) + buggy_repair + kCassRepairTests;
  ticket.patched_source =
      std::string(kCassRepairCommon) + patched_repair + kCassRepairTests + regression_test;
  ticket.regression_tests = {"test_cassrepair_skips_purgeable_row"};
  ticket.original = {"CASS-R1", "2017-09-13",
                     "Deleted rows resurrected by read repair past gc_grace"};
  ticket.regressions = {{"CASS-R2", "2018-07-02",
                         "Background anti-entropy repair writes back purgeable rows; "
                         "foreground fix missed it"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "send_repair(";
  ticket.expected_condition = "!(row == null) && row.purgeable == false";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 3: counter mutation applied on a bootstrapping node.
// ---------------------------------------------------------------------------

constexpr const char* kCassCounterCommon = R"ml(
struct CounterNode { host: string; bootstrapping: bool; applied: int; }
struct CounterService { nodes: map<string, CounterNode>; total_applied: int; }

fn new_counter_service() -> CounterService {
  return new CounterService {};
}

fn add_counter_node(svc: CounterService, host: string, bootstrapping: bool) {
  put(svc.nodes, host, new CounterNode { host: host, bootstrapping: bootstrapping,
                                         applied: 0 });
}

fn apply_counter_mutation(svc: CounterService, node: CounterNode, delta: int) {
  node.applied = node.applied + 1;
  svc.total_applied = svc.total_applied + 1;
}

// Batched counter writes: the second apply path.
@entry
fn apply_counter_batch(svc: CounterService, host: string, deltas: list<int>) {
  let node = get(svc.nodes, host);
  if (node == null) {
    throw "UnavailableException";
  }
  let i = 0;
  while (i < len(deltas)) {
    apply_counter_mutation(svc, node, deltas[i]);
    i = i + 1;
  }
}
)ml";

constexpr const char* kCassCounterTests = R"ml(
@test
fn test_counter_write_on_normal_node() {
  let svc = new_counter_service();
  add_counter_node(svc, "10.0.1.1", false);
  write_counter(svc, "10.0.1.1", 5);
  assert(svc.total_applied == 1, "applied");
}

@test
fn test_counter_batch_applies_all() {
  let svc = new_counter_service();
  add_counter_node(svc, "10.0.1.2", false);
  let deltas = list_new();
  push(deltas, 1);
  push(deltas, 2);
  apply_counter_batch(svc, "10.0.1.2", deltas);
  assert(svc.total_applied == 2, "batch applied");
}
)ml";

FailureTicket cass_counter_case() {
  FailureTicket ticket;
  ticket.case_id = "cass-counter-bootstrap";
  ticket.system = "cassandra";
  ticket.feature = "counters / bootstrap";
  ticket.title = "Counter mutation applied on a bootstrapping node double-counts";
  ticket.description =
      "Counter writes landed on a node that was still bootstrapping; once "
      "the node finished streaming its ranges, the streamed counter state "
      "was merged on top of the already-applied mutations and counters "
      "double-counted. Developer discussion: a counter mutation must never "
      "be applied while the node is bootstrapping — check the bootstrapping "
      "flag before apply. Fix rejects single counter writes during "
      "bootstrap.";

  const std::string buggy_write = R"ml(
@entry
fn write_counter(svc: CounterService, host: string, delta: int) {
  let node = get(svc.nodes, host);
  if (node == null) {
    throw "UnavailableException";
  }
  apply_counter_mutation(svc, node, delta);
}
)ml";

  const std::string patched_write = R"ml(
@entry
fn write_counter(svc: CounterService, host: string, delta: int) {
  let node = get(svc.nodes, host);
  if (node == null) {
    throw "UnavailableException";
  }
  if (node.bootstrapping) {
    throw "UnavailableException";
  }
  apply_counter_mutation(svc, node, delta);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_casscounter_rejected_during_bootstrap() {
  let svc = new_counter_service();
  add_counter_node(svc, "10.0.1.3", true);
  let rejected = false;
  try {
    write_counter(svc, "10.0.1.3", 7);
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "counter write rejected during bootstrap");
  assert(svc.total_applied == 0, "nothing applied");
}
)ml";

  ticket.buggy_source = std::string(kCassCounterCommon) + buggy_write + kCassCounterTests;
  ticket.patched_source =
      std::string(kCassCounterCommon) + patched_write + kCassCounterTests + regression_test;
  ticket.regression_tests = {"test_casscounter_rejected_during_bootstrap"};
  ticket.original = {"CASS-C1", "2014-08-11",
                     "Counters double-counted after bootstrap merge"};
  ticket.regressions = {{"CASS-C2", "2015-06-22",
                         "Batched counter path applies mutations on bootstrapping nodes; "
                         "single-write fix missed it"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "apply_counter_mutation(";
  ticket.expected_condition = "!(node == null) && !(node.bootstrapping)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 4: hint delivery zeroes the pending counter outside the store monitor.
// ---------------------------------------------------------------------------

constexpr const char* kCassHintRaceCommon = R"ml(
struct HintStore { pending: int; delivered: int; }

fn new_hint_store() -> HintStore {
  return new HintStore { pending: 0, delivered: 0 };
}

// Writers record a hint for a dead replica under the store monitor.
@entry
fn accept_hint(store: HintStore) {
  sync (store) {
    store.pending = store.pending + 1;
  }
}
)ml";

constexpr const char* kCassHintRaceTests = R"ml(
@test
fn test_accept_counts_pending_hint() {
  let store = new_hint_store();
  accept_hint(store);
  accept_hint(store);
  assert(store.pending == 2, "hints pending");
}

@test
fn test_delivery_flushes_pending_hints() {
  let store = new_hint_store();
  accept_hint(store);
  deliver_hints(store);
  assert(store.pending == 0, "pending drained");
  assert(store.delivered == 1, "delivery counted");
}
)ml";

FailureTicket cass_hint_race_case() {
  FailureTicket ticket;
  ticket.case_id = "cass-hints-race";
  ticket.system = "cassandra";
  ticket.feature = "hinted handoff";
  ticket.title = "Hints silently dropped: delivery zeroes the pending counter unguarded";
  ticket.description =
      "After a replica came back, the hint delivery thread zeroed the "
      "pending counter without holding the store monitor while writer "
      "threads were still incrementing it — a data race that lost the "
      "concurrent increments, so those hints were never replayed and reads "
      "went stale. Developer discussion: every access of the pending "
      "counter must run while the store is held. Fix wraps the delivery "
      "path's counter update in the store critical section.";

  const std::string buggy_deliver = R"ml(
@entry
fn deliver_hints(store: HintStore) {
  store.delivered = store.delivered + store.pending;
  store.pending = 0;
}
)ml";

  const std::string patched_deliver = R"ml(
@entry
fn deliver_hints(store: HintStore) {
  sync (store) {
    let n = store.pending;
    store.pending = 0;
    store.delivered = store.delivered + n;
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_casshints_delivery_preserves_new_hints() {
  let store = new_hint_store();
  accept_hint(store);
  deliver_hints(store);
  accept_hint(store);
  assert(store.pending == 1, "hint accepted after delivery is kept");
  assert(store.delivered == 1, "earlier hint delivered");
}
)ml";

  ticket.buggy_source = std::string(kCassHintRaceCommon) + buggy_deliver + kCassHintRaceTests;
  ticket.patched_source =
      std::string(kCassHintRaceCommon) + patched_deliver + kCassHintRaceTests + regression_test;
  ticket.regression_tests = {"test_casshints_delivery_preserves_new_hints"};
  ticket.original = {"CASS-H3", "2016-02-09",
                     "Pending-hint counter raced by delivery thread; hints never replayed"};
  ticket.regressions = {{"CASS-H4", "2017-10-19",
                         "Batch delivery path resets the counter outside the store "
                         "monitor; single-hint fix missed it"}};
  ticket.kind = SemanticsKind::kInterleavingSensitive;
  ticket.expected_target = "pending";
  ticket.expected_condition = "holds(store)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 5: flush waiter hangs when the signal lands in the check-to-wait window.
// ---------------------------------------------------------------------------

constexpr const char* kCassFlushNotifyCommon = R"ml(
struct FlushQueue { ready: int; observed: int; }

fn new_flush_queue() -> FlushQueue {
  return new FlushQueue { ready: 0, observed: 0 };
}
)ml";

constexpr const char* kCassFlushNotifyTests = R"ml(
@test
fn test_signal_marks_flush_ready() {
  let q = new_flush_queue();
  signal_flush(q);
  assert(q.ready == 1, "flush marked ready");
}

@test
fn test_waiter_observes_completed_flush() {
  let q = new_flush_queue();
  signal_flush(q);
  await_flush(q);
  assert(q.observed == 1, "waiter observed the flush");
}

@test
fn test_concurrent_signal_wakes_waiter() {
  let q = new_flush_queue();
  spawn signal_flush(q);
  spawn await_flush(q);
  join_all();
  assert(q.observed == 1, "waiter eventually observes the flush");
}
)ml";

FailureTicket cass_flush_notify_case() {
  FailureTicket ticket;
  ticket.case_id = "cass-flush-notify";
  ticket.system = "cassandra";
  ticket.feature = "memtable flush";
  ticket.title = "Flush waiter hangs forever: wakeup signal lost in the check-to-wait window";
  ticket.description =
      "A thread waiting for a memtable flush checked the ready flag and "
      "then blocked, but the flush writer could set the flag and fire its "
      "notify between the check and the wait — the wakeup signal was lost "
      "and the waiter hung forever, wedging the write path until restart. "
      "Developer discussion: the waiter must hold the queue monitor across "
      "the check-and-wait and re-check in a loop, and the writer must "
      "signal under the same monitor so the notify cannot race the check. "
      "Fix moves both sides into the queue critical section.";

  const std::string buggy_flush = R"ml(
@entry
fn await_flush(q: FlushQueue) {
  if (q.ready == 0) {
    wait(q);
  }
  q.observed = q.observed + 1;
}

@entry
fn signal_flush(q: FlushQueue) {
  q.ready = 1;
  notify(q);
}
)ml";

  const std::string patched_flush = R"ml(
@entry
fn await_flush(q: FlushQueue) {
  sync (q) {
    while (q.ready == 0) {
      wait(q);
    }
  }
  q.observed = q.observed + 1;
}

@entry
fn signal_flush(q: FlushQueue) {
  sync (q) {
    q.ready = 1;
    notify_all(q);
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_cassflush_waiter_skips_wait_when_ready() {
  let q = new_flush_queue();
  signal_flush(q);
  await_flush(q);
  await_flush(q);
  assert(q.observed == 2, "ready flag short-circuits every later waiter");
}
)ml";

  ticket.buggy_source = std::string(kCassFlushNotifyCommon) + buggy_flush + kCassFlushNotifyTests;
  ticket.patched_source =
      std::string(kCassFlushNotifyCommon) + patched_flush + kCassFlushNotifyTests + regression_test;
  ticket.regression_tests = {"test_cassflush_waiter_skips_wait_when_ready"};
  ticket.original = {"CASS-F1", "2014-07-23",
                     "Write path wedged: flush waiter misses the wakeup and blocks forever"};
  ticket.regressions = {{"CASS-F2", "2016-11-15",
                         "Index rebuild waiter repeats the unguarded check-then-wait; "
                         "flush-path fix missed it"}};
  ticket.kind = SemanticsKind::kInterleavingSensitive;
  ticket.expected_target = "wait(";
  ticket.expected_condition = "eventually(ready)";
  return ticket;
}

}  // namespace

std::vector<FailureTicket> cassandra_cases() {
  return {cass_hint_case(), cass_repair_case(), cass_counter_case(), cass_hint_race_case(),
          cass_flush_notify_case()};
}

}  // namespace lisa::corpus
