// Per-function dependence graphs: reaching definitions, def-use chains, and
// control dependence via a post-dominator tree.
//
// This is the dependence layer the backward contract slicer (slice.hpp)
// walks. It is a *may* analysis throughout — a definition reaches every use
// it could possibly feed, never fewer:
//
//   * Definitions are parameter bindings at entry, `let` initializations,
//     assignments, and call-site MOD effects imported from the
//     interprocedural summaries (summaries.hpp). Without summaries every
//     call is a heap havoc and the graph is marked `degraded` — the PR 7
//     convention: degrade loudly, never truncate silently.
//   * Kills are strong only for dot-free local paths (MiniLang has no
//     address-of and callees cannot rebind caller locals, so a local's name
//     is its identity). Field writes are weak updates: the old definition
//     keeps reaching because another path may alias the same object.
//   * Use edges connect a node to every reaching definition that may write
//     a path the node reads, with the same conservative field-name aliasing
//     rule as `write_kills`.
//
// The post-dominator tree is computed by straight iterative set
// intersection over the reversed CFG (function CFGs are tens of nodes, not
// thousands) and yields Ferrante–Ottenstein–Warren control dependence: n is
// control-dependent on branch b iff some successor of b is post-dominated
// by n while b itself is not strictly post-dominated by n. The tree doubles
// as the join-point oracle ROADMAP item 4 asks for.
//
// Dead-store and unused-definition lint findings fall out of the def-use
// chains for free (report_dead_defs): a local definition no use edge ever
// reaches is either an unused `let` or a dead store.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "minilang/ast.hpp"
#include "staticcheck/cfg.hpp"
#include "staticcheck/diagnostics.hpp"

namespace lisa::staticcheck {

class SummaryMap;  // summaries.hpp

/// True if `path` has a field segment equal to `field` anywhere past the
/// root variable ("s.closed" mentions "closed"). Exposed for the slicer's
/// footprint matching; the same rule `write_kills` applies internally.
[[nodiscard]] bool path_mentions_field(const std::string& path, const std::string& field);

// ---------------------------------------------------------------------------
// Post-dominator tree + control dependence
// ---------------------------------------------------------------------------

class PostDomTree {
 public:
  [[nodiscard]] static PostDomTree build(const Cfg& cfg);

  /// Immediate post-dominator of `node`, or -1 (the exit node, and nodes
  /// with no strict post-dominator).
  [[nodiscard]] int ipdom(int node) const { return ipdom_[static_cast<std::size_t>(node)]; }

  /// True iff `b` post-dominates `a` (reflexive: postdominates(a, a)).
  [[nodiscard]] bool postdominates(int b, int a) const {
    return pdom_[static_cast<std::size_t>(a)].count(b) > 0;
  }

  /// Branch nodes `node` is control-dependent on (Ferrante–Ottenstein–
  /// Warren), sorted ascending. A loop head can be control-dependent on
  /// itself.
  [[nodiscard]] const std::vector<int>& control_deps(int node) const {
    return cdeps_[static_cast<std::size_t>(node)];
  }

 private:
  std::vector<std::set<int>> pdom_;  // full post-dominator set per node
  std::vector<int> ipdom_;
  std::vector<std::vector<int>> cdeps_;
};

// ---------------------------------------------------------------------------
// Definitions and reaching-definition chains
// ---------------------------------------------------------------------------

struct Definition {
  enum class Kind {
    kParam,    // parameter binding at function entry
    kLet,      // `let x = ...`
    kAssign,   // `lvalue = ...`
    kCallMod,  // call-site MOD effect imported from the callee summary
  };

  Kind kind = Kind::kAssign;
  int node = -1;                         // CFG node creating the definition
  const minilang::Stmt* stmt = nullptr;  // nullptr for kParam
  /// Access path written. Three wildcard spellings for call effects:
  ///   "*"     — havoc: may write any heap (dotted) path;
  ///   "*.f"   — may write field `f` of any object (summary MOD field);
  ///   "p.*"   — may write through argument path `p` (summary MOD param).
  std::string path;
  std::string callee;  // kCallMod: the called function
  minilang::SourceLoc loc;

  /// May this definition write (part of) `use_path`?
  [[nodiscard]] bool may_write(const std::string& use_path) const;
};

/// Dependence graph of one function: CFG + post-dominators + reaching
/// definitions + def-use edges. Borrows the Program (statement pointers);
/// the Program must outlive it.
struct FuncDepGraph {
  /// `summaries == nullptr` degrades every call to a heap havoc and sets
  /// `degraded` — sound, but the def-use chains get much coarser.
  [[nodiscard]] static FuncDepGraph build(const minilang::FuncDecl& fn,
                                          const minilang::Program& program,
                                          const SummaryMap* summaries);

  Cfg cfg;
  PostDomTree pdoms;
  std::vector<Definition> defs;
  /// Definition indices reaching each node's entry, indexed by node id.
  std::vector<std::set<std::size_t>> reach_in;
  /// Def-use edges: for each node, the reaching definitions it may read.
  std::vector<std::set<std::size_t>> use_defs;
  /// Access paths each node reads (guards, rhs, call args, lvalue bases).
  std::vector<std::set<std::string>> reads;
  /// True when a call degraded to havoc (no summaries / unknown callee):
  /// chains are still sound but must not prove absence of a dependence.
  bool degraded = false;

  /// Definition indices with at least one use edge.
  [[nodiscard]] std::set<std::size_t> used_defs() const;
};

/// Dead stores and unused definitions — free byproducts of the def-use
/// chains. Reported only for dot-free local paths (no aliasing ambiguity,
/// and a callee can only read a caller local that is passed to it — which
/// registers as a use — so even a degraded graph stays sound here) and
/// never for parameters. Appends to `out` (lint_program sorts/dedupes
/// globally).
void report_dead_defs(const FuncDepGraph& graph, std::vector<Diagnostic>& out);

}  // namespace lisa::staticcheck
