// Token definitions for MiniLang.
//
// MiniLang is the analyzable substrate this reproduction uses in place of the
// paper's Java targets: a small statically-typed imperative language with
// structs, nullable references, exceptions and `sync` (synchronized) blocks —
// exactly the features the studied incident code exercises.
#pragma once

#include <cstdint>
#include <string>

namespace lisa::minilang {

enum class TokenKind {
  kEof,
  kIdent,
  kIntLit,
  kStrLit,
  // Keywords.
  kStruct,
  kFn,
  kLet,
  kIf,
  kElse,
  kWhile,
  kReturn,
  kThrow,
  kTry,
  kCatch,
  kSync,
  kSpawn,
  kNew,
  kNull,
  kTrue,
  kFalse,
  kBreak,
  kContinue,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kColon,
  kDot,
  kArrow,     // ->
  kAssign,    // =
  kEq,        // ==
  kNe,        // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAndAnd,
  kOrOr,
  kBang,
  kQuestion,  // nullable type suffix
  kAt,        // annotation marker
};

/// Returns a human-readable name for diagnostics ("'=='", "identifier", ...).
[[nodiscard]] const char* token_kind_name(TokenKind kind);

struct SourceLoc {
  int line = 0;
  int column = 0;
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;          // identifier name or string literal contents
  std::int64_t int_value = 0;
  SourceLoc loc;
};

}  // namespace lisa::minilang
