// DPLL(T) solver for the LISA contract fragment — the reproduction's Z3.
//
// Architecture (lazy SMT):
//   1. lower: every comparison atom is rewritten into *difference
//      constraints* `a - b <= k` over integer variables (a distinguished
//      ZERO variable encodes constants), so equalities/disequalities become
//      conjunctions/disjunctions of primitive bounds.
//   2. Tseitin-encode the lowered formula into CNF over primitive literals.
//   3. DPLL enumerates boolean models; each model's difference constraints
//      are checked with Bellman–Ford negative-cycle detection; inconsistent
//      models are blocked with a learned clause and search resumes.
// The fragment (boolean structure over v ⋈ c, v ⋈ w, boolean vars) is exactly
// what the paper's contracts use, and this procedure decides it.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "smt/formula.hpp"

namespace lisa::smt {

enum class Status { kSat, kUnsat };

/// A satisfying assignment (only meaningful when status == kSat). Variables
/// not mentioned in the model are unconstrained.
struct Model {
  std::map<std::string, bool> bools;
  std::map<std::string, std::int64_t> ints;

  [[nodiscard]] std::string to_string() const;
};

struct SolveResult {
  Status status = Status::kUnsat;
  Model model;

  [[nodiscard]] bool sat() const { return status == Status::kSat; }
};

/// Cumulative statistics for the solver-microbenchmark.
struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t boolean_conflicts = 0;
  std::int64_t theory_conflicts = 0;
  std::int64_t clauses = 0;
  std::int64_t atoms = 0;
};

class Solver {
 public:
  /// Decides `formula`. Deterministic: same formula, same result and model.
  [[nodiscard]] SolveResult solve(const FormulaPtr& formula);

  /// True iff `premise → conclusion` holds (i.e. premise ∧ ¬conclusion UNSAT).
  [[nodiscard]] bool implies(const FormulaPtr& premise, const FormulaPtr& conclusion);

  /// True iff the two formulas have the same models.
  [[nodiscard]] bool equivalent(const FormulaPtr& a, const FormulaPtr& b);

  /// Statistics accumulated across all queries on this instance.
  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  SolverStats stats_;
};

}  // namespace lisa::smt
