// Shared builtin dispatcher used by both execution engines (the tree-walking
// interpreter and the bytecode VM), so builtin semantics cannot drift.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "minilang/interp.hpp"
#include "minilang/value.hpp"

namespace lisa::minilang {

/// Mutable engine state a builtin may touch.
struct BuiltinContext {
  std::string* output = nullptr;            // print()/log() sink
  std::int64_t* now_ms = nullptr;           // virtual clock
  std::int64_t blocking_latency_ms = 5;
  ExecObserver* observer = nullptr;         // may be null
  int sync_depth = 0;                       // for on_blocking()
  /// Non-null only during scheduled runs. The coordination builtins
  /// (wait/notify/notify_all/join_all) delegate here; with no scheduler they
  /// are no-ops — consistent with the serial semantics, under which spawned
  /// roots already ran to completion at their spawn points.
  SchedulerHooks* sched = nullptr;
};

/// Executes builtin `name` on already-evaluated arguments. Returns nullopt
/// when `name` is not a builtin (caller reports unknown function). Throws
/// MiniThrow for language-level failures (assert, divide) and InterpError
/// for misuse (wrong arity/types).
std::optional<Value> dispatch_builtin(const std::string& name, std::vector<Value>& args,
                                      BuiltinContext& context);

}  // namespace lisa::minilang
