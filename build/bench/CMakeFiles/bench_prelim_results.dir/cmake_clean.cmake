file(REMOVE_RECURSE
  "CMakeFiles/bench_prelim_results.dir/bench_prelim_results.cpp.o"
  "CMakeFiles/bench_prelim_results.dir/bench_prelim_results.cpp.o.d"
  "bench_prelim_results"
  "bench_prelim_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prelim_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
