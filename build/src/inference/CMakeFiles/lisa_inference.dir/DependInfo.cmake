
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inference/embedding.cpp" "src/inference/CMakeFiles/lisa_inference.dir/embedding.cpp.o" "gcc" "src/inference/CMakeFiles/lisa_inference.dir/embedding.cpp.o.d"
  "/root/repo/src/inference/mock_llm.cpp" "src/inference/CMakeFiles/lisa_inference.dir/mock_llm.cpp.o" "gcc" "src/inference/CMakeFiles/lisa_inference.dir/mock_llm.cpp.o.d"
  "/root/repo/src/inference/proposal.cpp" "src/inference/CMakeFiles/lisa_inference.dir/proposal.cpp.o" "gcc" "src/inference/CMakeFiles/lisa_inference.dir/proposal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/lisa_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lisa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/lisa_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/minilang/CMakeFiles/lisa_minilang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
