file(REMOVE_RECURSE
  "CMakeFiles/bench_smt_solver.dir/bench_smt_solver.cpp.o"
  "CMakeFiles/bench_smt_solver.dir/bench_smt_solver.cpp.o.d"
  "bench_smt_solver"
  "bench_smt_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smt_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
