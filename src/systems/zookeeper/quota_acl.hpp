// Mini-ZooKeeper quota enforcement and ACL management.
//
// Native analogs of the ZK-Q1/Q2 (node quota bypassed on the sequential
// path) and ZK-A1/A2 (unvalidated ACL installed via the restore path) corpus
// cases, with per-path check toggles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lisa::systems::zk {

struct QuotaGuards {
  bool create_checks_quota = true;
  bool sequential_checks_quota = true;
};

struct QuotaStats {
  std::uint64_t creates_ok = 0;
  std::uint64_t creates_over_quota = 0;  // incident: memory exhaustion
  std::uint64_t creates_rejected = 0;
};

/// A quota-scoped subtree with two node-creating request paths.
class QuotaTree {
 public:
  QuotaTree(int quota_limit, QuotaGuards guards = {})
      : quota_limit_(quota_limit), guards_(guards) {}

  /// Plain create; returns false when rejected by the quota.
  bool create_node(const std::string& path);
  /// Sequential create (appends a counter); returns the created path or ""
  /// when rejected.
  std::string create_sequential(const std::string& prefix);

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] bool over_quota() const { return node_count() > quota_limit_; }
  [[nodiscard]] const QuotaStats& stats() const { return stats_; }

 private:
  bool add(const std::string& path, bool check);

  int quota_limit_;
  QuotaGuards guards_;
  QuotaStats stats_;
  std::map<std::string, bool> nodes_;
  int seq_counter_ = 0;
};

struct AclGuards {
  bool set_path_validates = true;
  bool restore_path_validates = true;
};

struct AclStats {
  std::uint64_t installed = 0;
  std::uint64_t installed_unvalidated = 0;  // incident: open access
  std::uint64_t rejected = 0;
};

struct AclEntry {
  std::string id;
  std::string scheme;  // empty scheme = malformed (world-readable fallback)
};

/// ACL store with the client set-ACL path and the snapshot-restore path.
class AclManager {
 public:
  explicit AclManager(AclGuards guards = {}) : guards_(guards) {}

  /// Client path; returns false when validation rejects the entry.
  bool set_acl(const AclEntry& entry);
  /// Snapshot restore: installs every entry from the snapshot file.
  std::size_t restore_from_snapshot(const std::vector<AclEntry>& entries);

  /// True if `id` is installed AND world-readable due to a malformed scheme.
  [[nodiscard]] bool is_exposed(const std::string& id) const;
  [[nodiscard]] std::size_t installed_count() const { return installed_.size(); }
  [[nodiscard]] const AclStats& stats() const { return stats_; }

 private:
  bool install(const AclEntry& entry, bool validate);

  AclGuards guards_;
  AclStats stats_;
  std::map<std::string, AclEntry> installed_;
};

}  // namespace lisa::systems::zk
