#include "smt/minilang_bridge.hpp"

#include "minilang/parser.hpp"
#include "minilang/printer.hpp"

namespace lisa::smt {

using minilang::BinOp;
using minilang::Expr;
using minilang::UnOp;

std::string access_path(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kVar:
      return expr.text;
    case Expr::Kind::kField: {
      const std::string base = access_path(*expr.args[0]);
      if (base.empty()) return "";
      return base + "." + expr.text;
    }
    default:
      return "";
  }
}

namespace {

std::optional<FormulaPtr> opaque(const Expr& expr, OpaquePolicy policy) {
  if (policy == OpaquePolicy::kReject) return std::nullopt;
  return Formula::make_atom(Atom::bool_var("opaque:" + minilang::expr_text(expr)));
}

std::optional<CmpOp> to_cmp(BinOp op) {
  switch (op) {
    case BinOp::kEq: return CmpOp::kEq;
    case BinOp::kNe: return CmpOp::kNe;
    case BinOp::kLt: return CmpOp::kLt;
    case BinOp::kLe: return CmpOp::kLe;
    case BinOp::kGt: return CmpOp::kGt;
    case BinOp::kGe: return CmpOp::kGe;
    default: return std::nullopt;
  }
}

std::optional<FormulaPtr> convert(const Expr& expr, OpaquePolicy policy) {
  switch (expr.kind) {
    case Expr::Kind::kBoolLit:
      return Formula::truth(expr.bool_value);
    case Expr::Kind::kVar:
    case Expr::Kind::kField: {
      const std::string path = access_path(expr);
      if (path.empty()) return opaque(expr, policy);
      return Formula::make_atom(Atom::bool_var(path));
    }
    case Expr::Kind::kUnary: {
      if (expr.un_op != UnOp::kNot) return opaque(expr, policy);
      auto inner = convert(*expr.args[0], policy);
      if (!inner.has_value()) return std::nullopt;
      return Formula::negate(std::move(*inner));
    }
    case Expr::Kind::kBinary: {
      const Expr& lhs = *expr.args[0];
      const Expr& rhs = *expr.args[1];
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        auto a = convert(lhs, policy);
        auto b = convert(rhs, policy);
        if (!a.has_value() || !b.has_value()) return std::nullopt;
        return expr.bin_op == BinOp::kAnd ? Formula::conj2(std::move(*a), std::move(*b))
                                          : Formula::disj2(std::move(*a), std::move(*b));
      }
      const std::optional<CmpOp> cmp = to_cmp(expr.bin_op);
      if (!cmp.has_value()) return opaque(expr, policy);

      // Null tests: `p == null`, `null != p`.
      const bool lhs_null = lhs.kind == Expr::Kind::kNullLit;
      const bool rhs_null = rhs.kind == Expr::Kind::kNullLit;
      if (lhs_null || rhs_null) {
        const Expr& target = lhs_null ? rhs : lhs;
        const std::string path = access_path(target);
        if (path.empty() || (*cmp != CmpOp::kEq && *cmp != CmpOp::kNe))
          return opaque(expr, policy);
        FormulaPtr is_null = Formula::make_atom(Atom::bool_var(path + "#null"));
        return *cmp == CmpOp::kEq ? is_null : Formula::negate(std::move(is_null));
      }

      // Boolean equality against literals: `p.is_closing == false`.
      const bool lhs_bool = lhs.kind == Expr::Kind::kBoolLit;
      const bool rhs_bool = rhs.kind == Expr::Kind::kBoolLit;
      if (lhs_bool || rhs_bool) {
        if (*cmp != CmpOp::kEq && *cmp != CmpOp::kNe) return opaque(expr, policy);
        const Expr& literal = lhs_bool ? lhs : rhs;
        const Expr& target = lhs_bool ? rhs : lhs;
        auto inner = convert(target, policy);
        if (!inner.has_value()) return std::nullopt;
        const bool want = literal.bool_value == (*cmp == CmpOp::kEq);
        return want ? *inner : Formula::negate(std::move(*inner));
      }

      // Integer comparisons: path ⋈ literal, literal ⋈ path, path ⋈ path.
      const bool lhs_int = lhs.kind == Expr::Kind::kIntLit;
      const bool rhs_int = rhs.kind == Expr::Kind::kIntLit;
      if (lhs_int && rhs_int) {
        // Constant-fold.
        const std::int64_t a = lhs.int_value;
        const std::int64_t b = rhs.int_value;
        bool value = false;
        switch (*cmp) {
          case CmpOp::kEq: value = a == b; break;
          case CmpOp::kNe: value = a != b; break;
          case CmpOp::kLt: value = a < b; break;
          case CmpOp::kLe: value = a <= b; break;
          case CmpOp::kGt: value = a > b; break;
          case CmpOp::kGe: value = a >= b; break;
        }
        return Formula::truth(value);
      }
      if (rhs_int) {
        const std::string path = access_path(lhs);
        if (path.empty()) return opaque(expr, policy);
        return Formula::make_atom(Atom::cmp_const(path, *cmp, rhs.int_value));
      }
      if (lhs_int) {
        const std::string path = access_path(rhs);
        if (path.empty()) return opaque(expr, policy);
        return Formula::make_atom(Atom::cmp_const(path, cmp_swap(*cmp), lhs.int_value));
      }
      {
        const std::string lhs_path = access_path(lhs);
        const std::string rhs_path = access_path(rhs);
        if (lhs_path.empty() || rhs_path.empty()) return opaque(expr, policy);
        if (*cmp == CmpOp::kEq || *cmp == CmpOp::kNe) {
          // Ambiguous: could be bool==bool or int==int. Model as integer
          // equality, which is also sound for booleans encoded as 0/1 — the
          // normalization step in src/inference resolves typed variables.
          return Formula::make_atom(Atom::cmp_var(lhs_path, *cmp, rhs_path));
        }
        return Formula::make_atom(Atom::cmp_var(lhs_path, *cmp, rhs_path));
      }
    }
    default:
      return opaque(expr, policy);
  }
}

}  // namespace

std::optional<FormulaPtr> to_formula(const Expr& expr, OpaquePolicy policy) {
  return convert(expr, policy);
}

std::optional<FormulaPtr> parse_condition(const std::string& condition_text) {
  try {
    const minilang::ExprPtr expr = minilang::parse_expression(condition_text);
    return convert(*expr, OpaquePolicy::kReject);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace lisa::smt
