# Empty dependencies file for minilang_interp_test.
# This may be replaced when dependencies are built.
