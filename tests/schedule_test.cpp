// Schedule exploration: serial replay blindness, witness determinism,
// budget exhaustion as typed inconclusives, chaos injection, and the gate
// policy that an undrained schedule space blocks a commit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "concolic/schedule.hpp"
#include "corpus/ticket.hpp"
#include "inference/mock_llm.hpp"
#include "lisa/checker.hpp"
#include "lisa/ci_gate.hpp"
#include "lisa/contract.hpp"
#include "minilang/interp.hpp"
#include "minilang/sema.hpp"
#include "obs/provenance.hpp"
#include "support/budget.hpp"
#include "support/faultpoint.hpp"

namespace {

using namespace lisa;

const corpus::FailureTicket& ticket_or_die(const std::string& case_id) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find(case_id);
  EXPECT_NE(ticket, nullptr) << case_id;
  return *ticket;
}

/// The three schedule-explored corpus cases (two atomicity, one liveness).
const std::vector<std::string>& explored_case_ids() {
  static const std::vector<std::string> ids{
      "zk-session-close-race", "hbase-counter-race", "cass-flush-notify"};
  return ids;
}

TEST(ScheduleWitness, CompactRoundTripPreservesEveryField) {
  concolic::ScheduleWitness witness;
  witness.test = "test_concurrent_increments_all_land";
  witness.seed = 0x5eedULL + 17;
  witness.decisions = {0, 0, 1, 1, 2, 2, 1};
  witness.outcome = "assert-failure";
  witness.detail = "assertion failed: no increment lost; schedule [0,0,1]";
  const concolic::ScheduleWitness loaded =
      concolic::ScheduleWitness::from_compact(witness.to_compact());
  EXPECT_EQ(loaded.test, witness.test);
  EXPECT_EQ(loaded.seed, witness.seed);
  EXPECT_EQ(loaded.decisions, witness.decisions);
  EXPECT_EQ(loaded.outcome, witness.outcome);
  // detail is the last field, so free-form text (even with ';') survives.
  EXPECT_EQ(loaded.detail, witness.detail);
  EXPECT_EQ(loaded.to_compact(), witness.to_compact());
}

TEST(ScheduleExplorer, CatchesAtomicityBugsSerialReplayMisses) {
  // The central claim: on every buggy schedule-explored case the embedded
  // tests pass under serial replay (one interleaving, spawn runs inline),
  // yet the explorer finds a violating schedule and captures a witness.
  for (const std::string& case_id : explored_case_ids()) {
    const corpus::FailureTicket& ticket = ticket_or_die(case_id);
    const minilang::Program program = minilang::parse_checked(ticket.buggy_source);

    minilang::Interp serial(program);
    const auto [passed, failed] = serial.run_all_tests();
    EXPECT_GT(passed, 0) << case_id;
    EXPECT_EQ(failed, 0) << case_id << ": serial replay should be blind — "
                         << serial.last_error();

    concolic::ScheduleExplorer explorer(program, {});
    const concolic::ScheduleExplorationResult result = explorer.explore();
    EXPECT_TRUE(result.violation_found) << case_id;
    ASSERT_FALSE(result.witnesses.empty()) << case_id;
    const concolic::ScheduleWitness& witness = result.witnesses.front();
    EXPECT_FALSE(witness.test.empty()) << case_id;
    EXPECT_FALSE(witness.decisions.empty()) << case_id;
    EXPECT_TRUE(witness.outcome == "assert-failure" || witness.outcome == "hang")
        << case_id << ": " << witness.outcome;
  }
}

TEST(ScheduleExplorer, PatchedCasesExploreConclusivelyWithNoViolation) {
  for (const std::string& case_id : explored_case_ids()) {
    const corpus::FailureTicket& ticket = ticket_or_die(case_id);
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    concolic::ScheduleExplorer explorer(program, {});
    const concolic::ScheduleExplorationResult result = explorer.explore();
    EXPECT_FALSE(result.violation_found) << case_id;
    EXPECT_TRUE(result.conclusive) << case_id << ": " << result.inconclusive_reason;
    EXPECT_GT(result.schedules_explored, 1) << case_id;
    EXPECT_GT(result.tests_with_threads, 0) << case_id;
  }
}

TEST(ScheduleExplorer, MissedNotifyManifestsAsHangWitness) {
  const corpus::FailureTicket& ticket = ticket_or_die("cass-flush-notify");
  const minilang::Program program = minilang::parse_checked(ticket.buggy_source);
  concolic::ScheduleExplorer explorer(program, {});
  const concolic::ScheduleExplorationResult result = explorer.explore();
  ASSERT_FALSE(result.witnesses.empty());
  EXPECT_EQ(result.witnesses.front().outcome, "hang");
  EXPECT_NE(result.witnesses.front().detail.find("waiting"), std::string::npos)
      << result.witnesses.front().detail;
}

/// Records the interleaved execution as "t<id>:<function>:<line>;" so two
/// replays can be compared byte-for-byte.
class TraceRecorder final : public minilang::ExecObserver {
 public:
  void attach(minilang::Interp* interp) { interp_ = interp; }
  void on_stmt(const minilang::FuncDecl& fn, const minilang::Stmt& stmt) override {
    trace_ += "t" + std::to_string(interp_->current_thread_id()) + ":" + fn.name +
              ":" + std::to_string(stmt.loc.line) + ";";
  }
  [[nodiscard]] const std::string& trace() const { return trace_; }

 private:
  minilang::Interp* interp_ = nullptr;
  std::string trace_;
};

TEST(ScheduleExplorer, WitnessReplayIsByteIdenticalAcrossFiftyRuns) {
  const corpus::FailureTicket& ticket = ticket_or_die("hbase-counter-race");
  const minilang::Program program = minilang::parse_checked(ticket.buggy_source);
  concolic::ScheduleExplorer explorer(program, {});
  const concolic::ScheduleExplorationResult explored = explorer.explore();
  ASSERT_FALSE(explored.witnesses.empty());
  const concolic::ScheduleWitness& witness = explored.witnesses.front();

  std::string first_trace;
  std::string first_error;
  for (int run = 0; run < 50; ++run) {
    TraceRecorder recorder;
    const minilang::ScheduleRunResult result =
        explorer.replay(witness, [&](minilang::Interp& interp) {
          recorder.attach(&interp);
          interp.set_observer(&recorder);
        });
    // The witness re-derives the identical failing trace, every time.
    EXPECT_FALSE(result.test_passed) << "run " << run;
    EXPECT_EQ(result.error, witness.detail) << "run " << run;
    if (run == 0) {
      first_trace = recorder.trace();
      first_error = result.error;
      EXPECT_FALSE(first_trace.empty());
    } else {
      ASSERT_EQ(recorder.trace(), first_trace) << "run " << run;
      ASSERT_EQ(result.error, first_error) << "run " << run;
    }
  }
}

TEST(ScheduleExplorer, StaleWitnessDegradesDeterministically) {
  // A witness whose decisions no longer apply (recorded against the buggy
  // source, replayed against the patch) falls back to lowest-id scheduling:
  // the run completes and reports "not reproduced" instead of crashing.
  const corpus::FailureTicket& ticket = ticket_or_die("hbase-counter-race");
  const minilang::Program buggy = minilang::parse_checked(ticket.buggy_source);
  concolic::ScheduleExplorer buggy_explorer(buggy, {});
  const concolic::ScheduleExplorationResult explored = buggy_explorer.explore();
  ASSERT_FALSE(explored.witnesses.empty());

  const minilang::Program patched = minilang::parse_checked(ticket.patched_source);
  concolic::ScheduleExplorer patched_explorer(patched, {});
  const minilang::ScheduleRunResult first =
      patched_explorer.replay(explored.witnesses.front());
  const minilang::ScheduleRunResult second =
      patched_explorer.replay(explored.witnesses.front());
  EXPECT_TRUE(first.test_passed) << first.error;
  EXPECT_EQ(first.test_passed, second.test_passed);
  EXPECT_EQ(first.error, second.error);
  const obs::Narration narration =
      concolic::narrate_schedule(patched, explored.witnesses.front());
  EXPECT_FALSE(narration.reproduced);
  EXPECT_NE(narration.detail.find("stale witness"), std::string::npos)
      << narration.detail;
}

TEST(ScheduleExplorer, NonSpawningTestIsVacuouslyConclusive) {
  const corpus::FailureTicket& ticket = ticket_or_die("hbase-counter-race");
  const minilang::Program program = minilang::parse_checked(ticket.buggy_source);
  concolic::ScheduleExplorer explorer(program, {});
  EXPECT_FALSE(explorer.test_spawns("test_single_increment_lands"));
  EXPECT_TRUE(explorer.test_spawns("test_concurrent_increments_all_land"));
  const concolic::ScheduleExplorationResult result =
      explorer.explore_test("test_single_increment_lands");
  EXPECT_TRUE(result.conclusive);
  EXPECT_EQ(result.schedules_explored, 0);
  EXPECT_EQ(result.tests_with_threads, 0);
}

TEST(ScheduleExplorer, BoundExhaustionIsTypedInconclusive) {
  // Too small a bound on a correct program: never a silent pass. The DFS
  // cannot drain the space, the random phase finds nothing, and the result
  // says so in a typed reason.
  const corpus::FailureTicket& ticket = ticket_or_die("hbase-counter-race");
  const minilang::Program program = minilang::parse_checked(ticket.patched_source);
  concolic::ScheduleExploreOptions options;
  options.max_schedules = 4;
  concolic::ScheduleExplorer explorer(program, options);
  const concolic::ScheduleExplorationResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found);
  EXPECT_FALSE(result.conclusive);
  EXPECT_NE(result.inconclusive_reason.find("not exhausted"), std::string::npos)
      << result.inconclusive_reason;
  EXPECT_LE(result.schedules_explored, 4);
}

TEST(ScheduleExplorer, BudgetExhaustionIsTypedAndCharged) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-session-close-race");
  const minilang::Program program = minilang::parse_checked(ticket.patched_source);
  support::BudgetLimits limits;
  limits.max_schedules = 3;
  support::Budget budget(limits);
  concolic::ScheduleExploreOptions options;
  options.budget = &budget;
  concolic::ScheduleExplorer explorer(program, options);
  const concolic::ScheduleExplorationResult result = explorer.explore();
  EXPECT_FALSE(result.conclusive);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(support::budget_resource_name(budget.exhausted_resource()),
            std::string("schedules"));
  EXPECT_EQ(result.inconclusive_reason, budget.exhausted_reason());
  // The denied charge stops exploration before the run happens.
  EXPECT_EQ(result.schedules_explored, 3);
}

TEST(ScheduleExplorer, FaultpointForcesNarratedInconclusive) {
  support::FaultRegistry::instance().configure("schedule.explore=fail");
  const corpus::FailureTicket& ticket = ticket_or_die("hbase-counter-race");
  const minilang::Program program = minilang::parse_checked(ticket.buggy_source);
  concolic::ScheduleExplorer explorer(program, {});
  const concolic::ScheduleExplorationResult result = explorer.explore();
  support::FaultRegistry::instance().clear();
  EXPECT_FALSE(result.conclusive);
  EXPECT_FALSE(result.violation_found);
  EXPECT_NE(result.inconclusive_reason.find("fault injected: schedule.explore"),
            std::string::npos)
      << result.inconclusive_reason;
}

TEST(ScheduleNarration, StepsCarryOffMainThreadMarkers) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-session-close-race");
  const minilang::Program program = minilang::parse_checked(ticket.buggy_source);
  concolic::ScheduleExplorer explorer(program, {});
  const concolic::ScheduleExplorationResult explored = explorer.explore();
  ASSERT_FALSE(explored.witnesses.empty());
  const obs::Narration narration =
      concolic::narrate_schedule(program, explored.witnesses.front());
  EXPECT_EQ(narration.kind, "schedule-replay");
  EXPECT_TRUE(narration.reproduced) << narration.detail;
  ASSERT_FALSE(narration.steps.empty());
  bool off_main = false;
  for (const obs::NarrationStep& step : narration.steps)
    if (step.thread != 0) off_main = true;
  EXPECT_TRUE(off_main);
  EXPECT_NE(narration.detail.find("replayed"), std::string::npos);
}

core::ContractStore contracts_for(const corpus::FailureTicket& ticket) {
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
  core::TranslationResult translation = core::translate(proposal, ticket.system);
  core::ContractStore store;
  store.add_all(std::move(translation.contracts));
  return store;
}

TEST(GateSchedule, InconclusiveExplorationBlocksUnlessDowngraded) {
  // Gate policy: an undrained schedule space is "no violation found so far",
  // not a pass. It blocks by default and is downgradable only through the
  // explicit --schedule-warn-only escape hatch (which still flags the run).
  const corpus::FailureTicket& ticket = ticket_or_die("hbase-counter-race");
  const core::ContractStore store = contracts_for(ticket);
  core::CheckOptions options;
  options.max_schedules = 4;  // far below the ~1.2k the patch needs
  const core::CiGate gate(options);

  const core::GateDecision blocked = gate.evaluate(ticket.patched_source, store);
  EXPECT_FALSE(blocked.allowed);
  EXPECT_EQ(blocked.schedule_inconclusive, 1);
  bool narrated = false;
  for (const std::string& violation : blocked.violations)
    if (violation.find("schedule exploration inconclusive") != std::string::npos)
      narrated = true;
  EXPECT_TRUE(narrated);

  core::GateRunOptions downgraded;
  downgraded.schedule_warn_only = true;
  const core::GateDecision warned =
      gate.evaluate(ticket.patched_source, store, downgraded);
  EXPECT_TRUE(warned.allowed);
  EXPECT_TRUE(warned.needs_attention);
  EXPECT_EQ(warned.schedule_inconclusive, 1);
}

TEST(GateSchedule, ViolatingInterleavingBlocksWithLedgerRecordedWitness) {
  // Acceptance shape for the whole feature: the buggy commit is blocked, the
  // decision carries the witness, and the ledger's narration replays it.
  const corpus::FailureTicket& ticket = ticket_or_die("zk-session-close-race");
  const core::ContractStore store = contracts_for(ticket);
  obs::ProvenanceLedger ledger;
  core::GateRunOptions run_options;
  run_options.ledger = &ledger;
  const core::GateDecision decision =
      core::CiGate(core::CheckOptions{}).evaluate(ticket.buggy_source, store, run_options);
  EXPECT_FALSE(decision.allowed);
  ASSERT_FALSE(decision.reports.empty());
  const core::ContractCheckReport& report = decision.reports.front();
  EXPECT_GT(report.schedule_violations, 0);
  ASSERT_FALSE(report.schedule_witness.empty());
  const concolic::ScheduleWitness witness =
      concolic::ScheduleWitness::from_compact(report.schedule_witness);
  EXPECT_FALSE(witness.decisions.empty());
  const obs::ContractCapture* capture = ledger.find(report.contract_id);
  ASSERT_NE(capture, nullptr);
  EXPECT_EQ(capture->schedule_witness, report.schedule_witness);
  EXPECT_EQ(capture->narration.kind, "schedule-replay");
  EXPECT_TRUE(capture->narration.reproduced);
}

}  // namespace
