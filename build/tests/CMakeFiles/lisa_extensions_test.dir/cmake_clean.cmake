file(REMOVE_RECURSE
  "CMakeFiles/lisa_extensions_test.dir/lisa_extensions_test.cpp.o"
  "CMakeFiles/lisa_extensions_test.dir/lisa_extensions_test.cpp.o.d"
  "lisa_extensions_test"
  "lisa_extensions_test.pdb"
  "lisa_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
