file(REMOVE_RECURSE
  "CMakeFiles/lisa_minilang.dir/ast.cpp.o"
  "CMakeFiles/lisa_minilang.dir/ast.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/builtins.cpp.o"
  "CMakeFiles/lisa_minilang.dir/builtins.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/compiler.cpp.o"
  "CMakeFiles/lisa_minilang.dir/compiler.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/interp.cpp.o"
  "CMakeFiles/lisa_minilang.dir/interp.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/lexer.cpp.o"
  "CMakeFiles/lisa_minilang.dir/lexer.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/parser.cpp.o"
  "CMakeFiles/lisa_minilang.dir/parser.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/printer.cpp.o"
  "CMakeFiles/lisa_minilang.dir/printer.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/sema.cpp.o"
  "CMakeFiles/lisa_minilang.dir/sema.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/value.cpp.o"
  "CMakeFiles/lisa_minilang.dir/value.cpp.o.d"
  "CMakeFiles/lisa_minilang.dir/vm.cpp.o"
  "CMakeFiles/lisa_minilang.dir/vm.cpp.o.d"
  "liblisa_minilang.a"
  "liblisa_minilang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_minilang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
