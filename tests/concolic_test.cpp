// Unit tests for the concolic engine: shadow propagation, path conditions,
// contract instantiation, and the injected complement check.
#include <gtest/gtest.h>

#include "concolic/engine.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"

namespace lisa::concolic {
namespace {

using minilang::Program;

CheckConfig config_for(const std::string& fragment, const std::string& condition) {
  CheckConfig config;
  config.target_fragment = fragment;
  config.contract = *smt::parse_condition(condition);
  return config;
}

TEST(Concolic, GuardedPathVerifies) {
  const Program program = minilang::parse_checked(R"(
struct Session { is_closing: bool; }
fn create(s: Session) { print(s); }
@entry
fn request(s: Session?) {
  if (s == null) { throw "expired"; }
  if (s.is_closing) { throw "closing"; }
  create(s);
}
@test
fn test_ok() {
  let s = new Session { is_closing: false };
  request(s);
}
)");
  Engine engine(program);
  const RunResult run =
      engine.run_test("test_ok", config_for("create(", "!(s == null) && !(s.is_closing)"));
  EXPECT_TRUE(run.test_passed);
  ASSERT_EQ(run.hits.size(), 1u);
  EXPECT_TRUE(run.hits[0].instantiable);
  EXPECT_FALSE(run.hits[0].symbolic_violation);
  EXPECT_FALSE(run.hits[0].concrete_violation);
}

TEST(Concolic, MissingCheckIsSymbolicViolation) {
  const Program program = minilang::parse_checked(R"(
struct Session { is_closing: bool; }
fn create(s: Session) { print(s); }
@entry
fn request(s: Session?) {
  if (s == null) { throw "expired"; }
  create(s);
}
@test
fn test_unguarded() {
  let s = new Session { is_closing: false };
  request(s);
}
)");
  Engine engine(program);
  const RunResult run =
      engine.run_test("test_unguarded", config_for("create(", "!(s == null) && !(s.is_closing)"));
  ASSERT_EQ(run.hits.size(), 1u);
  // The trace never constrained is_closing: π ∧ ¬P is satisfiable.
  EXPECT_TRUE(run.hits[0].symbolic_violation);
  // But the concrete state satisfies P (is_closing == false).
  EXPECT_FALSE(run.hits[0].concrete_violation);
  EXPECT_NE(run.hits[0].witness.find("is_closing"), std::string::npos);
}

TEST(Concolic, ConcreteViolationDetected) {
  const Program program = minilang::parse_checked(R"(
struct Session { is_closing: bool; }
fn create(s: Session) { print(s); }
@entry
fn request(s: Session) {
  create(s);
}
@test
fn test_closing() {
  let s = new Session { is_closing: true };
  request(s);
}
)");
  Engine engine(program);
  const RunResult run =
      engine.run_test("test_closing", config_for("create(", "!(s.is_closing)"));
  ASSERT_EQ(run.hits.size(), 1u);
  EXPECT_TRUE(run.hits[0].concrete_violation);
  EXPECT_TRUE(run.hits[0].symbolic_violation);
}

TEST(Concolic, ShadowFlowsThroughLocals) {
  // The guard reads the field into a local first; the shadow must survive.
  const Program program = minilang::parse_checked(R"(
struct Session { is_closing: bool; }
fn create(s: Session) { print(s); }
@entry
fn request(s: Session) {
  let closing = s.is_closing;
  if (closing) { throw "closing"; }
  create(s);
}
@test
fn test_local_guard() {
  let s = new Session { is_closing: false };
  request(s);
}
)");
  Engine engine(program);
  const RunResult run =
      engine.run_test("test_local_guard", config_for("create(", "!(s.is_closing)"));
  ASSERT_EQ(run.hits.size(), 1u);
  EXPECT_FALSE(run.hits[0].symbolic_violation) << run.hits[0].witness;
}

TEST(Concolic, IntComparisonAgainstRuntimeConstantNormalizes) {
  // Guard compares a field against a local limit variable; the paper's
  // normalization replaces the constant variable with its actual value.
  const Program program = minilang::parse_checked(R"(
struct Block { location_count: int; }
fn serve(b: Block) { print(b); }
@entry
fn read_block(b: Block) {
  let minimum = 0;
  if (b.location_count <= minimum) { throw "retry"; }
  serve(b);
}
@test
fn test_located() {
  let b = new Block { location_count: 3 };
  read_block(b);
}
)");
  Engine engine(program);
  const RunResult run =
      engine.run_test("test_located", config_for("serve(", "b.location_count > 0"));
  ASSERT_EQ(run.hits.size(), 1u);
  EXPECT_FALSE(run.hits[0].symbolic_violation) << run.hits[0].witness;
}

TEST(Concolic, PruningSkipsIrrelevantBranches) {
  const Program program = minilang::parse_checked(R"(
struct S { flag: bool; other: bool; }
fn act(s: S) { print(s); }
@entry
fn request(s: S, n: int) {
  if (n > 5) { print(n); }
  if (s.other) { print(s); }
  if (s.flag) {
    act(s);
  }
}
@test
fn test_run() {
  let s = new S { flag: true, other: true };
  request(s, 10);
}
)");
  Engine engine(program);
  CheckConfig config = config_for("act(", "s.flag");
  const RunResult pruned = engine.run_test("test_run", config);
  config.prune_irrelevant = false;
  const RunResult full = engine.run_test("test_run", config);
  EXPECT_LT(pruned.branches_recorded, full.branches_recorded);
  EXPECT_EQ(pruned.branches_total, full.branches_total);
}

TEST(Concolic, HitRecordsCallChain) {
  const Program program = minilang::parse_checked(R"(
struct S { ok: bool; }
fn act(s: S) { print(s); }
fn middle(s: S) { act(s); }
@entry
fn outer(s: S) { middle(s); }
@test
fn test_chain() {
  let s = new S { ok: true };
  outer(s);
}
)");
  Engine engine(program);
  const RunResult run = engine.run_test("test_chain", config_for("act(", "s.ok"));
  ASSERT_EQ(run.hits.size(), 1u);
  const std::vector<std::string> expected{"test_chain", "outer", "middle"};
  EXPECT_EQ(run.hits[0].call_chain, expected);
  EXPECT_EQ(run.hits[0].function, "middle");
}

TEST(Concolic, FailingTestReported) {
  const Program program = minilang::parse_checked(R"(
@test
fn test_boom() { throw "exploded"; }
)");
  Engine engine(program);
  CheckConfig config;
  config.target_fragment = "nothing(";
  const RunResult run = engine.run_test("test_boom", config);
  EXPECT_FALSE(run.test_passed);
  EXPECT_EQ(run.failure, "exploded");
}

TEST(Concolic, NullCheckOnObjectRecordsNullAtom) {
  const Program program = minilang::parse_checked(R"(
struct S { ok: bool; }
fn act(s: S) { print(s); }
@entry
fn request(s: S?) {
  if (s != null) {
    act(s);
  }
}
@test
fn test_nonnull() {
  let s = new S { ok: true };
  request(s);
}
)");
  Engine engine(program);
  const RunResult run = engine.run_test("test_nonnull", config_for("act(", "!(s == null)"));
  ASSERT_EQ(run.hits.size(), 1u);
  EXPECT_FALSE(run.hits[0].symbolic_violation) << run.hits[0].witness;
  EXPECT_NE(run.hits[0].trace_condition->to_string().find("#null"), std::string::npos);
}

TEST(Concolic, MultipleHitsInLoop) {
  const Program program = minilang::parse_checked(R"(
struct S { ok: bool; }
fn act(s: S) { print(s); }
@entry
fn batched(s: S, n: int) {
  let i = 0;
  while (i < n) {
    act(s);
    i = i + 1;
  }
}
@test
fn test_batch() {
  let s = new S { ok: true };
  batched(s, 3);
}
)");
  Engine engine(program);
  const RunResult run = engine.run_test("test_batch", config_for("act(", "s.ok"));
  EXPECT_EQ(run.hits.size(), 3u);
  for (const TargetHit& hit : run.hits) EXPECT_TRUE(hit.symbolic_violation);
}

TEST(Concolic, CompoundGuardBuildsConjunctionShadow) {
  const Program program = minilang::parse_checked(R"(
struct D { alive: bool; decommissioning: bool; }
fn assign(d: D) { print(d); }
@entry
fn choose(d: D) {
  if (d.decommissioning == false && d.alive) {
    assign(d);
  }
}
@test
fn test_assign() {
  let d = new D { alive: true, decommissioning: false };
  choose(d);
}
)");
  Engine engine(program);
  const RunResult run = engine.run_test(
      "test_assign", config_for("assign(", "d.decommissioning == false && d.alive"));
  ASSERT_EQ(run.hits.size(), 1u);
  EXPECT_FALSE(run.hits[0].symbolic_violation) << run.hits[0].witness;
}

}  // namespace
}  // namespace lisa::concolic
