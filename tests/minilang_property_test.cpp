// Property tests over randomly generated MiniLang programs:
//   * print→parse→print is a fixpoint (printer/parser agreement),
//   * generated programs pass the semantic checker,
//   * the concolic engine and the plain interpreter are observationally
//     equivalent (same results, same exceptions) — the differential oracle
//     that keeps the two tree-walkers in sync.
#include <gtest/gtest.h>

#include "concolic/engine.hpp"
#include "minilang/compiler.hpp"
#include "minilang/interp.hpp"
#include "minilang/parser.hpp"
#include "minilang/printer.hpp"
#include "minilang/sema.hpp"
#include "minilang/vm.hpp"
#include "smt/minilang_bridge.hpp"
#include "support/rng.hpp"

namespace lisa::minilang {
namespace {

/// Generates a random but well-formed MiniLang program with one @test driver
/// that exercises arithmetic, branching, loops, struct state, and a guarded
/// "operation" call.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    std::string out;
    out += "struct State { a: int; b: int; flag: bool; total: int; }\n\n";
    out += "fn operate(s: State, amount: int) -> int {\n"
           "  s.total = s.total + amount;\n"
           "  return s.total;\n"
           "}\n\n";
    // A few worker functions with random straight-line bodies.
    const int workers = 2 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < workers; ++i) out += worker(i);
    // The test driver calls each worker with random arguments.
    out += "@test\nfn test_driver() {\n";
    out += "  let s = new State { a: " + std::to_string(rng_.next_in(-5, 5)) +
           ", b: " + std::to_string(rng_.next_in(-5, 5)) +
           ", flag: " + (rng_.next_bool() ? "true" : "false") + ", total: 0 };\n";
    for (int i = 0; i < workers; ++i) {
      out += "  let r" + std::to_string(i) + " = worker" + std::to_string(i) + "(s, " +
             std::to_string(rng_.next_in(-8, 8)) + ");\n";
      out += "  print(\"r" + std::to_string(i) + "=\", r" + std::to_string(i) + ");\n";
    }
    out += "  print(\"total=\", s.total);\n";
    out += "}\n";
    return out;
  }

 private:
  std::string expr_over(const std::vector<std::string>& ints, int depth) {
    if (depth == 0 || rng_.next_bool(0.4)) {
      if (rng_.next_bool(0.5)) return ints[rng_.pick_index(ints.size())];
      return std::to_string(rng_.next_in(-9, 9));
    }
    static const char* ops[] = {"+", "-", "*"};
    return "(" + expr_over(ints, depth - 1) + " " + ops[rng_.next_below(3)] + " " +
           expr_over(ints, depth - 1) + ")";
  }

  std::string cond_over(const std::vector<std::string>& ints) {
    static const char* cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    std::string out = expr_over(ints, 1) + " " + cmps[rng_.next_below(6)] + " " +
                      expr_over(ints, 1);
    if (rng_.next_bool(0.3)) out += rng_.next_bool() ? " && s.flag" : " || s.flag";
    return out;
  }

  std::string worker(int index) {
    std::vector<std::string> ints = {"x", "s.a", "s.b"};
    std::string body;
    const int statements = 2 + static_cast<int>(rng_.next_below(4));
    int locals = 0;
    for (int i = 0; i < statements; ++i) {
      switch (rng_.next_below(4)) {
        case 0: {
          const std::string name = "v" + std::to_string(index) + "_" + std::to_string(locals++);
          body += "  let " + name + " = " + expr_over(ints, 2) + ";\n";
          ints.push_back(name);
          break;
        }
        case 1:
          body += "  if (" + cond_over(ints) + ") {\n    s.a = " + expr_over(ints, 1) +
                  ";\n  } else {\n    s.b = " + expr_over(ints, 1) + ";\n  }\n";
          break;
        case 2: {
          // Bounded loop: a fresh counter guarantees termination.
          const std::string counter = "i" + std::to_string(index) + "_" + std::to_string(locals++);
          body += "  let " + counter + " = 0;\n  while (" + counter + " < " +
                  std::to_string(1 + rng_.next_below(4)) + ") {\n    s.total = s.total + 1;\n    " +
                  counter + " = " + counter + " + 1;\n  }\n";
          break;
        }
        default:
          body += "  if (" + cond_over(ints) + ") {\n    operate(s, " + expr_over(ints, 1) +
                  ");\n  }\n";
          break;
      }
    }
    return "fn worker" + std::to_string(index) + "(s: State, x: int) -> int {\n" + body +
           "  return " + expr_over(ints, 1) + ";\n}\n\n";
  }

  support::Rng rng_;
};

class RandomProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgram, PrintParsePrintIsFixpoint) {
  const std::string source = ProgramGenerator(static_cast<std::uint64_t>(GetParam())).generate();
  const Program once = parse(source);
  const std::string printed = program_text(once);
  const Program twice = parse(printed);
  EXPECT_EQ(printed, program_text(twice)) << source;
}

TEST_P(RandomProgram, GeneratedProgramsAreSemanticallyClean) {
  const std::string source = ProgramGenerator(static_cast<std::uint64_t>(GetParam())).generate();
  const Program program = parse(source);
  const auto diags = check(program);
  EXPECT_TRUE(diags.empty()) << source << "\nfirst: "
                             << (diags.empty() ? "" : diags[0].message);
}

TEST_P(RandomProgram, ConcolicEngineMatchesInterpreter) {
  const std::string source = ProgramGenerator(static_cast<std::uint64_t>(GetParam())).generate();
  const Program program = parse_checked(source);

  Interp interp(program);
  std::string interp_error;
  bool interp_ok = interp.run_test("test_driver");
  interp_error = interp.last_error();
  const std::string interp_output = interp.take_output();

  concolic::Engine engine(program);
  concolic::CheckConfig config;
  config.target_fragment = "operate(";
  config.contract = *smt::parse_condition("s.flag");
  const concolic::RunResult run = engine.run_test("test_driver", config);

  EXPECT_EQ(interp_ok, run.test_passed) << source << "\ninterp error: " << interp_error
                                        << "\nconcolic error: " << run.failure;
  if (!interp_ok) {
    EXPECT_EQ(interp_error, run.failure) << source;
  }
  // Target hits must agree with the interpreter's view of how often the
  // operation ran: count "total=" change is equivalent; instead re-derive by
  // concrete replay with a counting observer.
  struct CountCalls : ExecObserver {
    int operate_calls = 0;
    void on_call(const FuncDecl& fn) override {
      if (fn.name == "operate") ++operate_calls;
    }
  } counter;
  Interp recount(program);
  recount.set_observer(&counter);
  recount.run_test("test_driver");
  EXPECT_EQ(static_cast<int>(run.hits.size()), counter.operate_calls) << source;
}

TEST_P(RandomProgram, BytecodeVmMatchesInterpreter) {
  const std::string source = ProgramGenerator(static_cast<std::uint64_t>(GetParam())).generate();
  const Program program = parse_checked(source);
  const Module module = compile(program);

  Interp interp(program);
  const bool interp_ok = interp.run_test("test_driver");
  const std::string interp_error = interp.last_error();
  const std::string interp_output = interp.take_output();

  Vm vm(module);
  const bool vm_ok = vm.run_test("test_driver");
  EXPECT_EQ(interp_ok, vm_ok) << source << "\ninterp: " << interp_error
                              << "\nvm: " << vm.last_error();
  EXPECT_EQ(interp_output, vm.take_output()) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(1, 41));

}  // namespace
}  // namespace lisa::minilang
