# Empty dependencies file for lisa_corpus.
# This may be replaced when dependencies are built.
