file(REMOVE_RECURSE
  "liblisa_systems.a"
)
