#include "minilang/parser.hpp"

#include "minilang/lexer.hpp"

namespace lisa::minilang {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Program* program)
      : tokens_(std::move(tokens)), program_(program) {}

  Program parse_program(std::string_view source) {
    Program program;
    program.source = std::string(source);
    program_ = &program;
    while (!check(TokenKind::kEof)) {
      std::vector<std::string> annotations;
      while (accept(TokenKind::kAt)) {
        annotations.push_back(expect(TokenKind::kIdent, "annotation name").text);
      }
      if (check(TokenKind::kStruct)) {
        if (!annotations.empty()) fail("annotations are only allowed on functions");
        program.structs.push_back(parse_struct());
      } else if (check(TokenKind::kFn)) {
        FuncDecl fn = parse_function();
        fn.annotations = std::move(annotations);
        program.functions.push_back(std::move(fn));
      } else {
        fail("expected 'struct' or 'fn' at top level");
      }
    }
    return program;
  }

  ExprPtr parse_single_expression() {
    ExprPtr expr = parse_expr();
    if (!check(TokenKind::kEof)) fail("trailing tokens after expression");
    return expr;
  }

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }

  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }

  const Token& advance() {
    const Token& token = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return token;
  }

  bool accept(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }

  const Token& expect(TokenKind kind, const std::string& what) {
    if (!check(kind))
      fail("expected " + what + ", found " + token_kind_name(peek().kind));
    return advance();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().loc);
  }

  // -- Declarations ---------------------------------------------------------

  StructDecl parse_struct() {
    StructDecl decl;
    decl.loc = peek().loc;
    expect(TokenKind::kStruct, "'struct'");
    decl.name = expect(TokenKind::kIdent, "struct name").text;
    expect(TokenKind::kLBrace, "'{'");
    while (!accept(TokenKind::kRBrace)) {
      FieldDecl field;
      field.name = expect(TokenKind::kIdent, "field name").text;
      expect(TokenKind::kColon, "':'");
      field.type = parse_type();
      expect(TokenKind::kSemi, "';'");
      decl.fields.push_back(std::move(field));
    }
    return decl;
  }

  FuncDecl parse_function() {
    FuncDecl fn;
    fn.loc = peek().loc;
    expect(TokenKind::kFn, "'fn'");
    fn.name = expect(TokenKind::kIdent, "function name").text;
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kRParen)) {
      do {
        Param param;
        param.name = expect(TokenKind::kIdent, "parameter name").text;
        expect(TokenKind::kColon, "':'");
        param.type = parse_type();
        fn.params.push_back(std::move(param));
      } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "')'");
    if (accept(TokenKind::kArrow)) {
      fn.return_type = parse_type();
    } else {
      fn.return_type = Type::make_void();
    }
    fn.body = parse_block();
    return fn;
  }

  TypePtr parse_type() {
    TypePtr base;
    const Token& token = peek();
    if (token.kind == TokenKind::kIdent) {
      const std::string& name = token.text;
      if (name == "int") {
        advance();
        base = Type::make_int();
      } else if (name == "bool") {
        advance();
        base = Type::make_bool();
      } else if (name == "string") {
        advance();
        base = Type::make_string();
      } else if (name == "void") {
        advance();
        base = Type::make_void();
      } else if (name == "any") {
        advance();
        base = Type::make_any();
      } else if (name == "list") {
        advance();
        expect(TokenKind::kLt, "'<'");
        TypePtr elem = parse_type();
        expect(TokenKind::kGt, "'>'");
        base = Type::make_list(std::move(elem));
      } else if (name == "map") {
        advance();
        expect(TokenKind::kLt, "'<'");
        TypePtr key = parse_type();
        expect(TokenKind::kComma, "','");
        TypePtr value = parse_type();
        expect(TokenKind::kGt, "'>'");
        base = Type::make_map(std::move(key), std::move(value));
      } else {
        advance();
        base = Type::make_struct(name, /*nullable=*/false);
      }
    } else {
      fail("expected type name");
    }
    if (accept(TokenKind::kQuestion)) return Type::as_nullable(base);
    return base;
  }

  // -- Statements -----------------------------------------------------------

  std::vector<StmtPtr> parse_block() {
    expect(TokenKind::kLBrace, "'{'");
    std::vector<StmtPtr> stmts;
    while (!accept(TokenKind::kRBrace)) stmts.push_back(parse_stmt());
    return stmts;
  }

  StmtPtr make_stmt(Stmt::Kind kind, SourceLoc loc) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->loc = loc;
    stmt->id = program_ ? program_->next_stmt_id++ : -1;
    return stmt;
  }

  StmtPtr parse_stmt() {
    const SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case TokenKind::kLet: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kLet, loc);
        stmt->name = expect(TokenKind::kIdent, "variable name").text;
        if (accept(TokenKind::kColon)) stmt->declared_type = parse_type();
        expect(TokenKind::kAssign, "'='");
        stmt->expr = parse_expr();
        expect(TokenKind::kSemi, "';'");
        return stmt;
      }
      case TokenKind::kIf: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kIf, loc);
        expect(TokenKind::kLParen, "'('");
        stmt->expr = parse_expr();
        expect(TokenKind::kRParen, "')'");
        stmt->body = parse_block();
        if (accept(TokenKind::kElse)) {
          if (check(TokenKind::kIf)) {
            stmt->else_body.push_back(parse_stmt());
          } else {
            stmt->else_body = parse_block();
          }
        }
        return stmt;
      }
      case TokenKind::kWhile: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kWhile, loc);
        expect(TokenKind::kLParen, "'('");
        stmt->expr = parse_expr();
        expect(TokenKind::kRParen, "')'");
        stmt->body = parse_block();
        return stmt;
      }
      case TokenKind::kSync: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kSync, loc);
        expect(TokenKind::kLParen, "'('");
        stmt->expr = parse_expr();
        expect(TokenKind::kRParen, "')'");
        stmt->body = parse_block();
        return stmt;
      }
      case TokenKind::kSpawn: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kSpawn, loc);
        stmt->expr = parse_expr();
        if (stmt->expr->kind != Expr::Kind::kCall)
          fail("spawn expects a function call");
        expect(TokenKind::kSemi, "';'");
        return stmt;
      }
      case TokenKind::kReturn: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kReturn, loc);
        if (!check(TokenKind::kSemi)) stmt->expr = parse_expr();
        expect(TokenKind::kSemi, "';'");
        return stmt;
      }
      case TokenKind::kThrow: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kThrow, loc);
        stmt->expr = parse_expr();
        expect(TokenKind::kSemi, "';'");
        return stmt;
      }
      case TokenKind::kTry: {
        advance();
        StmtPtr stmt = make_stmt(Stmt::Kind::kTry, loc);
        stmt->body = parse_block();
        expect(TokenKind::kCatch, "'catch'");
        expect(TokenKind::kLParen, "'('");
        stmt->catch_var = expect(TokenKind::kIdent, "catch variable").text;
        expect(TokenKind::kRParen, "')'");
        stmt->else_body = parse_block();
        return stmt;
      }
      case TokenKind::kBreak: {
        advance();
        expect(TokenKind::kSemi, "';'");
        return make_stmt(Stmt::Kind::kBreak, loc);
      }
      case TokenKind::kContinue: {
        advance();
        expect(TokenKind::kSemi, "';'");
        return make_stmt(Stmt::Kind::kContinue, loc);
      }
      case TokenKind::kLBrace: {
        StmtPtr stmt = make_stmt(Stmt::Kind::kBlock, loc);
        stmt->body = parse_block();
        return stmt;
      }
      default: {
        // Either an assignment (lvalue = rhs;) or a bare expression statement.
        ExprPtr expr = parse_expr();
        if (accept(TokenKind::kAssign)) {
          if (expr->kind != Expr::Kind::kVar && expr->kind != Expr::Kind::kField &&
              expr->kind != Expr::Kind::kIndex)
            fail("left side of '=' is not assignable");
          StmtPtr stmt = make_stmt(Stmt::Kind::kAssign, loc);
          stmt->expr = std::move(expr);
          stmt->expr2 = parse_expr();
          expect(TokenKind::kSemi, "';'");
          return stmt;
        }
        StmtPtr stmt = make_stmt(Stmt::Kind::kExpr, loc);
        stmt->expr = std::move(expr);
        expect(TokenKind::kSemi, "';'");
        return stmt;
      }
    }
  }

  // -- Expressions ----------------------------------------------------------
  // Precedence (low→high): || , && , ==/!= , relational , +/- , * / % , unary,
  // postfix (call/field/index), primary.

  ExprPtr make_expr(Expr::Kind kind, SourceLoc loc) {
    auto expr = std::make_unique<Expr>();
    expr->kind = kind;
    expr->loc = loc;
    return expr;
  }

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr binary(ExprPtr lhs, BinOp op, ExprPtr rhs) {
    auto expr = make_expr(Expr::Kind::kBinary, lhs->loc);
    expr->bin_op = op;
    expr->args.push_back(std::move(lhs));
    expr->args.push_back(std::move(rhs));
    return expr;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept(TokenKind::kOrOr)) lhs = binary(std::move(lhs), BinOp::kOr, parse_and());
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_equality();
    while (accept(TokenKind::kAndAnd))
      lhs = binary(std::move(lhs), BinOp::kAnd, parse_equality());
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    while (true) {
      if (accept(TokenKind::kEq))
        lhs = binary(std::move(lhs), BinOp::kEq, parse_relational());
      else if (accept(TokenKind::kNe))
        lhs = binary(std::move(lhs), BinOp::kNe, parse_relational());
      else
        return lhs;
    }
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_additive();
    while (true) {
      if (accept(TokenKind::kLt))
        lhs = binary(std::move(lhs), BinOp::kLt, parse_additive());
      else if (accept(TokenKind::kLe))
        lhs = binary(std::move(lhs), BinOp::kLe, parse_additive());
      else if (accept(TokenKind::kGt))
        lhs = binary(std::move(lhs), BinOp::kGt, parse_additive());
      else if (accept(TokenKind::kGe))
        lhs = binary(std::move(lhs), BinOp::kGe, parse_additive());
      else
        return lhs;
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (true) {
      if (accept(TokenKind::kPlus))
        lhs = binary(std::move(lhs), BinOp::kAdd, parse_multiplicative());
      else if (accept(TokenKind::kMinus))
        lhs = binary(std::move(lhs), BinOp::kSub, parse_multiplicative());
      else
        return lhs;
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (true) {
      if (accept(TokenKind::kStar))
        lhs = binary(std::move(lhs), BinOp::kMul, parse_unary());
      else if (accept(TokenKind::kSlash))
        lhs = binary(std::move(lhs), BinOp::kDiv, parse_unary());
      else if (accept(TokenKind::kPercent))
        lhs = binary(std::move(lhs), BinOp::kMod, parse_unary());
      else
        return lhs;
    }
  }

  ExprPtr parse_unary() {
    const SourceLoc loc = peek().loc;
    if (accept(TokenKind::kBang)) {
      auto expr = make_expr(Expr::Kind::kUnary, loc);
      expr->un_op = UnOp::kNot;
      expr->args.push_back(parse_unary());
      return expr;
    }
    if (accept(TokenKind::kMinus)) {
      auto expr = make_expr(Expr::Kind::kUnary, loc);
      expr->un_op = UnOp::kNeg;
      expr->args.push_back(parse_unary());
      return expr;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    while (true) {
      const SourceLoc loc = peek().loc;
      if (accept(TokenKind::kDot)) {
        const std::string member = expect(TokenKind::kIdent, "member name").text;
        if (check(TokenKind::kLParen)) {
          // Method-call sugar: `recv.f(a, b)` desugars to `f(recv, a, b)`.
          auto call = make_expr(Expr::Kind::kCall, loc);
          call->text = member;
          call->args.push_back(std::move(expr));
          parse_call_args(*call);
          expr = std::move(call);
        } else {
          auto field = make_expr(Expr::Kind::kField, loc);
          field->text = member;
          field->args.push_back(std::move(expr));
          expr = std::move(field);
        }
      } else if (accept(TokenKind::kLBracket)) {
        auto index = make_expr(Expr::Kind::kIndex, loc);
        index->args.push_back(std::move(expr));
        index->args.push_back(parse_expr());
        expect(TokenKind::kRBracket, "']'");
        expr = std::move(index);
      } else {
        return expr;
      }
    }
  }

  void parse_call_args(Expr& call) {
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kRParen)) {
      do {
        call.args.push_back(parse_expr());
      } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "')'");
  }

  ExprPtr parse_primary() {
    const Token& token = peek();
    const SourceLoc loc = token.loc;
    switch (token.kind) {
      case TokenKind::kIntLit: {
        advance();
        auto expr = make_expr(Expr::Kind::kIntLit, loc);
        expr->int_value = token.int_value;
        return expr;
      }
      case TokenKind::kStrLit: {
        advance();
        auto expr = make_expr(Expr::Kind::kStrLit, loc);
        expr->text = token.text;
        return expr;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        const bool value = token.kind == TokenKind::kTrue;
        advance();
        auto expr = make_expr(Expr::Kind::kBoolLit, loc);
        expr->bool_value = value;
        return expr;
      }
      case TokenKind::kNull:
        advance();
        return make_expr(Expr::Kind::kNullLit, loc);
      case TokenKind::kNew: {
        advance();
        auto expr = make_expr(Expr::Kind::kNew, loc);
        expr->text = expect(TokenKind::kIdent, "struct name").text;
        expect(TokenKind::kLBrace, "'{'");
        if (!check(TokenKind::kRBrace)) {
          do {
            expr->field_names.push_back(expect(TokenKind::kIdent, "field name").text);
            expect(TokenKind::kColon, "':'");
            expr->args.push_back(parse_expr());
          } while (accept(TokenKind::kComma));
        }
        expect(TokenKind::kRBrace, "'}'");
        return expr;
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr expr = parse_expr();
        expect(TokenKind::kRParen, "')'");
        return expr;
      }
      case TokenKind::kIdent: {
        const std::string name = token.text;
        advance();
        if (check(TokenKind::kLParen)) {
          auto call = make_expr(Expr::Kind::kCall, loc);
          call->text = name;
          parse_call_args(*call);
          return call;
        }
        auto var = make_expr(Expr::Kind::kVar, loc);
        var->text = name;
        return var;
      }
      default:
        fail(std::string("expected expression, found ") + token_kind_name(token.kind));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program* program_;
};

}  // namespace

Program parse(std::string_view source) {
  Parser parser(lex(source), nullptr);
  return parser.parse_program(source);
}

ExprPtr parse_expression(std::string_view source) {
  Parser parser(lex(source), nullptr);
  return parser.parse_single_expression();
}

}  // namespace lisa::minilang
