// Counterexample narration and gate failure reports.
//
// The provenance ledger (obs/provenance.hpp) stores *what* was decided; this
// module makes the decision legible. Two pieces:
//
//   * narrate_counterexample — replays a covering @test through the concrete
//     MiniLang interpreter with the violated path's SMT model injected into
//     the live state, producing a statement-by-statement trace (variable
//     deltas, lock/monitor state) that ends at the target statement with the
//     failing predicate evaluated term-by-term on concrete values. The model
//     names arrive in the checker's canonical frame vocabulary
//     ("frame::root.fields", "#null" markers, "obj<N>.field" identities);
//     the narrator resolves them against the live frames and heap.
//
//   * render_ledger_html / render_capture_text — a self-contained HTML
//     failure report (no external assets; suitable for CI artifact upload)
//     and the terminal rendering behind `lisa explain`.
//
// Sits above lisa_obs in the layer graph (needs the interpreter and formula
// types), so it is its own library (lisa_explain) linked by the checker and
// the CLI — producers that only *record* evidence never see this header.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "minilang/ast.hpp"
#include "obs/provenance.hpp"
#include "smt/formula.hpp"

namespace lisa::obs {

/// What the narrator needs to reproduce one violated contract.
struct NarrationRequest {
  std::string contract_id;
  /// "state-predicate" (inject model, evaluate Q at the target),
  /// "structural-pattern" (watch for a blocking call under a held monitor),
  /// or "interleaving-sensitive" (watch for a lock-order cycle edge being
  /// exercised or an unguarded write to a guarded field).
  std::string kind;
  /// Canonical-text fragment identifying target statements (state-predicate).
  std::string target_fragment;
  /// Preferred target statement id from the violated path (-1 = any match).
  int target_stmt_id = -1;
  /// Contract Q in target-frame local names; null for structural contracts.
  smt::FormulaPtr contract;
  /// The violated path's satisfying model, in canonical model names.
  std::map<std::string, bool> model_bools;
  std::map<std::string, std::int64_t> model_ints;
  /// @test functions to replay, best candidates first (covering tests, then
  /// the rest). The narrator returns the first reproducing replay.
  std::vector<std::string> candidate_tests;
  /// Interleaving-sensitive contracts: lock-order cycle edges as (outer,
  /// inner) monitor names — the replay reproduces when a test acquires
  /// `inner` while `outer` is held — and/or a guarded field whose write
  /// with `guard_monitor` not held reproduces the race. Monitor names are
  /// matched modulo `fn::` namespace prefixes.
  std::vector<std::pair<std::string, std::string>> cycle_edges;
  std::string guarded_field;
  std::string guard_monitor;
};

/// Replays candidate tests until one concretely reproduces the violation;
/// falls back to the most informative non-reproducing narration otherwise.
/// Never throws: interpreter errors during a replay degrade that candidate.
[[nodiscard]] Narration narrate_counterexample(const minilang::Program& program,
                                               const NarrationRequest& request);

/// Terminal rendering of one contract's evidence chain (`lisa explain`).
[[nodiscard]] std::string render_capture_text(const ContractCapture& capture);

/// Self-contained HTML failure report over the whole ledger: run header,
/// one collapsible section per contract (verdict badge, screen outcome,
/// facts, paths with models, SMT queries, hits, budget, narration). Inline
/// CSS only — the file works as an offline CI artifact.
[[nodiscard]] std::string render_ledger_html(const ProvenanceLedger& ledger);

}  // namespace lisa::obs
