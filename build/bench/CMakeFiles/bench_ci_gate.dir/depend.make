# Empty dependencies file for bench_ci_gate.
# This may be replaced when dependencies are built.
