# Empty dependencies file for minilang_vm_test.
# This may be replaced when dependencies are built.
