file(REMOVE_RECURSE
  "CMakeFiles/smtlib_test.dir/smtlib_test.cpp.o"
  "CMakeFiles/smtlib_test.dir/smtlib_test.cpp.o.d"
  "smtlib_test"
  "smtlib_test.pdb"
  "smtlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
