// Tests for the expanded mini-system subsystems: HDFS replication, HBase
// region lifecycle / WAL / meta cache, Cassandra read repair & counters,
// ZooKeeper quotas & ACLs. Each mirrors one corpus case natively: the
// guarded path is safe, the unguarded path reproduces the incident symptom.
#include <gtest/gtest.h>

#include "systems/cassandra/read_repair.hpp"
#include "systems/hbase/regions.hpp"
#include "systems/hdfs/replication.hpp"
#include "systems/sim/event_loop.hpp"
#include "systems/zookeeper/quota_acl.hpp"

namespace lisa::systems {
namespace {

// ---------------------------------------------------------------------------
// HDFS replication (HDFS-D1/D2)
// ---------------------------------------------------------------------------

TEST(Replication, PlacesReplicationFactorReplicas) {
  EventLoop loop;
  hdfs::ReplicationManager manager(loop);
  for (const char* name : {"dn1", "dn2", "dn3", "dn4"}) manager.add_datanode(name);
  const auto chosen = manager.place_block(1);
  EXPECT_EQ(chosen.size(), 3u);
  EXPECT_EQ(manager.replica_counts().at(1), 3);
}

TEST(Replication, CheckedPlacementSkipsDecommissioning) {
  EventLoop loop;
  hdfs::ReplicationManager manager(loop);
  for (const char* name : {"dn1", "dn2", "dn3", "dn4"}) manager.add_datanode(name);
  manager.start_decommission("dn1");
  manager.place_block(1);
  EXPECT_EQ(manager.stats().placed_on_decommissioning, 0u);
  EXPECT_EQ(manager.datanode("dn1")->blocks.size(), 0u);
}

TEST(Replication, UncheckedSweepRepeatsTheIncident) {
  EventLoop loop;
  hdfs::ReplicationConfig config;
  config.check_on_sweep_path = false;  // the regression's coverage gap
  config.replication_factor = 3;
  hdfs::ReplicationManager manager(loop, config);
  for (const char* name : {"dn1", "dn2", "dn3"}) manager.add_datanode(name);
  manager.place_block(1);
  // dn3 dies; dn2 starts decommissioning. The sweep must re-replicate but
  // picks the decommissioning node because the check is missing.
  manager.start_decommission("dn2");
  loop.run_until(5000);
  manager.expire_dead_nodes();  // nobody heartbeated: all expire
  EXPECT_EQ(manager.stats().nodes_expired, 3u);
  manager.add_datanode("dn4");
  manager.start_decommission("dn4");
  manager.add_datanode("dn5");
  const std::size_t added = manager.replicate_under_replicated();
  EXPECT_GT(added, 0u);
  EXPECT_GT(manager.stats().placed_on_decommissioning, 0u);  // incident symptom
}

TEST(Replication, HeartbeatsKeepNodesAlive) {
  EventLoop loop;
  hdfs::ReplicationManager manager(loop);
  manager.add_datanode("dn1");
  loop.run_until(2000);
  manager.heartbeat("dn1");
  loop.run_until(4000);
  manager.expire_dead_nodes();
  EXPECT_EQ(manager.live_datanodes(), 1u);  // heartbeat at t=2000, timeout 3000
  loop.run_until(6000);
  manager.expire_dead_nodes();
  EXPECT_EQ(manager.live_datanodes(), 0u);
}

// ---------------------------------------------------------------------------
// HBase region lifecycle (HBASE-SP1/SP2, W1/W2, M1/M2)
// ---------------------------------------------------------------------------

TEST(Regions, SplitProducesDaughters) {
  EventLoop loop;
  hbase::RegionServer server(loop);
  server.add_region("r1");
  EXPECT_TRUE(server.request_split("r1"));
  EXPECT_EQ(server.region_count(), 2u);
}

TEST(Regions, GuardedSplitRejectedDuringCompaction) {
  EventLoop loop;
  hbase::RegionServer server(loop);
  server.add_region("r1");
  server.start_compaction("r1", 100);
  EXPECT_FALSE(server.request_split("r1"));
  EXPECT_EQ(server.stats().splits_rejected, 1u);
  loop.run_until(200);  // compaction ends
  EXPECT_TRUE(server.request_split("r1"));
}

TEST(Regions, UncheckedBalancerSplitLosesStoreFiles) {
  EventLoop loop;
  hbase::RegionGuards guards;
  guards.balancer_checks_compaction = false;  // the regression path
  hbase::RegionServer server(loop, guards);
  server.add_region("r1");
  server.start_compaction("r1", 100);
  EXPECT_TRUE(server.balancer_split("r1"));
  EXPECT_EQ(server.stats().splits_during_compaction, 1u);  // incident symptom
}

TEST(Regions, WalRollGuards) {
  EventLoop loop;
  hbase::RegionGuards guards;
  guards.timer_roll_checks_flush = false;
  hbase::RegionServer server(loop, guards);
  server.add_region("r1");
  server.start_flush("r1", 100);
  EXPECT_FALSE(server.request_wal_roll("r1"));  // manual path guarded
  EXPECT_TRUE(server.timer_wal_roll("r1"));     // timer path slips through
  EXPECT_EQ(server.stats().rolls_during_flush, 1u);
  loop.run_until(200);
  EXPECT_TRUE(server.request_wal_roll("r1"));
}

TEST(Regions, MetaCacheStaleRouting) {
  EventLoop loop;
  hbase::RegionGuards guards;
  guards.batch_routing_checks_stale = false;
  hbase::RegionServer server(loop, guards);
  server.add_region("r1");
  server.cache_location("row1", "r1");
  server.cache_location("row2", "r1");
  EXPECT_TRUE(server.route_get("row1"));
  server.invalidate("row1");
  server.invalidate("row2");
  // Guarded single-get refreshes instead of routing stale.
  EXPECT_FALSE(server.route_get("row1"));
  EXPECT_EQ(server.stats().refreshes, 1u);
  EXPECT_TRUE(server.route_get("row1"));  // now fresh
  // Unguarded batch routes through the stale entry.
  EXPECT_EQ(server.route_batch({"row2"}), 1u);
  EXPECT_EQ(server.stats().routed_stale, 1u);  // incident symptom
}

// ---------------------------------------------------------------------------
// Cassandra read repair + counters (CASS-R1/R2, C1/C2)
// ---------------------------------------------------------------------------

TEST(ReadRepair, PurgeableTombstoneSkippedWhenGuarded) {
  EventLoop loop;
  cassandra::ReplicaSet replicas(loop, /*gc_grace_ms=*/1000);
  replicas.write_row("k", "v");
  replicas.delete_row("k");
  EXPECT_FALSE(replicas.is_purgeable("k"));
  EXPECT_TRUE(replicas.read_repair("k"));  // within gc_grace: repairable
  loop.run_until(2000);
  EXPECT_TRUE(replicas.is_purgeable("k"));
  EXPECT_FALSE(replicas.read_repair("k"));
  EXPECT_EQ(replicas.stats().purgeable_repaired, 0u);
}

TEST(ReadRepair, UncheckedBackgroundRepairResurrects) {
  EventLoop loop;
  cassandra::RepairGuards guards;
  guards.background_checks_purgeable = false;
  cassandra::ReplicaSet replicas(loop, 1000, guards);
  replicas.write_row("k1", "v");
  replicas.delete_row("k1");
  replicas.write_row("k2", "live");
  loop.run_until(2000);
  EXPECT_EQ(replicas.background_repair(), 2u);
  EXPECT_EQ(replicas.stats().purgeable_repaired, 1u);  // incident symptom
}

TEST(Counters, BootstrapDoubleCountReproduced) {
  EventLoop loop;
  cassandra::RepairGuards guards;
  guards.batch_counter_checks_bootstrap = false;
  cassandra::ReplicaSet replicas(loop, 1000, guards);
  replicas.add_counter_node("n1", /*bootstrapping=*/true);
  // Guarded single write rejected; unguarded batch applies.
  EXPECT_FALSE(replicas.write_counter("n1", 5));
  EXPECT_EQ(replicas.write_counter_batch("n1", {3, 4}), 2u);
  EXPECT_EQ(replicas.stats().counters_on_bootstrap, 2u);
  replicas.finish_bootstrap("n1");
  // Streamed state merged on top: 7 became 14 — the double count.
  EXPECT_EQ(replicas.counter_value("n1"), 14);
}

TEST(Counters, NormalNodeCountsOnce) {
  EventLoop loop;
  cassandra::ReplicaSet replicas(loop, 1000);
  replicas.add_counter_node("n1", false);
  EXPECT_TRUE(replicas.write_counter("n1", 5));
  EXPECT_TRUE(replicas.write_counter("n1", 2));
  replicas.finish_bootstrap("n1");  // no-op on a normal node
  EXPECT_EQ(replicas.counter_value("n1"), 7);
}

// ---------------------------------------------------------------------------
// ZooKeeper quotas + ACLs (ZK-Q1/Q2, A1/A2)
// ---------------------------------------------------------------------------

TEST(Quota, GuardedCreateStopsAtLimit) {
  zk::QuotaTree tree(2);
  EXPECT_TRUE(tree.create_node("/q/a"));
  EXPECT_TRUE(tree.create_node("/q/b"));
  EXPECT_FALSE(tree.create_node("/q/c"));
  EXPECT_EQ(tree.node_count(), 2);
  EXPECT_FALSE(tree.over_quota());
}

TEST(Quota, UncheckedSequentialPathBypasses) {
  zk::QuotaGuards guards;
  guards.sequential_checks_quota = false;
  zk::QuotaTree tree(1, guards);
  EXPECT_TRUE(tree.create_node("/q/a"));
  EXPECT_FALSE(tree.create_node("/q/b"));
  EXPECT_NE(tree.create_sequential("/q/seq-"), "");  // slips past the quota
  EXPECT_TRUE(tree.over_quota());
  EXPECT_EQ(tree.stats().creates_over_quota, 1u);  // incident symptom
}

TEST(Acl, GuardedSetRejectsMalformed) {
  zk::AclManager manager;
  EXPECT_TRUE(manager.set_acl({"1", "digest"}));
  EXPECT_FALSE(manager.set_acl({"2", ""}));
  EXPECT_EQ(manager.installed_count(), 1u);
  EXPECT_FALSE(manager.is_exposed("1"));
}

TEST(Acl, UncheckedRestoreInstallsMalformed) {
  zk::AclGuards guards;
  guards.restore_path_validates = false;
  zk::AclManager manager(guards);
  const std::size_t installed =
      manager.restore_from_snapshot({{"1", "world"}, {"2", ""}});
  EXPECT_EQ(installed, 2u);
  EXPECT_TRUE(manager.is_exposed("2"));  // incident symptom: open access
  EXPECT_EQ(manager.stats().installed_unvalidated, 1u);
}

}  // namespace
}  // namespace lisa::systems
