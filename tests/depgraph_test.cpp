// Unit tests for src/staticcheck/depgraph: the post-dominator tree checked
// against a brute-force oracle, Ferrante–Ottenstein–Warren control
// dependence, reaching-definition / def-use soundness, and the dead-store
// reporter.
#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "minilang/sema.hpp"
#include "staticcheck/cfg.hpp"
#include "staticcheck/depgraph.hpp"
#include "staticcheck/summaries.hpp"

namespace lisa::staticcheck {
namespace {

using minilang::Program;

// ---------------------------------------------------------------------------
// Post-dominator tree vs brute force
// ---------------------------------------------------------------------------

/// Oracle: b post-dominates a iff every path a→exit passes through b, i.e.
/// (reflexively) a == b, or the exit is unreachable from a when b is removed.
bool brute_postdominates(const Cfg& cfg, int b, int a) {
  if (a == b) return true;
  std::set<int> visited{a, b};  // marking b visited removes it from the graph
  std::deque<int> worklist{a};
  while (!worklist.empty()) {
    const int node = worklist.front();
    worklist.pop_front();
    if (node == cfg.exit()) return false;
    for (const CfgEdge& edge : cfg.node(node).succs)
      if (visited.insert(edge.to).second) worklist.push_back(edge.to);
  }
  return true;
}

/// Exhaustively compares PostDomTree::postdominates against the oracle over
/// every pair of exit-reaching nodes.
void expect_postdoms_match_brute_force(const std::string& source) {
  const Program program = minilang::parse_checked(source);
  for (const minilang::FuncDecl& fn : program.functions) {
    const Cfg cfg = Cfg::build(fn);
    const PostDomTree pdoms = PostDomTree::build(cfg);
    // Restrict to nodes that can reach the exit: set-intersection post-
    // dominance is defined over them (a node that cannot reach the exit
    // vacuously "post-dominates" per the oracle but carries no verdict).
    std::set<int> reaches_exit{cfg.exit()};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const CfgNode& node : cfg.nodes())
        if (reaches_exit.count(node.id) == 0)
          for (const CfgEdge& edge : node.succs)
            if (reaches_exit.count(edge.to) > 0) {
              reaches_exit.insert(node.id);
              grew = true;
              break;
            }
    }
    for (const int a : reaches_exit)
      for (const int b : reaches_exit)
        EXPECT_EQ(pdoms.postdominates(b, a), brute_postdominates(cfg, b, a))
            << fn.name << ": does " << b << " postdominate " << a << "?";
  }
}

TEST(PostDomTree, MatchesBruteForceOnBranches) {
  expect_postdoms_match_brute_force(R"(
fn branchy(a: int, b: int) -> int {
  let r = 0;
  if (a > 0) {
    if (b > 0) {
      r = 1;
    } else {
      r = 2;
    }
  } else {
    r = 3;
  }
  return r;
}
)");
}

TEST(PostDomTree, MatchesBruteForceOnLoops) {
  expect_postdoms_match_brute_force(R"(
fn loopy(n: int) -> int {
  let i = 0;
  let acc = 0;
  while (i < n) {
    if (acc > 100) {
      acc = 0;
    }
    acc = acc + i;
    i = i + 1;
  }
  return acc;
}
)");
}

TEST(PostDomTree, MatchesBruteForceOnEarlyReturnsAndThrows) {
  expect_postdoms_match_brute_force(R"(
fn unwinding(n: int) -> int {
  if (n < 0) {
    throw "negative";
  }
  if (n == 0) {
    return 0;
  }
  let r = 0;
  try {
    if (n > 10) {
      throw "big";
    }
    r = n;
  } catch (e) {
    r = 10;
  }
  return r;
}
)");
}

TEST(PostDomTree, ControlDependenceFollowsBranches) {
  const Program program = minilang::parse_checked(R"(
fn f(a: int) -> int {
  let r = 0;
  if (a > 0) {
    r = 1;
  }
  return r;
}
)");
  const minilang::FuncDecl& fn = program.functions[0];
  const Cfg cfg = Cfg::build(fn);
  const PostDomTree pdoms = PostDomTree::build(cfg);
  int branch = -1, then_stmt = -1, return_stmt = -1;
  for (const CfgNode& node : cfg.nodes()) {
    if (node.kind == CfgNode::Kind::kBranch) branch = node.id;
    if (node.kind == CfgNode::Kind::kStmt && node.stmt != nullptr) {
      if (node.stmt->kind == minilang::Stmt::Kind::kAssign) then_stmt = node.id;
      if (node.stmt->kind == minilang::Stmt::Kind::kReturn) return_stmt = node.id;
    }
  }
  ASSERT_GE(branch, 0);
  ASSERT_GE(then_stmt, 0);
  ASSERT_GE(return_stmt, 0);
  // The guarded assignment is control-dependent on the branch; the return
  // after the join is not (it executes either way).
  const std::vector<int>& deps = pdoms.control_deps(then_stmt);
  EXPECT_NE(std::find(deps.begin(), deps.end(), branch), deps.end());
  EXPECT_TRUE(pdoms.control_deps(return_stmt).empty());
}

// ---------------------------------------------------------------------------
// Reaching definitions and def-use chains
// ---------------------------------------------------------------------------

const FuncDepGraph build_graph(const Program& program, const std::string& fn_name,
                               const SummaryMap* summaries) {
  const minilang::FuncDecl* fn = program.find_function(fn_name);
  EXPECT_NE(fn, nullptr) << fn_name;
  return FuncDepGraph::build(*fn, program, summaries);
}

/// The definitions feeding `node` (by use edges), as (kind, path) pairs.
std::set<std::pair<Definition::Kind, std::string>> defs_feeding(const FuncDepGraph& graph,
                                                                int node) {
  std::set<std::pair<Definition::Kind, std::string>> out;
  for (const std::size_t index : graph.use_defs[static_cast<std::size_t>(node)]) {
    const Definition& def = graph.defs[index];
    out.emplace(def.kind, def.path);
  }
  return out;
}

TEST(FuncDepGraph, BothBranchArmsReachTheJoinUse) {
  const Program program = minilang::parse_checked(R"(
fn f(a: int) -> int {
  let x = 1;
  if (a > 0) {
    x = 2;
  } else {
    x = 3;
  }
  return x;
}
)");
  const FuncDepGraph graph = build_graph(program, "f", nullptr);
  int return_node = -1;
  for (const CfgNode& node : graph.cfg.nodes())
    if (node.stmt != nullptr && node.stmt->kind == minilang::Stmt::Kind::kReturn)
      return_node = node.id;
  ASSERT_GE(return_node, 0);
  // Both assignments feed the return; the initial `let` is strongly killed
  // on every path.
  const auto feeding = defs_feeding(graph, return_node);
  EXPECT_EQ(feeding.count({Definition::Kind::kAssign, "x"}), 1u);
  EXPECT_EQ(feeding.count({Definition::Kind::kLet, "x"}), 0u);
  std::size_t assigns = 0;
  for (const std::size_t index : graph.use_defs[static_cast<std::size_t>(return_node)])
    if (graph.defs[index].kind == Definition::Kind::kAssign) ++assigns;
  EXPECT_EQ(assigns, 2u);
}

TEST(FuncDepGraph, FieldWritesAreWeakUpdates) {
  const Program program = minilang::parse_checked(R"(
struct Box { v: int; }
fn f(a: Box, b: Box, flag: bool) -> int {
  a.v = 1;
  if (flag) {
    b.v = 2;
  }
  return a.v;
}
)");
  const FuncDepGraph graph = build_graph(program, "f", nullptr);
  int return_node = -1;
  for (const CfgNode& node : graph.cfg.nodes())
    if (node.stmt != nullptr && node.stmt->kind == minilang::Stmt::Kind::kReturn)
      return_node = node.id;
  ASSERT_GE(return_node, 0);
  // `b.v = 2` may alias `a.v` (same field name, no points-to), so both
  // field writes and the parameter binding must reach the read of a.v.
  const auto feeding = defs_feeding(graph, return_node);
  EXPECT_EQ(feeding.count({Definition::Kind::kAssign, "a.v"}), 1u);
  EXPECT_EQ(feeding.count({Definition::Kind::kAssign, "b.v"}), 1u);
  EXPECT_EQ(feeding.count({Definition::Kind::kParam, "a"}), 1u);
}

TEST(FuncDepGraph, CallsHavocWithoutSummariesAndDegrade) {
  const Program program = minilang::parse_checked(R"(
struct Box { v: int; }
fn poke(b: Box) {
  b.v = 7;
}
fn f(a: Box) -> int {
  a.v = 1;
  poke(a);
  return a.v;
}
)");
  const FuncDepGraph without = build_graph(program, "f", nullptr);
  EXPECT_TRUE(without.degraded);
  bool saw_havoc = false;
  for (const Definition& def : without.defs)
    if (def.kind == Definition::Kind::kCallMod && def.path == "*") saw_havoc = true;
  EXPECT_TRUE(saw_havoc);

  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  const SummaryMap summaries = SummaryMap::compute(program, graph);
  const FuncDepGraph with = build_graph(program, "f", &summaries);
  EXPECT_FALSE(with.degraded);
  // With summaries the call contributes a field-level MOD effect, not "*".
  bool saw_field_mod = false;
  for (const Definition& def : with.defs)
    if (def.kind == Definition::Kind::kCallMod &&
        path_mentions_field(def.path, "v"))
      saw_field_mod = true;
  EXPECT_TRUE(saw_field_mod);
}

TEST(FuncDepGraph, MayWriteWildcardRules) {
  Definition havoc;
  havoc.path = "*";
  EXPECT_TRUE(havoc.may_write("s.closed"));
  EXPECT_FALSE(havoc.may_write("local"));  // locals survive callee havoc

  Definition field_mod;
  field_mod.path = "*.closed";
  EXPECT_TRUE(field_mod.may_write("s.closed"));
  EXPECT_FALSE(field_mod.may_write("s.open"));

  Definition through_arg;
  through_arg.path = "p.*";
  EXPECT_TRUE(through_arg.may_write("p.closed"));
  EXPECT_FALSE(through_arg.may_write("q.closed"));
}

// ---------------------------------------------------------------------------
// Dead-store / unused-definition reporting
// ---------------------------------------------------------------------------

TEST(FuncDepGraph, ReportsDeadStoresAndUnusedLets) {
  const Program program = minilang::parse_checked(R"(
fn f(a: int) -> int {
  let unused = a + 1;
  let x = a;
  x = 1;
  x = 2;
  return x;
}
)");
  const FuncDepGraph graph = build_graph(program, "f", nullptr);
  std::vector<Diagnostic> diagnostics;
  report_dead_defs(graph, diagnostics);
  bool saw_unused = false, saw_dead = false;
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.analysis == "unused-def") saw_unused = true;
    if (diagnostic.analysis == "dead-store") saw_dead = true;
  }
  EXPECT_TRUE(saw_unused) << "no unused-definition finding for `unused`";
  EXPECT_TRUE(saw_dead) << "no dead-store finding for `x = 1`";
}

TEST(FuncDepGraph, LiveDefinitionsAreNotReported) {
  const Program program = minilang::parse_checked(R"(
fn f(a: int) -> int {
  let x = a;
  let y = x + 1;
  return y;
}
)");
  const FuncDepGraph graph = build_graph(program, "f", nullptr);
  std::vector<Diagnostic> diagnostics;
  report_dead_defs(graph, diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

}  // namespace
}  // namespace lisa::staticcheck
