#include "systems/hbase/snapshots.hpp"

namespace lisa::systems::hbase {

void SnapshotStore::create_snapshot(const std::string& name, std::int64_t ttl_ms,
                                    std::vector<std::string> rows) {
  snapshots_[name] = Snapshot{loop_.now(), ttl_ms, std::move(rows)};
}

bool SnapshotStore::is_expired(const std::string& name) const {
  const auto it = snapshots_.find(name);
  if (it == snapshots_.end()) return false;
  if (it->second.ttl_ms == 0) return false;
  return loop_.now() >= it->second.created_ms + it->second.ttl_ms;
}

SnapshotStatus SnapshotStore::serve(const std::string& name, bool check_expiration) {
  const auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    ++stats_.not_found;
    return SnapshotStatus::kNotFound;
  }
  if (is_expired(name)) {
    if (check_expiration) {
      ++stats_.expired_rejected;
      return SnapshotStatus::kExpired;
    }
    // Unchecked path: stale snapshot data goes out without any alarm.
    ++stats_.expired_served;
  }
  ++stats_.served_ok;
  return SnapshotStatus::kOk;
}

SnapshotStatus SnapshotStore::restore(const std::string& name) {
  return serve(name, coverage_.restore);
}

SnapshotStatus SnapshotStore::export_snapshot(const std::string& name) {
  return serve(name, coverage_.export_op);
}

std::pair<SnapshotStatus, std::vector<std::string>> SnapshotStore::scan(
    const std::string& name) {
  const SnapshotStatus status = serve(name, coverage_.scan);
  if (status != SnapshotStatus::kOk) return {status, {}};
  return {status, snapshots_.at(name).rows};
}

}  // namespace lisa::systems::hbase
