// HBase incident cases.
//
// Case 1 models HBASE-27671 → HBASE-28704 → HBASE-29296: expired snapshots
// must never be served. The "latest" version reproduces §4 Bug #1 — the
// snapshot-scan path added later is missing the expiration check, and LISA
// flags it (the fix was accepted by HBase developers in the paper).
#include "corpus/ticket.hpp"

namespace lisa::corpus {
namespace {

// ---------------------------------------------------------------------------
// Case 1: expired snapshot served to clients.
// ---------------------------------------------------------------------------

constexpr const char* kHbaseSnapshotCommon = R"ml(
struct Snapshot { name: string; is_expired: bool; ttl_sec: int; reads: int; }
struct SnapshotManager { snapshots: map<string, Snapshot>; served: int; }

fn new_snapshot_manager() -> SnapshotManager {
  return new SnapshotManager {};
}

fn add_snapshot(mgr: SnapshotManager, name: string, expired: bool) {
  put(mgr.snapshots, name, new Snapshot { name: name, is_expired: expired,
                                          ttl_sec: 86400, reads: 0 });
}

fn serve_snapshot(mgr: SnapshotManager, snap: Snapshot) {
  snap.reads = snap.reads + 1;
  mgr.served = mgr.served + 1;
}
)ml";

constexpr const char* kHbaseSnapshotTests = R"ml(
@test
fn test_restore_live_snapshot() {
  let mgr = new_snapshot_manager();
  add_snapshot(mgr, "daily-1", false);
  restore_snapshot(mgr, "daily-1");
  assert(mgr.served == 1, "snapshot served");
}

@test
fn test_restore_missing_snapshot_raises() {
  let mgr = new_snapshot_manager();
  let failed = false;
  try {
    restore_snapshot(mgr, "none");
  } catch (e) {
    failed = true;
  }
  assert(failed, "missing snapshot raises");
}

@test
fn test_export_live_snapshot() {
  let mgr = new_snapshot_manager();
  add_snapshot(mgr, "daily-2", false);
  export_snapshot(mgr, "daily-2");
  assert(mgr.served == 1, "snapshot exported");
}
)ml";

FailureTicket hbase_snapshot_case() {
  FailureTicket ticket;
  ticket.case_id = "hbase-27671-snapshot-ttl";
  ticket.system = "hbase";
  ticket.feature = "snapshot TTL";
  ticket.title = "Client can restore a snapshot after its TTL has expired";
  ticket.description =
      "Snapshots carry a TTL after which their data is stale and must not be "
      "served, but the restore/clone path never consulted the expiration "
      "flag: users restored day-old snapshots and silently read stale rows "
      "without any alarm. Developer discussion: an expired snapshot must "
      "never be served to a client — every path that serves snapshot data "
      "has to check is_expired first. Fix adds the expiration check on the "
      "restore path.";

  const std::string buggy_ops = R"ml(
@entry
fn restore_snapshot(mgr: SnapshotManager, name: string) {
  let snap = get(mgr.snapshots, name);
  if (snap == null) {
    throw "SnapshotDoesNotExistException";
  }
  serve_snapshot(mgr, snap);
}

@entry
fn export_snapshot(mgr: SnapshotManager, name: string) {
  let snap = get(mgr.snapshots, name);
  if (snap == null) {
    throw "SnapshotDoesNotExistException";
  }
  serve_snapshot(mgr, snap);
}
)ml";

  const std::string patched_ops = R"ml(
@entry
fn restore_snapshot(mgr: SnapshotManager, name: string) {
  let snap = get(mgr.snapshots, name);
  if (snap == null) {
    throw "SnapshotDoesNotExistException";
  }
  if (snap.is_expired) {
    throw "SnapshotTTLExpiredException";
  }
  serve_snapshot(mgr, snap);
}

@entry
fn export_snapshot(mgr: SnapshotManager, name: string) {
  let snap = get(mgr.snapshots, name);
  if (snap == null) {
    throw "SnapshotDoesNotExistException";
  }
  serve_snapshot(mgr, snap);
}
)ml";

  // Latest release (5dafa9e analog): restore and export both carry the check
  // after HBASE-27671 and HBASE-28704, but the snapshot-scan path added for
  // the read-replica feature does not — §4 Bug #1 (HBASE-29296 analog).
  const std::string latest_ops = R"ml(
@entry
fn restore_snapshot(mgr: SnapshotManager, name: string) {
  let snap = get(mgr.snapshots, name);
  if (snap == null) {
    throw "SnapshotDoesNotExistException";
  }
  if (snap.is_expired) {
    throw "SnapshotTTLExpiredException";
  }
  serve_snapshot(mgr, snap);
}

@entry
fn export_snapshot(mgr: SnapshotManager, name: string) {
  let snap = get(mgr.snapshots, name);
  if (snap == null) {
    throw "SnapshotDoesNotExistException";
  }
  if (snap.is_expired) {
    throw "SnapshotTTLExpiredException";
  }
  serve_snapshot(mgr, snap);
}

@entry
fn scan_snapshot(mgr: SnapshotManager, name: string, start_row: string) {
  let snap = get(mgr.snapshots, name);
  if (snap == null) {
    throw "SnapshotDoesNotExistException";
  }
  serve_snapshot(mgr, snap);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hbase27671_expired_restore_rejected() {
  let mgr = new_snapshot_manager();
  add_snapshot(mgr, "old-1", true);
  let rejected = false;
  try {
    restore_snapshot(mgr, "old-1");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "expired snapshot rejected");
  assert(mgr.served == 0, "nothing served");
}
)ml";

  const std::string latest_tests = R"ml(
@test
fn test_scan_snapshot_serves_rows() {
  let mgr = new_snapshot_manager();
  add_snapshot(mgr, "daily-3", false);
  scan_snapshot(mgr, "daily-3", "row-0");
  assert(mgr.served == 1, "scan served");
}
)ml";

  ticket.buggy_source = std::string(kHbaseSnapshotCommon) + buggy_ops + kHbaseSnapshotTests;
  ticket.patched_source =
      std::string(kHbaseSnapshotCommon) + patched_ops + kHbaseSnapshotTests + regression_test;
  ticket.latest_source = std::string(kHbaseSnapshotCommon) + latest_ops + kHbaseSnapshotTests +
                         regression_test + latest_tests;
  ticket.regression_tests = {"test_hbase27671_expired_restore_rejected"};
  ticket.original = {"HBASE-27671", "2023-02-27",
                     "Client restores/clones a snapshot whose TTL has expired"};
  ticket.regressions = {{"HBASE-28704", "2024-06-27",
                         "Expired snapshot readable via copytable/exportsnapshot; the "
                         "restore-path fix did not cover export"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "serve_snapshot(";
  ticket.expected_condition = "!(snap == null) && !(snap.is_expired)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 2: region split started while compaction is running.
// ---------------------------------------------------------------------------

constexpr const char* kHbaseSplitCommon = R"ml(
struct Region { name: string; compacting: bool; splits: int; online: bool; }
struct RegionServer { regions: map<string, Region>; }

fn new_region_server() -> RegionServer {
  return new RegionServer {};
}

fn add_region(rs: RegionServer, name: string, compacting: bool) {
  put(rs.regions, name, new Region { name: name, compacting: compacting,
                                     splits: 0, online: true });
}

fn execute_split(r: Region) {
  r.splits = r.splits + 1;
  r.online = false;
}

// Balancer-initiated splits: the second trigger path.
@entry
fn split_for_balancer(rs: RegionServer, name: string) {
  let r = get(rs.regions, name);
  if (r == null) {
    return;
  }
  execute_split(r);
}
)ml";

constexpr const char* kHbaseSplitTests = R"ml(
@test
fn test_split_idle_region() {
  let rs = new_region_server();
  add_region(rs, "r1", false);
  request_split(rs, "r1");
  let r = get(rs.regions, "r1");
  assert(r.splits == 1, "split executed");
}

@test
fn test_balancer_split_runs() {
  let rs = new_region_server();
  add_region(rs, "r2", false);
  split_for_balancer(rs, "r2");
  let r = get(rs.regions, "r2");
  assert(r.splits == 1, "balancer split executed");
}
)ml";

FailureTicket hbase_split_case() {
  FailureTicket ticket;
  ticket.case_id = "hbase-split-during-compaction";
  ticket.system = "hbase";
  ticket.feature = "region lifecycle";
  ticket.title = "Region split during compaction loses store files";
  ticket.description =
      "A split executed while a major compaction was rewriting store files; "
      "the daughter regions referenced files the compaction deleted, and the "
      "region went permanently offline. Developer discussion: a region must "
      "not split while compacting — the compacting flag has to be checked "
      "before execute_split. Fix rejects client split requests during "
      "compaction.";

  const std::string buggy_split = R"ml(
@entry
fn request_split(rs: RegionServer, name: string) {
  let r = get(rs.regions, name);
  if (r == null) {
    return;
  }
  execute_split(r);
}
)ml";

  const std::string patched_split = R"ml(
@entry
fn request_split(rs: RegionServer, name: string) {
  let r = get(rs.regions, name);
  if (r == null) {
    return;
  }
  if (r.compacting) {
    throw "RegionBusyException";
  }
  execute_split(r);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hbasesplit_rejected_during_compaction() {
  let rs = new_region_server();
  add_region(rs, "r3", true);
  let rejected = false;
  try {
    request_split(rs, "r3");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "split rejected during compaction");
  let r = get(rs.regions, "r3");
  assert(r.splits == 0, "no split ran");
}
)ml";

  ticket.buggy_source = std::string(kHbaseSplitCommon) + buggy_split + kHbaseSplitTests;
  ticket.patched_source =
      std::string(kHbaseSplitCommon) + patched_split + kHbaseSplitTests + regression_test;
  ticket.regression_tests = {"test_hbasesplit_rejected_during_compaction"};
  ticket.original = {"HBASE-SP1", "2016-10-05",
                     "Daughter regions referenced compacted-away files; region offline"};
  ticket.regressions = {{"HBASE-SP2", "2017-08-17",
                         "Balancer-initiated split bypasses the compaction check"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "execute_split(";
  ticket.expected_condition = "!(r == null) && !(r.compacting)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 3: request routed through a stale meta-cache entry.
// ---------------------------------------------------------------------------

constexpr const char* kHbaseMetaCommon = R"ml(
struct CacheEntry { region: string; server: string; stale: bool; hits: int; }
struct MetaCache { entries: map<string, CacheEntry>; routed: int; }

fn new_meta_cache() -> MetaCache {
  return new MetaCache {};
}

fn cache_region(cache: MetaCache, row: string, region: string, server: string, stale: bool) {
  put(cache.entries, row, new CacheEntry { region: region, server: server,
                                           stale: stale, hits: 0 });
}

fn route_to_region(cache: MetaCache, entry: CacheEntry) {
  entry.hits = entry.hits + 1;
  cache.routed = cache.routed + 1;
}

fn refresh_entry(cache: MetaCache, row: string) {
  let entry = get(cache.entries, row);
  if (entry != null) {
    entry.stale = false;
  }
}

// Batched multi-get routing: the second lookup path.
@entry
fn route_batch(cache: MetaCache, rows: list<string>) {
  let i = 0;
  while (i < len(rows)) {
    let entry = get(cache.entries, rows[i]);
    if (entry != null) {
      route_to_region(cache, entry);
    }
    i = i + 1;
  }
}
)ml";

constexpr const char* kHbaseMetaTests = R"ml(
@test
fn test_route_fresh_entry() {
  let cache = new_meta_cache();
  cache_region(cache, "row1", "r1", "rs1", false);
  route_request(cache, "row1");
  assert(cache.routed == 1, "routed");
}

@test
fn test_route_batch_routes_all() {
  let cache = new_meta_cache();
  cache_region(cache, "row2", "r1", "rs1", false);
  cache_region(cache, "row3", "r2", "rs2", false);
  let rows = list_new();
  push(rows, "row2");
  push(rows, "row3");
  route_batch(cache, rows);
  assert(cache.routed == 2, "both routed");
}
)ml";

FailureTicket hbase_meta_case() {
  FailureTicket ticket;
  ticket.case_id = "hbase-stale-meta-cache";
  ticket.system = "hbase";
  ticket.feature = "meta cache / request routing";
  ticket.title = "Requests routed via stale meta cache after region move";
  ticket.description =
      "After a region moved, clients kept routing requests through the stale "
      "cache entry to the old region server, which answered with "
      "NotServingRegionException storms and long retry loops. Developer "
      "discussion: a request must only be routed through a cache entry that "
      "is not stale; stale entries must be refreshed first. Fix checks the "
      "stale flag on the single-get routing path.";

  const std::string buggy_route = R"ml(
@entry
fn route_request(cache: MetaCache, row: string) {
  let entry = get(cache.entries, row);
  if (entry == null) {
    throw "NoCacheEntryException";
  }
  route_to_region(cache, entry);
}
)ml";

  const std::string patched_route = R"ml(
@entry
fn route_request(cache: MetaCache, row: string) {
  let entry = get(cache.entries, row);
  if (entry == null) {
    throw "NoCacheEntryException";
  }
  if (entry.stale == false) {
    route_to_region(cache, entry);
  } else {
    refresh_entry(cache, row);
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hbasemeta_stale_entry_not_routed() {
  let cache = new_meta_cache();
  cache_region(cache, "row4", "r1", "rs-old", true);
  route_request(cache, "row4");
  assert(cache.routed == 0, "stale entry not routed");
  let entry = get(cache.entries, "row4");
  assert(entry.stale == false, "entry refreshed");
}
)ml";

  ticket.buggy_source = std::string(kHbaseMetaCommon) + buggy_route + kHbaseMetaTests;
  ticket.patched_source =
      std::string(kHbaseMetaCommon) + patched_route + kHbaseMetaTests + regression_test;
  ticket.regression_tests = {"test_hbasemeta_stale_entry_not_routed"};
  ticket.original = {"HBASE-M1", "2019-12-02",
                     "NotServingRegionException storm via stale cache entries"};
  ticket.regressions = {{"HBASE-M2", "2020-10-26",
                         "Batched multi-get path routes through stale entries; single-get "
                         "fix did not cover it"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "route_to_region(";
  ticket.expected_condition = "!(entry == null) && entry.stale == false";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 4: WAL rolled while a region flush is in progress.
// ---------------------------------------------------------------------------

constexpr const char* kHbaseWalCommon = R"ml(
struct Wal { rolls: int; active_writers: int; }
struct FlushRegion { name: string; flushing: bool; wal: Wal; }

fn new_flush_region(name: string, flushing: bool) -> FlushRegion {
  return new FlushRegion { name: name, flushing: flushing, wal: new Wal {} };
}

fn roll_wal_now(w: Wal) {
  w.rolls = w.rolls + 1;
}

// Periodic size-triggered roll: the second trigger path.
@entry
fn periodic_roll(region: FlushRegion) {
  let w = region.wal;
  roll_wal_now(w);
}
)ml";

constexpr const char* kHbaseWalTests = R"ml(
@test
fn test_manual_roll_idle_region() {
  let region = new_flush_region("r1", false);
  request_wal_roll(region);
  assert(region.wal.rolls == 1, "rolled");
}

@test
fn test_periodic_roll_runs() {
  let region = new_flush_region("r2", false);
  periodic_roll(region);
  assert(region.wal.rolls == 1, "periodic rolled");
}
)ml";

FailureTicket hbase_wal_case() {
  FailureTicket ticket;
  ticket.case_id = "hbase-wal-roll-during-flush";
  ticket.system = "hbase";
  ticket.feature = "write-ahead log";
  ticket.title = "WAL rolled mid-flush drops edits on recovery";
  ticket.description =
      "A WAL roll during an in-progress memstore flush archived the segment "
      "containing edits the flush had not yet persisted; after a crash, "
      "recovery replayed from the new segment and the edits were lost. "
      "Developer discussion: the WAL must not roll while the region is "
      "flushing. Fix rejects manual roll requests during a flush.";

  const std::string buggy_roll = R"ml(
@entry
fn request_wal_roll(region: FlushRegion) {
  let w = region.wal;
  roll_wal_now(w);
}
)ml";

  const std::string patched_roll = R"ml(
@entry
fn request_wal_roll(region: FlushRegion) {
  let w = region.wal;
  if (region.flushing) {
    throw "FlushInProgressException";
  }
  roll_wal_now(w);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hbasewal_roll_rejected_during_flush() {
  let region = new_flush_region("r3", true);
  let rejected = false;
  try {
    request_wal_roll(region);
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "roll rejected during flush");
  assert(region.wal.rolls == 0, "no roll ran");
}
)ml";

  ticket.buggy_source = std::string(kHbaseWalCommon) + buggy_roll + kHbaseWalTests;
  ticket.patched_source =
      std::string(kHbaseWalCommon) + patched_roll + kHbaseWalTests + regression_test;
  ticket.regression_tests = {"test_hbasewal_roll_rejected_during_flush"};
  ticket.original = {"HBASE-W1", "2021-03-18", "Edits lost after WAL rolled mid-flush"};
  ticket.regressions = {{"HBASE-W2", "2022-02-07",
                         "Periodic size-triggered roll fires during flush; manual-roll fix "
                         "did not cover the timer path"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "roll_wal_now(";
  ticket.expected_condition = "!(region.flushing)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 5: flush enqueues under the region monitor while the drain thread
// updates regions under the queue monitor — an interprocedural inversion.
// ---------------------------------------------------------------------------

constexpr const char* kHbaseFlushLockCommon = R"ml(
struct Region { name: string; dirty: int; flushes: int; }
struct FlushQueue { depth: int; drained: int; }

fn new_region(name: string) -> Region {
  return new Region { name: name, dirty: 0, flushes: 0 };
}

fn new_flush_queue() -> FlushQueue {
  return new FlushQueue { depth: 0, drained: 0 };
}

fn enqueue_flush(queue: FlushQueue) {
  sync (queue) {
    queue.depth = queue.depth + 1;
  }
}

fn update_region(region: Region) {
  sync (region) {
    region.dirty = 0;
  }
}

// The drain thread walks the queue under its monitor and pushes results
// back into each region.
@entry
fn drain_queue(queue: FlushQueue, region: Region) {
  sync (queue) {
    queue.drained = queue.drained + queue.depth;
    queue.depth = 0;
    update_region(region);
  }
}
)ml";

constexpr const char* kHbaseFlushLockTests = R"ml(
@test
fn test_flush_clears_dirty_cells() {
  let region = new_region("r1");
  let queue = new_flush_queue();
  region.dirty = 4;
  flush_region(region, queue);
  assert(region.dirty == 0, "flushed");
  assert(queue.depth == 1, "flush queued");
}

@test
fn test_drain_applies_queued_flushes() {
  let region = new_region("r2");
  let queue = new_flush_queue();
  flush_region(region, queue);
  drain_queue(queue, region);
  assert(queue.depth == 0, "queue drained");
  assert(queue.drained == 1, "drain counted");
}
)ml";

FailureTicket hbase_flush_lock_case() {
  FailureTicket ticket;
  ticket.case_id = "hbase-flush-deadlock";
  ticket.system = "hbase";
  ticket.feature = "memstore flush";
  ticket.title = "Region server wedges: flush and drain threads deadlock across two monitors";
  ticket.description =
      "A region server stopped serving writes: the flush handler held the "
      "region monitor and called into the flush queue, while the drain thread "
      "held the queue monitor and called back into the region — a lock order "
      "inversion hidden across two call layers, producing a deadlock that a "
      "restart was the only way out of. Developer discussion: the region "
      "monitor must be released before touching the queue. Fix moves the "
      "enqueue call out of the region critical section in flush_region.";

  const std::string buggy_flush = R"ml(
@entry
fn flush_region(region: Region, queue: FlushQueue) {
  sync (region) {
    region.dirty = 0;
    region.flushes = region.flushes + 1;
    enqueue_flush(queue);
  }
}
)ml";

  const std::string patched_flush = R"ml(
@entry
fn flush_region(region: Region, queue: FlushQueue) {
  sync (region) {
    region.dirty = 0;
    region.flushes = region.flushes + 1;
  }
  enqueue_flush(queue);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hbflush_enqueue_outside_region_monitor() {
  let region = new_region("r3");
  let queue = new_flush_queue();
  flush_region(region, queue);
  flush_region(region, queue);
  assert(region.flushes == 2, "both flushes recorded");
  assert(queue.depth == 2, "each flush queued exactly once");
}
)ml";

  ticket.buggy_source = std::string(kHbaseFlushLockCommon) + buggy_flush + kHbaseFlushLockTests;
  ticket.patched_source =
      std::string(kHbaseFlushLockCommon) + patched_flush + kHbaseFlushLockTests + regression_test;
  ticket.regression_tests = {"test_hbflush_enqueue_outside_region_monitor"};
  ticket.original = {"HBASE-F1", "2020-05-11",
                     "Region server deadlocks between flush handler and queue drain thread"};
  ticket.regressions = {{"HBASE-F2", "2021-08-30",
                         "Compaction-triggered flush path reacquires the region monitor "
                         "around the enqueue, reviving the inversion"}};
  ticket.kind = SemanticsKind::kInterleavingSensitive;
  ticket.expected_target = "sync (";
  ticket.expected_condition = "lock_order_acyclic";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 6: region operation counter loses concurrent increments.
// ---------------------------------------------------------------------------

constexpr const char* kHbaseCounterCommon = R"ml(
struct RegionCounter { value: int; }

fn new_region_counter() -> RegionCounter {
  return new RegionCounter { value: 0 };
}
)ml";

constexpr const char* kHbaseCounterTests = R"ml(
@test
fn test_single_increment_lands() {
  let c = new_region_counter();
  bump_counter(c);
  assert(c.value == 1, "increment applied");
}

@test
fn test_concurrent_increments_all_land() {
  let c = new_region_counter();
  spawn bump_counter(c);
  spawn bump_counter(c);
  join_all();
  assert(c.value == 2, "no increment lost");
}
)ml";

FailureTicket hbase_counter_case() {
  FailureTicket ticket;
  ticket.case_id = "hbase-counter-race";
  ticket.system = "hbase";
  ticket.feature = "region metrics";
  ticket.title = "Region operation counter drops updates under concurrent increments";
  ticket.description =
      "The per-region operation counter was incremented with a plain "
      "read-modify-write: two handler threads read the same value, both "
      "added one, and one update was lost, so the reported request count "
      "drifted below the real load and quota decisions ran on stale "
      "numbers. The lost update only appears when two increments "
      "interleave — every single-threaded run passes. Developer "
      "discussion: the read-modify-write must be atomic. Fix performs the "
      "increment inside the counter monitor.";

  const std::string buggy_bump = R"ml(
@entry
fn bump_counter(c: RegionCounter) {
  let v = c.value;
  c.value = v + 1;
}
)ml";

  const std::string patched_bump = R"ml(
@entry
fn bump_counter(c: RegionCounter) {
  sync (c) {
    let v = c.value;
    c.value = v + 1;
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hbasecounter_triple_concurrent_bumps() {
  let c = new_region_counter();
  spawn bump_counter(c);
  spawn bump_counter(c);
  spawn bump_counter(c);
  join_all();
  assert(c.value == 3, "every concurrent increment kept");
}
)ml";

  ticket.buggy_source = std::string(kHbaseCounterCommon) + buggy_bump + kHbaseCounterTests;
  ticket.patched_source =
      std::string(kHbaseCounterCommon) + patched_bump + kHbaseCounterTests + regression_test;
  ticket.regression_tests = {"test_hbasecounter_triple_concurrent_bumps"};
  ticket.original = {"HBASE-C1", "2013-03-18",
                     "Region request counter loses concurrent increments; metrics under-report"};
  ticket.regressions = {{"HBASE-C2", "2015-12-04",
                         "Bulk-load path increments the counter outside the monitor; "
                         "single-increment fix missed it"}};
  ticket.kind = SemanticsKind::kInterleavingSensitive;
  ticket.expected_target = "value";
  ticket.expected_condition = "atomic(c)";
  return ticket;
}

}  // namespace

std::vector<FailureTicket> hbase_cases() {
  return {hbase_snapshot_case(), hbase_split_case(),      hbase_meta_case(),
          hbase_wal_case(),      hbase_flush_lock_case(), hbase_counter_case()};
}

}  // namespace lisa::corpus
