#!/usr/bin/env bash
# Tier-2 benchmark snapshot: runs the pipeline-level benchmarks and a
# corpus-wide checking pass, then writes one sequenced BENCH_<n>.json
# capturing wall-clock per bench plus the corpus settled fraction and
# verdict counts. Snapshots are append-only — compare two files to see a
# regression, delete none.
#
# Usage: scripts/bench_snapshot.sh
#   BUILD_DIR=build      build tree holding the bench binaries
#   OUT_DIR=bench/snapshots   where BENCH_<n>.json lands
#   HISTORY=<file>       run-history JSONL (obs/history.hpp format) to append
#                        one kind="bench" record to (default
#                        $OUT_DIR/history.jsonl; HISTORY="" disables)
#   FAST=1               cut benchmark min-time for a smoke-speed snapshot
#   BENCHES="a b"        override the bench binary list
#
# Each snapshot is stamped with the git SHA/branch/dirty state it measured,
# so a regression found by `lisa trends` can name the commit that caused it.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${OUT_DIR:-bench/snapshots}
BENCHES=${BENCHES:-"bench_fig5_pipeline bench_static_screening bench_ci_gate bench_smt_solver bench_vm_throughput bench_incremental"}

if [[ ! -x "$BUILD_DIR/tools/lisa" ]]; then
  echo "bench_snapshot: $BUILD_DIR/tools/lisa not built (run cmake --build $BUILD_DIR)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

extra_flags=()
if [[ "${FAST:-0}" == "1" ]]; then
  extra_flags+=(--benchmark_min_time=0.01)
fi

ran=()
for bench in $BENCHES; do
  binary="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$binary" ]]; then
    echo "bench_snapshot: skipping $bench (not built)" >&2
    continue
  fi
  echo "bench_snapshot: running $bench..." >&2
  # --benchmark_out keeps the JSON clean of the benches' own stdout tables.
  "$binary" --benchmark_out="$tmp/$bench.json" --benchmark_out_format=json \
    "${extra_flags[@]}" > "$tmp/$bench.log" 2>&1 || {
    echo "bench_snapshot: $bench failed:" >&2
    cat "$tmp/$bench.log" >&2
    exit 1
  }
  ran+=("$bench")
done

# Corpus-wide verdict accounting: one checking pass over every case, read
# off the metrics registry (screen.* for the settled fraction, checker.*
# for path verdict counts).
echo "bench_snapshot: running corpus pass..." >&2
"$BUILD_DIR/tools/lisa" profile all --json > "$tmp/corpus.json"

# Provenance stamp: which commit these numbers measure. Degrades to
# "unknown" outside a git checkout rather than failing the snapshot.
GIT_SHA=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
GIT_BRANCH=$(git rev-parse --abbrev-ref HEAD 2>/dev/null || echo unknown)
GIT_DIRTY=false
if [[ "$GIT_SHA" != unknown ]] && ! git diff --quiet HEAD 2>/dev/null; then
  GIT_DIRTY=true
fi

# Next sequence number (BENCH_1.json, BENCH_2.json, ...).
n=1
while [[ -e "$OUT_DIR/BENCH_$n.json" ]]; do n=$((n + 1)); done
out="$OUT_DIR/BENCH_$n.json"

HISTORY=${HISTORY-"$OUT_DIR/history.jsonl"}

TMP="$tmp" OUT="$out" RAN="${ran[*]}" HISTORY="$HISTORY" \
  GIT_SHA="$GIT_SHA" GIT_BRANCH="$GIT_BRANCH" GIT_DIRTY="$GIT_DIRTY" python3 - <<'PY'
import json, os, time

tmp, out = os.environ["TMP"], os.environ["OUT"]
snapshot = {
    "schema": "lisa-bench-snapshot",
    "version": 1,
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    "git": {
        "sha": os.environ["GIT_SHA"],
        "branch": os.environ["GIT_BRANCH"],
        "dirty": os.environ["GIT_DIRTY"] == "true",
    },
    "benches": {},
    "corpus": {},
}

for bench in os.environ["RAN"].split():
    with open(f"{tmp}/{bench}.json") as f:
        report = json.load(f)
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        record = {"wall_ms": entry["real_time"] * {
            "ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[entry.get("time_unit", "ns")]}
        for key, value in entry.items():
            if key in ("name", "run_name", "run_type", "repetitions",
                       "repetition_index", "threads", "iterations", "real_time",
                       "cpu_time", "time_unit", "family_index",
                       "per_family_instance_index"):
                continue
            if isinstance(value, (int, float)):
                record[key] = value
        snapshot["benches"][entry["name"]] = record

with open(f"{tmp}/corpus.json") as f:
    corpus = json.load(f)
counters = corpus.get("metrics", {}).get("counters", {})
safe = counters.get("screen.proved-safe", 0)
refuted = counters.get("screen.proved-violated", 0)
unknown = counters.get("screen.unknown", 0)
screened = safe + refuted + unknown
# Interleaving-sensitive (deadlock/race) contracts settle through the lock
# graph, not the execution tree — their settled fraction is tracked apart.
i_safe = counters.get("screen.interleaving.proved-safe", 0)
i_refuted = counters.get("screen.interleaving.proved-violated", 0)
i_unknown = counters.get("screen.interleaving.unknown", 0)
i_screened = i_safe + i_refuted + i_unknown
# Atomicity/liveness contracts are decided by the schedule explorer, not the
# lock graph: track how many interleavings it ran and what fraction of those
# contracts it drained conclusively (an inconclusive exploration is a typed
# gate failure, so a drop here means the schedule workload outgrew its bound).
sched_contracts = counters.get("checker.schedule_contracts", 0)
sched_inconclusive = counters.get("checker.schedule_inconclusive", 0)
snapshot["corpus"] = {
    "cases": corpus.get("cases", 0),
    "violations": corpus.get("violations", 0),
    "settled_fraction": (safe + refuted) / screened if screened else 1.0,
    "interleaving_settled_fraction":
        (i_safe + i_refuted) / i_screened if i_screened else 1.0,
    "schedules_explored": counters.get("checker.schedules_explored", 0),
    "interleaving_conclusive_fraction":
        (sched_contracts - sched_inconclusive) / sched_contracts
        if sched_contracts else 1.0,
    "verdicts": {
        "contracts": counters.get("checker.contracts", 0),
        "interleaving_contracts": counters.get("checker.interleaving_contracts", 0),
        "schedule_contracts": sched_contracts,
        "schedule_violations": counters.get("checker.schedule_violations", 0),
        "schedule_inconclusive": sched_inconclusive,
        "paths_verified": counters.get("checker.paths_verified", 0),
        "paths_violated": counters.get("checker.paths_violated", 0),
        "paths_unmappable": counters.get("checker.paths_unmappable", 0),
        "paths_uncovered": counters.get("checker.paths_uncovered", 0),
        "screen_proved_safe": safe,
        "screen_proved_violated": refuted,
        "screen_unknown": unknown,
        "screen_interleaving_proved_safe": i_safe,
        "screen_interleaving_proved_violated": i_refuted,
        "screen_interleaving_unknown": i_unknown,
    },
}

with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(out)

# Longitudinal record: append one kind="bench" RunRecord to the run-history
# store (obs/history.hpp JSONL format, shared with `lisa check/gate
# --history`), so `lisa trends` and `lisa diff --history` can watch bench
# numbers next to gate latencies. The header matches support::jsonl_header.
history = os.environ.get("HISTORY", "")
if history:
    compact = dict(separators=(",", ":"), sort_keys=True)
    record = {
        "kind": "bench",
        "label": "bench_snapshot",
        "input_fingerprint": snapshot["git"]["sha"],
        "contracts": {},
        "metrics": {"settled_fraction": snapshot["corpus"]["settled_fraction"],
                    "violations": float(snapshot["corpus"]["violations"]),
                    "schedules_explored":
                        float(snapshot["corpus"]["schedules_explored"]),
                    "interleaving_conclusive_fraction":
                        snapshot["corpus"]["interleaving_conclusive_fraction"]},
        "meta": {"git_sha": snapshot["git"]["sha"],
                 "git_branch": snapshot["git"]["branch"],
                 "git_dirty": str(snapshot["git"]["dirty"]).lower(),
                 "snapshot": os.path.basename(out)},
    }
    for name, entry in snapshot["benches"].items():
        # Benchmark names ("BM_Foo/3") are free-form; metric keys keep only
        # charset-safe characters and gain the _ms suffix the latency drift
        # rule watches.
        key = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
        record["metrics"][key + "_ms"] = entry["wall_ms"]
    new_file = not os.path.exists(history) or os.path.getsize(history) == 0
    with open(history, "a") as f:
        if new_file:
            f.write(json.dumps({"fingerprint": "", "journal": "lisa-history",
                                "version": 1}, **compact) + "\n")
        f.write(json.dumps(record, **compact) + "\n")
    print(f"bench_snapshot: appended bench record to {history}")
PY
