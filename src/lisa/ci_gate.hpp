// CI/CD enforcement — "every failure, once fixed, automatically becomes an
// executable contract that shields the system from ever repeating the same
// mistake" (§1).
//
// The ContractStore accumulates contracts as incidents are fixed; the CiGate
// evaluates every stored contract against each proposed commit and blocks
// commits that reintroduce a violated semantics.
#pragma once

#include <string>
#include <vector>

#include "lisa/checker.hpp"
#include "lisa/contract.hpp"
#include "obs/history.hpp"

namespace lisa::core {

/// Durable store of contracts learned from past incidents.
class ContractStore {
 public:
  void add(SemanticContract contract);
  void add_all(std::vector<SemanticContract> contracts);

  [[nodiscard]] const std::vector<SemanticContract>& all() const { return contracts_; }
  [[nodiscard]] std::size_t size() const { return contracts_.size(); }

  /// Serialization for persistence across "CI runs".
  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static ContractStore from_json(const support::Json& json);

 private:
  std::vector<SemanticContract> contracts_;
};

/// Per-evaluation knobs: checkpointing and resume (lisa/journal.hpp).
struct GateRunOptions {
  std::string journal_path;  // empty = no checkpointing
  bool resume = false;       // reuse conclusive journaled reports
  /// Verdict provenance (obs/provenance.hpp): when set, the evaluation binds
  /// the ledger to (source, stored contract ids) — the same inputs as the
  /// checkpoint journal — and every evaluated contract captures its full
  /// evidence chain. nullptr = zero-cost.
  obs::ProvenanceLedger* ledger = nullptr;
  /// Longitudinal observability (obs/history.hpp): when set, the evaluation
  /// loads this run-history file, runs the drift rules against the trailing
  /// baseline window, and appends one RunRecord for this run. Findings whose
  /// `fails_gate` is set block the commit with a narrated cause. Empty =
  /// zero-cost, byte-identical output.
  std::string history_path;
  /// Timeline key for the baseline series; defaults to a fingerprint of the
  /// stored contract ids (so the series survives source edits).
  std::string history_label;
  /// Thresholds for the drift rules (only read when history_path is set).
  obs::DriftOptions drift;
  /// Downgrade schedule-exploration inconclusiveness (budget exhaustion,
  /// undrained DFS, injected fault) from a gate block to needs_attention
  /// (`--schedule-warn-only`). A violating interleaving always blocks; only
  /// the "could not finish exploring" outcome is downgradable.
  bool schedule_warn_only = false;
};

struct GateDecision {
  bool allowed = true;
  std::vector<std::string> violations;        // human-readable block reasons
  std::vector<ContractCheckReport> reports;   // one per contract evaluated
  double evaluation_ms = 0.0;
  // Screened-vs-explored accounting (see CheckOptions::static_screen):
  int screened_settled = 0;   // contracts decided without concolic ambiguity
  int screened_unknown = 0;   // contracts that needed the full check
  int concolic_skipped = 0;   // replays the screener made unnecessary
  double summary_ms = 0.0;    // interprocedural summary computation time
  // Resource governance: contracts whose check was cut short (budget, fault
  // injection). An inconclusive contract never blocks the commit on its own
  // — but it never silently passes either: `needs_attention` flags it.
  int inconclusive_contracts = 0;
  bool needs_attention = false;
  /// Contracts replayed from the checkpoint journal instead of re-checked.
  int resumed_contracts = 0;
  /// Schedule-exploration accounting (interleaving contracts with atomic /
  /// eventually patterns): contracts the explorer decided, total
  /// interleavings run, and contracts whose exploration stayed inconclusive.
  /// All zero when no stored contract routes to the explorer.
  int schedule_contracts = 0;
  int schedules_explored = 0;
  int schedule_inconclusive = 0;
  /// Longitudinal drift findings (only populated when GateRunOptions names a
  /// history file). A finding with `fails_gate` blocks the commit; the rest
  /// set `needs_attention`.
  std::vector<obs::DriftFinding> drift_findings;
  /// Baseline runs the drift rules compared against; -1 = history disabled
  /// (the sentinel keeps to_json() byte-identical to pre-history output).
  int baseline_runs = -1;

  /// Fraction of screened contracts the screener settled (1.0 when no
  /// contract was screened).
  [[nodiscard]] double settled_fraction() const {
    const int total = screened_settled + screened_unknown;
    return total == 0 ? 1.0 : static_cast<double>(screened_settled) / total;
  }

  /// Fraction of schedule-explored contracts whose exploration drained the
  /// reduced interleaving space (1.0 when none was explored).
  [[nodiscard]] double interleaving_conclusive_fraction() const {
    return schedule_contracts == 0
               ? 1.0
               : static_cast<double>(schedule_contracts - schedule_inconclusive) /
                     schedule_contracts;
  }

  [[nodiscard]] support::Json to_json() const;
};

class CiGate {
 public:
  explicit CiGate(CheckOptions options = {}) : options_(std::move(options)) {}

  /// Evaluates a commit (a full program source) against every stored
  /// contract. A parse/check failure of the source blocks the commit too.
  [[nodiscard]] GateDecision evaluate(const std::string& source,
                                      const ContractStore& store) const;
  [[nodiscard]] GateDecision evaluate(const std::string& source, const ContractStore& store,
                                      const GateRunOptions& run_options) const;

 private:
  CheckOptions options_;
};

}  // namespace lisa::core
