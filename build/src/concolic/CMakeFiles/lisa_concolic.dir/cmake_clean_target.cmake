file(REMOVE_RECURSE
  "liblisa_concolic.a"
)
