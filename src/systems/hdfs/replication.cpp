#include "systems/hdfs/replication.hpp"

#include <algorithm>

namespace lisa::systems::hdfs {

ReplicationManager::ReplicationManager(EventLoop& loop, ReplicationConfig config)
    : loop_(loop), config_(config) {}

void ReplicationManager::add_datanode(const std::string& name) {
  DataNodeState node;
  node.name = name;
  node.last_heartbeat_ms = loop_.now();
  nodes_[name] = std::move(node);
}

void ReplicationManager::heartbeat(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) return;
  it->second.last_heartbeat_ms = loop_.now();
}

void ReplicationManager::start_decommission(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it != nodes_.end()) it->second.decommissioning = true;
}

const DataNodeState* ReplicationManager::datanode(const std::string& name) const {
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::size_t ReplicationManager::live_datanodes() const {
  std::size_t count = 0;
  for (const auto& [name, node] : nodes_)
    if (node.alive) ++count;
  return count;
}

bool ReplicationManager::eligible(const DataNodeState& node, bool check) const {
  if (!node.alive) return false;
  if (check && node.decommissioning) return false;
  return true;
}

void ReplicationManager::place_one(std::int64_t block_id, bool check, bool is_sweep) {
  // Choose the eligible node hosting the fewest replicas (deterministic
  // tie-break by name through map order).
  DataNodeState* best = nullptr;
  for (auto& [name, node] : nodes_) {
    if (!eligible(node, check)) continue;
    if (std::find(node.blocks.begin(), node.blocks.end(), block_id) != node.blocks.end())
      continue;  // one replica per node
    if (best == nullptr || node.blocks.size() < best->blocks.size()) best = &node;
  }
  if (best == nullptr) {
    ++stats_.placements_rejected;
    return;
  }
  best->blocks.push_back(block_id);
  ++stats_.replicas_placed;
  if (is_sweep) ++stats_.re_replications;
  if (best->decommissioning) ++stats_.placed_on_decommissioning;
}

std::vector<std::string> ReplicationManager::place_block(std::int64_t block_id) {
  known_blocks_.push_back(block_id);
  std::vector<std::string> chosen;
  for (int i = 0; i < config_.replication_factor; ++i)
    place_one(block_id, config_.check_on_write_path, /*is_sweep=*/false);
  for (const auto& [name, node] : nodes_)
    if (std::find(node.blocks.begin(), node.blocks.end(), block_id) != node.blocks.end())
      chosen.push_back(name);
  return chosen;
}

std::size_t ReplicationManager::replicate_under_replicated() {
  const std::map<std::int64_t, int> counts = replica_counts();
  std::size_t added = 0;
  for (const std::int64_t block : known_blocks_) {
    const auto it = counts.find(block);
    const int have = it == counts.end() ? 0 : it->second;
    for (int i = have; i < config_.replication_factor; ++i) {
      const std::uint64_t before = stats_.replicas_placed;
      place_one(block, config_.check_on_sweep_path, /*is_sweep=*/true);
      if (stats_.replicas_placed > before) ++added;
    }
  }
  return added;
}

void ReplicationManager::expire_dead_nodes() {
  for (auto& [name, node] : nodes_) {
    if (!node.alive) continue;
    if (loop_.now() - node.last_heartbeat_ms > config_.heartbeat_timeout_ms) {
      node.alive = false;
      node.blocks.clear();  // replicas lost with the node
      ++stats_.nodes_expired;
    }
  }
}

std::map<std::int64_t, int> ReplicationManager::replica_counts() const {
  std::map<std::int64_t, int> counts;
  for (const auto& [name, node] : nodes_) {
    if (!node.alive) continue;
    for (const std::int64_t block : node.blocks) ++counts[block];
  }
  return counts;
}

}  // namespace lisa::systems::hdfs
