// Abstract syntax tree for MiniLang.
//
// The AST is deliberately a pair of tagged structs (Expr / Stmt) rather than a
// class hierarchy: every consumer in this repository (interpreter, concolic
// engine, call-graph builder, diff engine, printer) walks the whole tree, so
// a closed tag set with direct field access is simpler and faster than
// virtual dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minilang/token.hpp"

namespace lisa::minilang {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

struct Type;
using TypePtr = std::shared_ptr<const Type>;

struct Type {
  enum class Kind { kInt, kBool, kString, kVoid, kStruct, kList, kMap, kAny };

  Kind kind = Kind::kAny;
  std::string struct_name;  // kStruct only
  bool nullable = false;    // `T?`
  TypePtr elem;             // kList: element; kMap: value
  TypePtr key;              // kMap: key

  [[nodiscard]] static TypePtr make_int();
  [[nodiscard]] static TypePtr make_bool();
  [[nodiscard]] static TypePtr make_string();
  [[nodiscard]] static TypePtr make_void();
  [[nodiscard]] static TypePtr make_any();
  [[nodiscard]] static TypePtr make_struct(std::string name, bool nullable);
  [[nodiscard]] static TypePtr make_list(TypePtr elem);
  [[nodiscard]] static TypePtr make_map(TypePtr key, TypePtr value);
  /// Copy of `base` with the nullable flag set.
  [[nodiscard]] static TypePtr as_nullable(const TypePtr& base);

  /// Canonical source rendering, e.g. "Session?", "list<int>".
  [[nodiscard]] std::string to_string() const;

  /// Structural equality ignoring nullability.
  [[nodiscard]] bool same_base(const Type& other) const;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary operator spellings reuse the token kinds of their operators.
enum class BinOp { kAdd, kSub, kMul, kDiv, kMod, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };
enum class UnOp { kNot, kNeg };

[[nodiscard]] const char* bin_op_text(BinOp op);

struct Expr {
  enum class Kind {
    kIntLit,
    kBoolLit,
    kStrLit,
    kNullLit,
    kVar,       // text = name
    kField,     // args[0] = base, text = field name
    kIndex,     // args[0] = base, args[1] = index
    kUnary,     // args[0]
    kBinary,    // args[0], args[1]
    kCall,      // text = callee, args = arguments
    kNew,       // text = struct name, field_names[i] paired with args[i]
  };

  Kind kind;
  SourceLoc loc;
  std::int64_t int_value = 0;
  bool bool_value = false;
  std::string text;  // meaning depends on kind (see above); string literal body
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNot;
  std::vector<ExprPtr> args;
  std::vector<std::string> field_names;  // kNew only
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kLet,       // name, declared_type (optional), expr = initializer
    kAssign,    // lvalue = expr, rhs = expr2
    kIf,        // expr = condition, body / else_body
    kWhile,     // expr = condition, body
    kReturn,    // expr optional
    kThrow,     // expr
    kExpr,      // expr
    kSync,      // expr = monitor, body
    kSpawn,     // expr = kCall naming the thread root (scheduler: new thread;
                // serial engines: the call runs inline to completion)
    kBlock,     // body
    kTry,       // body, catch_var, else_body = catch handler
    kBreak,
    kContinue,
  };

  Kind kind;
  SourceLoc loc;
  int id = -1;  // unique within a Program, assigned by the parser

  std::string name;       // kLet variable name
  TypePtr declared_type;  // kLet annotation (may be null)
  ExprPtr expr;           // condition / initializer / lvalue / thrown value
  ExprPtr expr2;          // kAssign rhs
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;  // kIf else branch; kTry catch handler
  std::string catch_var;           // kTry
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct FieldDecl {
  std::string name;
  TypePtr type;
};

struct StructDecl {
  std::string name;
  std::vector<FieldDecl> fields;
  SourceLoc loc;

  [[nodiscard]] const FieldDecl* find_field(const std::string& field_name) const;
};

struct Param {
  std::string name;
  TypePtr type;
};

struct FuncDecl {
  std::string name;
  std::vector<Param> params;
  TypePtr return_type;  // null means void
  std::vector<StmtPtr> body;
  SourceLoc loc;
  // Annotations preceding the declaration: @entry (public API surface the
  // execution-tree builder roots searches at), @test (runnable test; used as
  // concolic input), @blocking (performs blocking I/O; feeds the
  // no-blocking-in-sync structural rule).
  std::vector<std::string> annotations;

  [[nodiscard]] bool has_annotation(std::string_view annotation) const;
};

/// A parsed MiniLang compilation unit. Owns all AST nodes.
struct Program {
  std::vector<StructDecl> structs;
  std::vector<FuncDecl> functions;
  std::string source;   // original text, kept for diffs and reports
  int next_stmt_id = 0;

  [[nodiscard]] const StructDecl* find_struct(const std::string& name) const;
  [[nodiscard]] const FuncDecl* find_function(const std::string& name) const;

  /// All functions carrying `annotation` (e.g. "test", "entry").
  [[nodiscard]] std::vector<const FuncDecl*> functions_with(std::string_view annotation) const;

  /// Depth-first visit of every statement in every function.
  /// The visitor receives the owning function and the statement.
  void for_each_stmt(
      const std::function<void(const FuncDecl&, const Stmt&)>& visit) const;
};

}  // namespace lisa::minilang
