#include "lisa/checker.hpp"

#include <algorithm>
#include <set>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "analysis/patterns.hpp"
#include "concolic/engine.hpp"
#include "inference/embedding.hpp"
#include "minilang/printer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "smt/solver.hpp"
#include "staticcheck/screener.hpp"

namespace lisa::core {

using support::Json;
using support::JsonArray;
using support::JsonObject;

const char* path_verdict_name(PathVerdict verdict) {
  switch (verdict) {
    case PathVerdict::kVerified: return "verified";
    case PathVerdict::kViolated: return "violated";
    case PathVerdict::kUnmappable: return "unmappable";
  }
  return "?";
}

Json ContractCheckReport::to_json() const {
  JsonObject root;
  root["contract_id"] = contract_id;
  root["target_fragment"] = target_fragment;
  root["target_statements"] = target_statements;
  root["verified"] = verified;
  root["violated"] = violated;
  root["unmappable"] = unmappable;
  root["uncovered"] = uncovered;
  root["raw_paths"] = raw_paths;
  root["truncated"] = truncated;
  root["sanity_ok"] = sanity_ok;
  root["passed"] = passed();
  JsonArray path_entries;
  for (const PathReport& path : paths) {
    JsonObject entry;
    std::string chain;
    for (const std::string& fn : path.call_chain) {
      if (!chain.empty()) chain += " -> ";
      chain += fn;
    }
    entry["chain"] = chain;
    entry["target_stmt"] = path.target_text;
    entry["path_condition"] = path.path_condition;
    entry["verdict"] = path_verdict_name(path.verdict);
    if (!path.counterexample.empty()) entry["counterexample"] = path.counterexample;
    entry["covered_by_test"] = path.covered_by_test;
    path_entries.emplace_back(std::move(entry));
  }
  root["paths"] = Json(std::move(path_entries));
  JsonObject dyn;
  JsonArray selected;
  for (const std::string& test : dynamic.selected_tests) selected.push_back(Json(test));
  dyn["selected_tests"] = Json(std::move(selected));
  dyn["tests_run"] = dynamic.tests_run;
  dyn["tests_passed"] = dynamic.tests_passed;
  dyn["target_hits"] = dynamic.target_hits;
  dyn["symbolic_violations"] = dynamic.symbolic_violations;
  dyn["concrete_violations"] = dynamic.concrete_violations;
  root["dynamic"] = Json(std::move(dyn));
  JsonArray structural;
  for (const std::string& violation : structural_violations)
    structural.push_back(Json(violation));
  root["structural_violations"] = Json(std::move(structural));
  if (!screen_verdict.empty()) {
    JsonObject screen;
    screen["verdict"] = screen_verdict;
    if (!screen_witness.empty()) screen["witness"] = screen_witness;
    screen["reason"] = screen_reason;
    screen["elapsed_ms"] = screen_ms;
    screen["summary_ms"] = summary_ms;
    screen["skipped_concolic"] = screen_skipped_concolic;
    root["screen"] = Json(std::move(screen));
  }
  return Json(std::move(root));
}

namespace {

/// True if `hit_chain` (test frame first) ends with `path_chain`.
bool chain_suffix_matches(const std::vector<std::string>& hit_chain,
                          const std::vector<std::string>& path_chain) {
  if (path_chain.size() > hit_chain.size()) return false;
  return std::equal(path_chain.rbegin(), path_chain.rend(), hit_chain.rbegin());
}

}  // namespace

namespace {

/// Folds one finished contract check into the metrics registry and closes
/// its span with the outcome attributes.
void record_contract_outcome(obs::ScopedSpan& span, const ContractCheckReport& report,
                             double elapsed_ms) {
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("checker.contracts").add();
  registry.counter("checker.paths_verified").add(report.verified);
  registry.counter("checker.paths_violated").add(report.violated);
  registry.counter("checker.paths_unmappable").add(report.unmappable);
  registry.counter("checker.paths_uncovered").add(report.uncovered);
  registry.histogram("checker.contract_ms").record(elapsed_ms);
  if (!report.screen_verdict.empty()) {
    registry.counter("screen." + report.screen_verdict).add();
    registry.histogram("screen.ms").record(report.screen_ms);
    if (report.summary_ms > 0.0) registry.histogram("summaries.ms").record(report.summary_ms);
    if (report.screen_skipped_concolic) registry.counter("screen.concolic_skipped").add();
  }
  span.attr("paths", report.paths.size());
  span.attr("verified", report.verified);
  span.attr("violated", report.violated);
  span.attr("unmappable", report.unmappable);
  span.attr("passed", report.passed());
  if (!report.screen_verdict.empty()) span.attr("screen_verdict", report.screen_verdict);
}

}  // namespace

ContractCheckReport Checker::check(const minilang::Program& program,
                                   const SemanticContract& contract,
                                   const CheckOptions& options) const {
  obs::ScopedSpan span("checker.contract");
  span.attr("contract", contract.id);
  span.attr("target", contract.target_fragment);

  ContractCheckReport report;
  report.contract_id = contract.id;
  report.target_fragment = contract.target_fragment;

  const analysis::CallGraph graph = analysis::CallGraph::build(program);

  if (contract.kind == corpus::SemanticsKind::kStructuralPattern) {
    // The path-sensitive lock-state dataflow subsumes the older structural
    // walk (analysis/patterns.cpp): same monitor rule, but exception edges
    // release monitors and nested sync depth is tracked per path.
    const staticcheck::Screener screener(program, options.use_summaries);
    const staticcheck::ScreenResult screen = screener.screen_structural();
    if (screener.summaries() != nullptr)
      report.summary_ms = screener.summaries()->stats().elapsed_ms;
    for (const staticcheck::Diagnostic& diagnostic : screen.diagnostics)
      report.structural_violations.push_back(diagnostic.render());
    report.screen_verdict = staticcheck::screen_verdict_name(screen.verdict);
    report.screen_witness = screen.witness;
    report.screen_reason = screen.reason;
    report.screen_ms = screen.elapsed_ms;
    report.target_statements =
        analysis::find_target_statements(program, contract.target_fragment).size();
    report.sanity_ok = true;  // structural rules need no fixed-path witness
    record_contract_outcome(span, report, span.elapsed_ms());
    return report;
  }

  // ---- Static screening (src/staticcheck) ---------------------------------
  bool skip_concolic = false;
  if (options.static_screen) {
    const staticcheck::Screener screener(program, options.use_summaries);
    if (screener.summaries() != nullptr)
      report.summary_ms = screener.summaries()->stats().elapsed_ms;
    staticcheck::ScreenOptions screen_options;
    screen_options.max_paths = options.max_paths;
    screen_options.prune_irrelevant = options.prune_irrelevant;
    const staticcheck::ScreenResult screen = screener.screen_state_predicate(
        contract.target_fragment, contract.condition, screen_options);
    report.screen_verdict = staticcheck::screen_verdict_name(screen.verdict);
    report.screen_witness = screen.witness;
    report.screen_reason = screen.reason;
    report.screen_ms = screen.elapsed_ms;
    // Forced tests are always honoured: ablations that request specific
    // replays expect them to run regardless of the screening verdict.
    if (options.forced_tests.empty()) {
      skip_concolic =
          screen.verdict == staticcheck::ScreenVerdict::kProvedSafe ||
          (screen.verdict == staticcheck::ScreenVerdict::kProvedViolated &&
           options.trust_screen_verdicts);
    }
    report.screen_skipped_concolic = skip_concolic && options.run_concolic;
  }

  // ---- Static assertion over the execution tree ---------------------------
  analysis::TreeOptions tree_options;
  tree_options.max_paths = options.max_paths;
  tree_options.prune_irrelevant = options.prune_irrelevant;
  tree_options.contract_condition = contract.condition;
  obs::ScopedSpan tree_span("checker.tree");
  const analysis::ExecutionTree tree = analysis::build_execution_tree(
      program, graph, contract.target_fragment, tree_options);
  tree_span.attr("paths", tree.paths.size());
  tree_span.attr("raw_paths", tree.enumerated_raw);
  tree_span.close();
  report.target_statements = tree.targets.size();
  report.raw_paths = tree.enumerated_raw;
  report.truncated = tree.truncated;

  obs::ScopedSpan static_span("checker.static_paths");
  smt::Solver solver;
  for (const analysis::ExecutionPath& path : tree.paths) {
    PathReport path_report;
    path_report.call_chain = path.call_chain;
    path_report.target_stmt_id = path.target != nullptr ? path.target->id : -1;
    path_report.target_text =
        path.target != nullptr ? minilang::stmt_header_text(*path.target) : "";
    path_report.path_condition = path.condition->to_string();
    path_report.contract_condition = path.renamed_contract->to_string();
    if (!path.mappable) {
      path_report.verdict = PathVerdict::kUnmappable;
      ++report.unmappable;
    } else {
      const smt::SolveResult result = solver.solve(smt::Formula::conj2(
          path.condition, smt::Formula::negate(path.renamed_contract)));
      if (result.sat()) {
        path_report.verdict = PathVerdict::kViolated;
        path_report.counterexample = result.model.to_string();
        ++report.violated;
      } else {
        path_report.verdict = PathVerdict::kVerified;
        ++report.verified;
      }
    }
    report.paths.push_back(std::move(path_report));
  }
  static_span.attr("verified", report.verified);
  static_span.attr("violated", report.violated);
  static_span.close();
  report.sanity_ok = report.verified > 0;

  // ---- Dynamic confirmation via concolic replay of selected tests ---------
  if (options.run_concolic && !skip_concolic) {
    obs::ScopedSpan concolic_span("checker.concolic");
    std::vector<std::string> tests = options.forced_tests;
    if (tests.empty()) {
      // Per-path selection (§3.2: "selects relevant tests for each path"):
      // rank the suite against each path's description, then take picks
      // round-robin across paths so every path gets its best candidates
      // before any path gets its second-best.
      const inference::TestSelector selector(program);
      std::vector<std::vector<inference::TestRanking>> rankings;
      rankings.reserve(tree.paths.size());
      for (const analysis::ExecutionPath& path : tree.paths)
        rankings.push_back(
            selector.rank(contract.target_fragment + " " + contract.condition_text + " " +
                          inference::TestSelector::describe_path(path)));
      std::set<std::string> seen;
      for (std::size_t round = 0; tests.size() < options.max_tests_per_contract; ++round) {
        bool any = false;
        for (const std::vector<inference::TestRanking>& ranking : rankings) {
          if (round >= ranking.size()) continue;
          if (ranking[round].score < options.min_test_score) continue;
          any = true;
          if (seen.insert(ranking[round].test_name).second) {
            tests.push_back(ranking[round].test_name);
            if (tests.size() >= options.max_tests_per_contract) break;
          }
        }
        if (!any) break;
      }
    }
    report.dynamic.selected_tests = tests;

    concolic::Engine engine(program);
    concolic::CheckConfig config;
    config.target_fragment = contract.target_fragment;
    config.contract = contract.condition;
    config.prune_irrelevant = options.prune_irrelevant;
    std::vector<concolic::TargetHit> all_hits;
    for (const std::string& test : tests) {
      const concolic::RunResult run = engine.run_test(test, config);
      ++report.dynamic.tests_run;
      if (run.test_passed) ++report.dynamic.tests_passed;
      for (const concolic::TargetHit& hit : run.hits) {
        ++report.dynamic.target_hits;
        if (hit.symbolic_violation) {
          ++report.dynamic.symbolic_violations;
          report.dynamic.violation_details.push_back(
              test + " -> " + hit.function + ": missing-check path, witness " + hit.witness);
        }
        if (hit.concrete_violation) {
          ++report.dynamic.concrete_violations;
          report.dynamic.violation_details.push_back(
              test + " -> " + hit.function + ": contract concretely false at target");
        }
        all_hits.push_back(hit);
        // Mark static paths covered by this hit.
        for (PathReport& path : report.paths) {
          if (path.target_stmt_id != hit.stmt_id) continue;
          if (!chain_suffix_matches(hit.call_chain, path.call_chain)) continue;
          path.covered_by_test = true;
          if (std::find(path.covering_tests.begin(), path.covering_tests.end(), test) ==
              path.covering_tests.end())
            path.covering_tests.push_back(test);
        }
      }
    }
    for (const PathReport& path : report.paths)
      if (!path.covered_by_test) ++report.uncovered;
    concolic_span.attr("tests_run", report.dynamic.tests_run);
    concolic_span.attr("target_hits", report.dynamic.target_hits);
  }
  record_contract_outcome(span, report, span.elapsed_ms());
  return report;
}

}  // namespace lisa::core
