#include "minilang/vm.hpp"

#include "minilang/builtins.hpp"

namespace lisa::minilang {

Vm::Vm(const Module& module) : module_(module) {}

void Vm::engine_error(const std::string& message) {
  // Reset machine state so the VM is reusable after an engine error.
  stack_.clear();
  frames_.clear();
  handlers_.clear();
  sync_depth_ = 0;
  throw InterpError(message);
}

Value Vm::call(const std::string& function, std::vector<Value> args) {
  const int chunk = module_.chunk_of(function);
  if (chunk < 0) engine_error("unknown function: " + function);
  return run(chunk, std::move(args));
}

void Vm::unwind(Value thrown) {
  if (handlers_.empty()) {
    stack_.clear();
    frames_.clear();
    handlers_.clear();
    sync_depth_ = 0;
    throw MiniThrow(std::move(thrown));
  }
  const Handler handler = handlers_.back();
  handlers_.pop_back();
  frames_.resize(handler.frame_index + 1);
  stack_.resize(handler.stack_size);
  sync_depth_ = handler.sync_depth;
  Frame& frame = frames_.back();
  frame.ip = handler.ip;
  stack_[frame.base + static_cast<std::size_t>(handler.catch_slot)] = std::move(thrown);
}

Value Vm::run(int chunk_index, std::vector<Value> args) {
  const Chunk& entry = module_.chunks[static_cast<std::size_t>(chunk_index)];
  if (static_cast<int>(args.size()) != entry.arity)
    engine_error("arity mismatch calling " + entry.name);

  const std::size_t frame_floor = frames_.size();
  const std::size_t stack_floor = stack_.size();

  // Push the entry frame: arguments become slots, rest default to null.
  Frame frame;
  frame.chunk = &entry;
  frame.ip = 0;
  frame.base = stack_.size();
  frame.sync_base = sync_depth_;
  frame.handler_base = handlers_.size();
  for (Value& arg : args) stack_.push_back(std::move(arg));
  stack_.resize(frame.base + static_cast<std::size_t>(entry.slot_count));
  frames_.push_back(frame);
  if (entry.is_blocking) {
    now_ms_ += blocking_latency_ms_;
    if (observer_ != nullptr) observer_->on_blocking(entry.name, sync_depth_);
  }

  const auto pop = [&]() -> Value {
    Value v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  };

  while (frames_.size() > frame_floor) {
    Frame& top = frames_.back();
    const Chunk& chunk = *top.chunk;
    if (top.ip >= chunk.code.size()) engine_error("ip out of range in " + chunk.name);
    if (++executed_ > fuel_limit_)
      engine_error("fuel exhausted: possible non-terminating MiniLang program");
    const Insn insn = chunk.code[top.ip++];
    switch (insn.op) {
      case Op::kPushInt:
        stack_.push_back(Value::of_int(module_.int_pool[static_cast<std::size_t>(insn.a)]));
        break;
      case Op::kPushBool:
        stack_.push_back(Value::of_bool(insn.a != 0));
        break;
      case Op::kPushStr:
        stack_.push_back(
            Value::of_string(module_.string_pool[static_cast<std::size_t>(insn.a)]));
        break;
      case Op::kPushNull:
        stack_.push_back(Value::null());
        break;
      case Op::kLoad:
        stack_.push_back(stack_[top.base + static_cast<std::size_t>(insn.a)]);
        break;
      case Op::kStore:
        stack_[top.base + static_cast<std::size_t>(insn.a)] = pop();
        break;
      case Op::kFieldGet: {
        const Value base = pop();
        const std::string& name = module_.name_pool[static_cast<std::size_t>(insn.a)];
        if (base.is_null()) {
          unwind(Value::of_string("NullPointerException: field read ." + name));
          break;
        }
        if (!base.is_object()) engine_error("field read on non-object: ." + name);
        const auto& fields = base.as_object()->fields;
        const auto it = fields.find(name);
        if (it == fields.end())
          engine_error("object " + base.as_object()->struct_name + " has no field " + name);
        stack_.push_back(it->second);
        break;
      }
      case Op::kFieldSet: {
        Value value = pop();
        const Value base = pop();
        const std::string& name = module_.name_pool[static_cast<std::size_t>(insn.a)];
        if (base.is_null()) {
          unwind(Value::of_string("NullPointerException: field write ." + name));
          break;
        }
        if (!base.is_object()) engine_error("field write on non-object");
        base.as_object()->fields[name] = std::move(value);
        break;
      }
      case Op::kIndexGet: {
        const Value index = pop();
        const Value base = pop();
        if (base.is_list()) {
          const auto& items = *base.as_list();
          const std::int64_t i = index.as_int();
          if (i < 0 || static_cast<std::size_t>(i) >= items.size()) {
            unwind(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
            break;
          }
          stack_.push_back(items[static_cast<std::size_t>(i)]);
        } else if (base.is_map()) {
          const std::string key =
              index.is_string() ? index.as_string() : std::to_string(index.as_int());
          const auto& map = *base.as_map();
          const auto it = map.find(key);
          stack_.push_back(it == map.end() ? Value::null() : it->second);
        } else if (base.is_null()) {
          unwind(Value::of_string("NullPointerException: index access"));
        } else {
          engine_error("index on non-container");
        }
        break;
      }
      case Op::kIndexSet: {
        Value value = pop();
        const Value index = pop();
        const Value base = pop();
        if (base.is_list()) {
          auto& items = *base.as_list();
          const std::int64_t i = index.as_int();
          if (i < 0 || static_cast<std::size_t>(i) >= items.size()) {
            unwind(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
            break;
          }
          items[static_cast<std::size_t>(i)] = std::move(value);
        } else if (base.is_map()) {
          const std::string key =
              index.is_string() ? index.as_string() : std::to_string(index.as_int());
          (*base.as_map())[key] = std::move(value);
        } else {
          engine_error("index write on non-container");
        }
        break;
      }
      case Op::kAdd: {
        const Value rhs = pop();
        const Value lhs = pop();
        if (lhs.is_string() || rhs.is_string())
          stack_.push_back(Value::of_string(lhs.to_display() + rhs.to_display()));
        else if (lhs.is_int() && rhs.is_int())
          stack_.push_back(Value::of_int(lhs.as_int() + rhs.as_int()));
        else
          engine_error("'+' on incompatible operands");
        break;
      }
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        const Value rhs = pop();
        const Value lhs = pop();
        if (!lhs.is_int() || !rhs.is_int()) engine_error("arithmetic on non-int");
        const std::int64_t a = lhs.as_int();
        const std::int64_t b = rhs.as_int();
        if (insn.op == Op::kSub) stack_.push_back(Value::of_int(a - b));
        else if (insn.op == Op::kMul) stack_.push_back(Value::of_int(a * b));
        else if (b == 0) {
          unwind(Value::of_string(insn.op == Op::kDiv
                                      ? "ArithmeticException: divide by zero"
                                      : "ArithmeticException: mod by zero"));
        } else {
          stack_.push_back(Value::of_int(insn.op == Op::kDiv ? a / b : a % b));
        }
        break;
      }
      case Op::kEq:
      case Op::kNe: {
        const Value rhs = pop();
        const Value lhs = pop();
        const bool eq = lhs.equals(rhs);
        stack_.push_back(Value::of_bool(insn.op == Op::kEq ? eq : !eq));
        break;
      }
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        const Value rhs = pop();
        const Value lhs = pop();
        int cmp = 0;
        if (lhs.is_string() && rhs.is_string())
          cmp = lhs.as_string().compare(rhs.as_string()) < 0
                    ? -1
                    : (lhs.as_string() == rhs.as_string() ? 0 : 1);
        else if (lhs.is_int() && rhs.is_int())
          cmp = lhs.as_int() < rhs.as_int() ? -1 : (lhs.as_int() == rhs.as_int() ? 0 : 1);
        else
          engine_error("comparison on incompatible types");
        bool result = false;
        if (insn.op == Op::kLt) result = cmp < 0;
        else if (insn.op == Op::kLe) result = cmp <= 0;
        else if (insn.op == Op::kGt) result = cmp > 0;
        else result = cmp >= 0;
        stack_.push_back(Value::of_bool(result));
        break;
      }
      case Op::kNot: {
        const Value operand = pop();
        if (!operand.is_bool()) engine_error("'!' on non-bool");
        stack_.push_back(Value::of_bool(!operand.as_bool()));
        break;
      }
      case Op::kNeg: {
        const Value operand = pop();
        if (!operand.is_int()) engine_error("unary '-' on non-int");
        stack_.push_back(Value::of_int(-operand.as_int()));
        break;
      }
      case Op::kJump:
        top.ip = static_cast<std::size_t>(insn.a);
        break;
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue: {
        const Value condition = pop();
        if (!condition.is_bool()) engine_error("condition is not a bool");
        const bool jump_on = insn.op == Op::kJumpIfTrue;
        if (condition.as_bool() == jump_on) top.ip = static_cast<std::size_t>(insn.a);
        break;
      }
      case Op::kCall: {
        const Chunk& callee = module_.chunks[static_cast<std::size_t>(insn.a)];
        const std::size_t argc = static_cast<std::size_t>(insn.b);
        if (static_cast<int>(argc) != callee.arity)
          engine_error("arity mismatch calling " + callee.name);
        if (frames_.size() > 256) engine_error("call depth limit in " + callee.name);
        Frame next;
        next.chunk = &callee;
        next.ip = 0;
        next.base = stack_.size() - argc;
        next.sync_base = sync_depth_;
        next.handler_base = handlers_.size();
        stack_.resize(next.base + static_cast<std::size_t>(callee.slot_count));
        frames_.push_back(next);
        if (observer_ != nullptr) {
          const FuncDecl* decl = module_.program->find_function(callee.name);
          if (decl != nullptr) observer_->on_call(*decl);
        }
        if (callee.is_blocking) {
          now_ms_ += blocking_latency_ms_;
          if (observer_ != nullptr) observer_->on_blocking(callee.name, sync_depth_);
        }
        break;
      }
      case Op::kCallBuiltin: {
        const std::string& name = module_.name_pool[static_cast<std::size_t>(insn.a)];
        const std::size_t argc = static_cast<std::size_t>(insn.b);
        std::vector<Value> call_args;
        call_args.reserve(argc);
        for (std::size_t i = stack_.size() - argc; i < stack_.size(); ++i)
          call_args.push_back(std::move(stack_[i]));
        stack_.resize(stack_.size() - argc);
        BuiltinContext context;
        context.output = &output_;
        context.now_ms = &now_ms_;
        context.blocking_latency_ms = blocking_latency_ms_;
        context.observer = observer_;
        context.sync_depth = sync_depth_;
        try {
          std::optional<Value> result = dispatch_builtin(name, call_args, context);
          if (!result.has_value()) engine_error("unknown function or builtin: " + name);
          stack_.push_back(std::move(*result));
        } catch (const MiniThrow& thrown) {
          unwind(thrown.value());
        }
        break;
      }
      case Op::kNew: {
        const NewSpec& spec = module_.new_specs[static_cast<std::size_t>(insn.a)];
        const StructDecl* decl = module_.program->find_struct(spec.struct_name);
        if (decl == nullptr) engine_error("unknown struct: " + spec.struct_name);
        auto object = std::make_shared<Object>();
        object->struct_name = spec.struct_name;
        object->object_id = next_object_id_++;
        for (const FieldDecl& field : decl->fields) {
          switch (field.type->kind) {
            case Type::Kind::kInt: object->fields[field.name] = Value::of_int(0); break;
            case Type::Kind::kBool: object->fields[field.name] = Value::of_bool(false); break;
            case Type::Kind::kString:
              object->fields[field.name] = Value::of_string("");
              break;
            case Type::Kind::kList: object->fields[field.name] = Value::new_list(); break;
            case Type::Kind::kMap: object->fields[field.name] = Value::new_map(); break;
            default: object->fields[field.name] = Value::null(); break;
          }
        }
        // Initializer values are on the stack in field order.
        const std::size_t count = spec.fields.size();
        for (std::size_t i = 0; i < count; ++i) {
          object->fields[spec.fields[count - 1 - i]] = pop();
        }
        stack_.push_back(Value::of_object(std::move(object)));
        break;
      }
      case Op::kPop:
        stack_.pop_back();
        break;
      case Op::kReturn: {
        Value result = pop();
        const Frame done = frames_.back();
        frames_.pop_back();
        handlers_.resize(done.handler_base);  // drop this frame's handlers
        sync_depth_ = done.sync_base;         // release monitors held here
        stack_.resize(done.base);
        if (frames_.size() == frame_floor) {
          stack_.resize(stack_floor);
          return result;
        }
        stack_.push_back(std::move(result));
        break;
      }
      case Op::kThrow:
        unwind(pop());
        break;
      case Op::kTryPush: {
        Handler handler;
        handler.frame_index = frames_.size() - 1;
        handler.ip = static_cast<std::size_t>(insn.a);
        handler.stack_size = stack_.size();
        handler.catch_slot = insn.b;
        handler.sync_depth = sync_depth_;
        handlers_.push_back(handler);
        break;
      }
      case Op::kTryPop:
        if (handlers_.empty()) engine_error("try_pop with empty handler stack");
        handlers_.pop_back();
        break;
      case Op::kSyncEnter:
        stack_.pop_back();  // monitor value, evaluated for effect only
        ++sync_depth_;
        break;
      case Op::kSyncExit:
        --sync_depth_;
        break;
    }
  }
  engine_error("fell off frame loop");  // unreachable
}

bool Vm::run_test(const std::string& test_name) {
  last_error_.clear();
  try {
    call(test_name, {});
    return true;
  } catch (const MiniThrow& thrown) {
    last_error_ = thrown.value().to_display();
    return false;
  } catch (const InterpError& error) {
    last_error_ = error.what();
    return false;
  }
}

std::pair<int, int> Vm::run_all_tests() {
  int passed = 0;
  int failed = 0;
  for (const FuncDecl* test : module_.program->functions_with("test")) {
    if (run_test(test->name)) ++passed;
    else ++failed;
  }
  return {passed, failed};
}

}  // namespace lisa::minilang
