#include "support/budget.hpp"

#include <cstdio>

namespace lisa::support {

const char* budget_resource_name(BudgetResource resource) {
  switch (resource) {
    case BudgetResource::kNone: return "none";
    case BudgetResource::kDeadline: return "deadline";
    case BudgetResource::kSmtQueries: return "smt-queries";
    case BudgetResource::kPaths: return "paths";
    case BudgetResource::kForkPoints: return "fork-points";
    case BudgetResource::kSteps: return "steps";
    case BudgetResource::kSchedules: return "schedules";
  }
  return "?";
}

std::string Budget::exhausted_reason() const {
  const BudgetResource resource = exhausted_resource();
  switch (resource) {
    case BudgetResource::kNone:
      return "";
    case BudgetResource::kDeadline: {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "deadline exceeded (%.1f ms)",
                    limits_.deadline_ms);
      return buffer;
    }
    case BudgetResource::kSmtQueries:
      return "SMT query budget exceeded (" + std::to_string(limits_.max_smt_queries) + ")";
    case BudgetResource::kPaths:
      return "path budget exceeded (" + std::to_string(limits_.max_paths) + ")";
    case BudgetResource::kForkPoints:
      return "fork-point budget exceeded (" + std::to_string(limits_.max_fork_points) + ")";
    case BudgetResource::kSteps:
      return "step budget exceeded (" + std::to_string(limits_.max_steps) + ")";
    case BudgetResource::kSchedules:
      return "schedule budget exceeded (" + std::to_string(limits_.max_schedules) + ")";
  }
  return "?";
}

}  // namespace lisa::support
