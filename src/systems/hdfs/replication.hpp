// Mini-HDFS block replication: datanodes with heartbeats, decommissioning,
// and replica placement over the discrete-event simulator.
//
// Native analog of the HDFS-D1/D2 corpus case: a decommissioning datanode
// must never be chosen as a replication target, and both placement paths
// (client writes and the under-replication sweep) can individually enforce
// or skip the check.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "systems/sim/event_loop.hpp"

namespace lisa::systems::hdfs {

struct DataNodeState {
  std::string name;
  bool alive = true;
  bool decommissioning = false;
  std::int64_t last_heartbeat_ms = 0;
  std::vector<std::int64_t> blocks;  // replica block ids hosted here
};

struct ReplicationStats {
  std::uint64_t replicas_placed = 0;
  std::uint64_t placed_on_decommissioning = 0;  // the incident symptom
  std::uint64_t placements_rejected = 0;
  std::uint64_t nodes_expired = 0;
  std::uint64_t re_replications = 0;
};

struct ReplicationConfig {
  std::int64_t heartbeat_timeout_ms = 3000;
  int replication_factor = 3;
  bool check_on_write_path = true;   // the original fix
  bool check_on_sweep_path = true;   // the path the regression hit
};

class ReplicationManager {
 public:
  ReplicationManager(EventLoop& loop, ReplicationConfig config = {});

  void add_datanode(const std::string& name);
  void heartbeat(const std::string& name);
  void start_decommission(const std::string& name);
  [[nodiscard]] const DataNodeState* datanode(const std::string& name) const;
  [[nodiscard]] std::size_t live_datanodes() const;

  /// Client write path: places `replication_factor` replicas of a new block
  /// on eligible datanodes (round-robin over the map order). Returns the
  /// names chosen.
  std::vector<std::string> place_block(std::int64_t block_id);

  /// Under-replication sweep: for every block below the replication factor,
  /// place additional replicas. Returns replicas added.
  std::size_t replicate_under_replicated();

  /// Marks dead datanodes (heartbeat timeout); their replicas become
  /// under-replicated. Called periodically from the event loop too.
  void expire_dead_nodes();

  [[nodiscard]] const ReplicationStats& stats() const { return stats_; }
  /// Replica count per block id.
  [[nodiscard]] std::map<std::int64_t, int> replica_counts() const;

 private:
  [[nodiscard]] bool eligible(const DataNodeState& node, bool check) const;
  void place_one(std::int64_t block_id, bool check, bool is_sweep);

  EventLoop& loop_;
  ReplicationConfig config_;
  ReplicationStats stats_;
  std::map<std::string, DataNodeState> nodes_;
  std::vector<std::int64_t> known_blocks_;
};

}  // namespace lisa::systems::hdfs
