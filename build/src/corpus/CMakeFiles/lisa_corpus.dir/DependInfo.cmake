
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/cassandra_cases.cpp" "src/corpus/CMakeFiles/lisa_corpus.dir/cassandra_cases.cpp.o" "gcc" "src/corpus/CMakeFiles/lisa_corpus.dir/cassandra_cases.cpp.o.d"
  "/root/repo/src/corpus/diff.cpp" "src/corpus/CMakeFiles/lisa_corpus.dir/diff.cpp.o" "gcc" "src/corpus/CMakeFiles/lisa_corpus.dir/diff.cpp.o.d"
  "/root/repo/src/corpus/hbase_cases.cpp" "src/corpus/CMakeFiles/lisa_corpus.dir/hbase_cases.cpp.o" "gcc" "src/corpus/CMakeFiles/lisa_corpus.dir/hbase_cases.cpp.o.d"
  "/root/repo/src/corpus/hdfs_cases.cpp" "src/corpus/CMakeFiles/lisa_corpus.dir/hdfs_cases.cpp.o" "gcc" "src/corpus/CMakeFiles/lisa_corpus.dir/hdfs_cases.cpp.o.d"
  "/root/repo/src/corpus/ticket.cpp" "src/corpus/CMakeFiles/lisa_corpus.dir/ticket.cpp.o" "gcc" "src/corpus/CMakeFiles/lisa_corpus.dir/ticket.cpp.o.d"
  "/root/repo/src/corpus/zookeeper_cases.cpp" "src/corpus/CMakeFiles/lisa_corpus.dir/zookeeper_cases.cpp.o" "gcc" "src/corpus/CMakeFiles/lisa_corpus.dir/zookeeper_cases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minilang/CMakeFiles/lisa_minilang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
