#include "concolic/testgen.hpp"

#include "concolic/engine.hpp"
#include "minilang/printer.hpp"
#include "minilang/sema.hpp"
#include "smt/solver.hpp"
#include "support/strings.hpp"

namespace lisa::concolic {

using minilang::FuncDecl;
using minilang::Program;
using minilang::Type;

namespace {

/// All model variables must be rooted at entry parameters ("entry::param…");
/// constraints over deeper frames (locals fed by container lookups) cannot
/// be established through arguments alone.
bool roots_are_entry_params(const smt::FormulaPtr& f, const std::string& entry,
                            const FuncDecl& fn) {
  for (const std::string& var : f->variables()) {
    if (support::starts_with(var, "opaque:")) continue;  // unconstrained
    const std::string prefix = entry + "::";
    if (!support::starts_with(var, prefix)) return false;
    std::string rest = var.substr(prefix.size());
    const std::size_t cut = rest.find_first_of(".#");
    const std::string root = cut == std::string::npos ? rest : rest.substr(0, cut);
    bool is_param = false;
    for (const minilang::Param& param : fn.params)
      if (param.name == root) is_param = true;
    if (!is_param) return false;
  }
  return true;
}

/// Renders one argument expression for `param` from the model. Returns
/// nullopt for container-typed parameters (outside the synthesizable subset).
std::optional<std::string> render_argument(const Program& program,
                                           const minilang::Param& param,
                                           const std::string& entry,
                                           const smt::Model& model) {
  const std::string base = entry + "::" + param.name;
  const auto model_int = [&](const std::string& name, std::int64_t fallback) {
    const auto it = model.ints.find(name);
    return it == model.ints.end() ? fallback : it->second;
  };
  const auto model_bool = [&](const std::string& name, bool fallback) {
    const auto it = model.bools.find(name);
    return it == model.bools.end() ? fallback : it->second;
  };
  switch (param.type->kind) {
    case Type::Kind::kInt:
      return std::to_string(model_int(base, 0));
    case Type::Kind::kBool:
      return model_bool(base, false) ? "true" : "false";
    case Type::Kind::kString:
      return "\"synth\"";
    case Type::Kind::kStruct: {
      if (param.type->nullable && model_bool(base + "#null", false)) return "null";
      const minilang::StructDecl* decl = program.find_struct(param.type->struct_name);
      if (decl == nullptr) return std::nullopt;
      std::string out = "new " + decl->name + " {";
      bool first = true;
      for (const minilang::FieldDecl& field : decl->fields) {
        std::string value;
        switch (field.type->kind) {
          case Type::Kind::kInt:
            value = std::to_string(model_int(base + "." + field.name, 0));
            break;
          case Type::Kind::kBool:
            value = model_bool(base + "." + field.name, false) ? "true" : "false";
            break;
          default:
            continue;  // defaults (empty string/list/map/null) applied by `new`
        }
        out += (first ? " " : ", ");
        first = false;
        out += field.name + ": " + value;
      }
      out += first ? "}" : " }";
      return out;
    }
    default:
      return std::nullopt;  // lists/maps need human-authored setup
  }
}

}  // namespace

std::optional<SynthesizedTest> synthesize_path_test(const Program& program,
                                                    const analysis::ExecutionPath& path,
                                                    bool violating, int sequence_number) {
  if (path.call_chain.empty()) return std::nullopt;
  const std::string& entry = path.call_chain.front();
  const FuncDecl* fn = program.find_function(entry);
  if (fn == nullptr) return std::nullopt;
  if (violating && !path.mappable) return std::nullopt;

  const smt::FormulaPtr query =
      violating ? smt::Formula::conj2(path.condition,
                                      smt::Formula::negate(path.renamed_contract))
                : smt::Formula::conj2(path.condition, path.renamed_contract);
  if (!roots_are_entry_params(query, entry, *fn)) return std::nullopt;

  smt::Solver solver;
  const smt::SolveResult solved = solver.solve(query);
  if (!solved.sat()) return std::nullopt;

  std::vector<std::string> arguments;
  for (const minilang::Param& param : fn->params) {
    const auto rendered = render_argument(program, param, entry, solved.model);
    if (!rendered.has_value()) return std::nullopt;
    arguments.push_back(*rendered);
  }

  SynthesizedTest test;
  test.test_name = std::string(violating ? "synth_witness_" : "synth_cover_") +
                   std::to_string(sequence_number);
  test.model_text = solved.model.to_string();
  std::string body = "@test\nfn " + test.test_name + "() {\n";
  for (std::size_t i = 0; i < arguments.size(); ++i)
    body += "  let arg" + std::to_string(i) + " = " + arguments[i] + ";\n";
  body += "  try {\n    " + entry + "(";
  for (std::size_t i = 0; i < arguments.size(); ++i) {
    if (i > 0) body += ", ";
    body += "arg" + std::to_string(i);
  }
  body += ");\n  } catch (e) {\n    print(\"synthesized run raised:\", e);\n  }\n}\n";
  test.source = std::move(body);
  return test;
}

bool validate_synthesized_test(const Program& program, const SynthesizedTest& test,
                               const std::string& target_fragment) {
  const std::string extended = minilang::program_text(program) + "\n" + test.source;
  Program with_test;
  try {
    with_test = minilang::parse_checked(extended);
  } catch (const std::exception&) {
    return false;
  }
  Engine engine(with_test);
  CheckConfig config;
  config.target_fragment = target_fragment;
  const RunResult run = engine.run_test(test.test_name, config);
  return !run.hits.empty();
}

}  // namespace lisa::concolic
