# Empty compiler generated dependencies file for systems_chaos_test.
# This may be replaced when dependencies are built.
