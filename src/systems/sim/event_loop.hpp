// Deterministic discrete-event simulator.
//
// All native mini cloud systems (ZooKeeper/HDFS/HBase/Cassandra analogs) run
// on this loop: time is virtual, events fire in (time, sequence) order, and
// identical seeds replay identical histories — the property every incident
// reproduction in examples/ relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lisa::systems {

class EventLoop {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute virtual time `time_ms` (>= now).
  void schedule_at(std::int64_t time_ms, Handler handler);

  /// Schedules `handler` `delay_ms` after the current virtual time.
  void schedule_after(std::int64_t delay_ms, Handler handler);

  /// Runs the earliest pending event; returns false if none is pending.
  bool run_one();

  /// Runs events until virtual time exceeds `time_ms` or the queue drains.
  void run_until(std::int64_t time_ms);

  /// Drains the queue (bounded by `max_events` as a runaway guard).
  void run_all(std::size_t max_events = 1'000'000);

  [[nodiscard]] std::int64_t now() const { return now_ms_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    std::int64_t time;
    std::uint64_t seq;  // FIFO among same-time events
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::int64_t now_ms_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace lisa::systems
