#include "obs/diff.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace lisa::obs {

using support::Json;
using support::JsonArray;
using support::JsonObject;

namespace {

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

std::string or_absent(const std::string& verdict) {
  return verdict.empty() ? "(absent)" : verdict;
}

/// Stable identity of one static path inside a capture: call chain plus
/// target statement. Two runs explored "the same path" iff the keys match.
std::string path_key(const PathEvidence& path) {
  return path.chain + " #" + std::to_string(path.target_stmt_id);
}

/// Evidence-chain delta notes between two captures of the same contract,
/// in fixed rule order so the report is byte-stable.
std::vector<std::string> capture_notes(const ContractCapture& a, const ContractCapture& b) {
  std::vector<std::string> notes;

  if (a.screen_verdict != b.screen_verdict || a.screen_reason != b.screen_reason)
    notes.push_back("screen: " + or_absent(a.screen_verdict) +
                    (a.screen_reason.empty() ? "" : " (" + a.screen_reason + ")") + " -> " +
                    or_absent(b.screen_verdict) +
                    (b.screen_reason.empty() ? "" : " (" + b.screen_reason + ")"));
  if (a.slice_fp != b.slice_fp)
    notes.push_back("slice fingerprint: " + or_absent(a.slice_fp) + " -> " +
                    or_absent(b.slice_fp));

  // Paths: keyed by chain + target; verdict changes, appearances, vanishings.
  std::map<std::string, const PathEvidence*> paths_a;
  std::map<std::string, const PathEvidence*> paths_b;
  for (const PathEvidence& path : a.paths) paths_a[path_key(path)] = &path;
  for (const PathEvidence& path : b.paths) paths_b[path_key(path)] = &path;
  for (const auto& [key, path] : paths_a) {
    const auto it = paths_b.find(key);
    if (it == paths_b.end()) {
      notes.push_back("path vanished: " + key + " [" + path->verdict + "]");
    } else if (path->verdict != it->second->verdict) {
      std::string note = "path " + key + ": " + path->verdict + " -> " + it->second->verdict;
      if (!it->second->counterexample.empty())
        note += " (counterexample " + it->second->counterexample + ")";
      notes.push_back(std::move(note));
    }
  }
  for (const auto& [key, path] : paths_b)
    if (paths_a.find(key) == paths_a.end())
      notes.push_back("path appeared: " + key + " [" + path->verdict + "]");

  // SMT queries: keyed by content digest. A digest present on both sides
  // with a different status is a changed solver outcome — the strongest
  // "same question, different answer" signal a diff can surface.
  std::map<std::string, std::string> smt_a;  // digest -> status
  std::map<std::string, std::string> smt_b;
  for (const SmtQueryEvidence& query : a.smt_queries) smt_a[query.digest] = query.status;
  for (const SmtQueryEvidence& query : b.smt_queries) smt_b[query.digest] = query.status;
  int smt_vanished = 0;
  int smt_appeared = 0;
  for (const auto& [digest, status] : smt_a) {
    const auto it = smt_b.find(digest);
    if (it == smt_b.end())
      ++smt_vanished;
    else if (status != it->second)
      notes.push_back("smt " + digest + ": " + status + " -> " + it->second);
  }
  for (const auto& [digest, status] : smt_b)
    if (smt_a.find(digest) == smt_a.end()) ++smt_appeared;
  if (smt_vanished > 0 || smt_appeared > 0)
    notes.push_back("smt queries: " + std::to_string(smt_appeared) + " new, " +
                    std::to_string(smt_vanished) + " vanished (" +
                    std::to_string(a.smt_queries.size()) + " -> " +
                    std::to_string(b.smt_queries.size()) + ")");

  // Concolic hits: outcome multiset per (test, target).
  std::map<std::string, std::string> hits_a;
  std::map<std::string, std::string> hits_b;
  for (const HitEvidence& hit : a.hits)
    hits_a[hit.test + " @ " + hit.function + "#" + std::to_string(hit.stmt_id)] = hit.outcome;
  for (const HitEvidence& hit : b.hits)
    hits_b[hit.test + " @ " + hit.function + "#" + std::to_string(hit.stmt_id)] = hit.outcome;
  for (const auto& [key, outcome] : hits_a) {
    const auto it = hits_b.find(key);
    if (it == hits_b.end())
      notes.push_back("hit vanished: " + key + " [" + outcome + "]");
    else if (outcome != it->second)
      notes.push_back("hit " + key + ": " + outcome + " -> " + it->second);
  }
  for (const auto& [key, outcome] : hits_b)
    if (hits_a.find(key) == hits_a.end())
      notes.push_back("hit appeared: " + key + " [" + outcome + "]");

  if (a.budget.exhausted != b.budget.exhausted)
    notes.push_back(std::string("budget: ") +
                    (a.budget.exhausted ? "exhausted (" + a.budget.resource + ")"
                                        : "within limits") +
                    " -> " +
                    (b.budget.exhausted ? "exhausted (" + b.budget.resource + ")"
                                        : "within limits"));

  if (a.narration.kind != b.narration.kind ||
      a.narration.reproduced != b.narration.reproduced) {
    const auto describe = [](const Narration& narration) {
      if (narration.kind.empty()) return std::string("(none)");
      return narration.kind + (narration.reproduced ? " (reproduced)" : "");
    };
    notes.push_back("narration: " + describe(a.narration) + " -> " + describe(b.narration));
  }
  return notes;
}

}  // namespace

int DiffReport::verdict_flips() const {
  int flips = 0;
  for (const ContractDelta& contract : contracts)
    if (contract.flipped) ++flips;
  return flips;
}

Json DiffReport::to_json() const {
  JsonObject root;
  root["label_a"] = label_a;
  root["label_b"] = label_b;
  root["fingerprint_a"] = fingerprint_a;
  root["fingerprint_b"] = fingerprint_b;
  root["identical"] = identical();
  root["verdict_flips"] = verdict_flips();
  root["contracts_unchanged"] = contracts_unchanged;
  JsonArray contract_entries;
  for (const ContractDelta& contract : contracts) {
    JsonObject entry;
    entry["contract_id"] = contract.contract_id;
    entry["before"] = contract.before;
    entry["after"] = contract.after;
    entry["flipped"] = contract.flipped;
    JsonArray note_entries;
    for (const std::string& note : contract.notes) note_entries.push_back(Json(note));
    entry["notes"] = Json(std::move(note_entries));
    contract_entries.push_back(Json(std::move(entry)));
  }
  root["contracts"] = Json(std::move(contract_entries));
  JsonArray metric_entries;
  for (const MetricDelta& metric : metrics) {
    JsonObject entry;
    entry["name"] = metric.name;
    entry["before"] = metric.before;
    entry["after"] = metric.after;
    entry["delta"] = metric.delta();
    metric_entries.push_back(Json(std::move(entry)));
  }
  root["metrics"] = Json(std::move(metric_entries));
  return Json(std::move(root));
}

DiffReport diff_ledgers(const ProvenanceLedger& a, const ProvenanceLedger& b) {
  DiffReport report;
  report.label_a = "ledger " + a.run_fingerprint();
  report.label_b = "ledger " + b.run_fingerprint();
  report.fingerprint_a = a.run_fingerprint();
  report.fingerprint_b = b.run_fingerprint();

  std::set<std::string> ids;
  for (const std::string& id : a.contract_ids()) ids.insert(id);
  for (const std::string& id : b.contract_ids()) ids.insert(id);
  for (const std::string& id : ids) {  // std::set: sorted, deterministic
    const ContractCapture* before = a.find(id);
    const ContractCapture* after = b.find(id);
    ContractDelta delta;
    delta.contract_id = id;
    delta.before = before != nullptr ? before->verdict : "";
    delta.after = after != nullptr ? after->verdict : "";
    if (before != nullptr && after != nullptr) {
      delta.flipped = before->verdict != after->verdict;
      delta.notes = capture_notes(*before, *after);
      if (!delta.flipped && delta.notes.empty()) {
        ++report.contracts_unchanged;
        continue;
      }
    }
    report.contracts.push_back(std::move(delta));
  }
  return report;
}

DiffReport diff_runs(const RunRecord& a, const RunRecord& b) {
  DiffReport report;
  report.label_a = a.kind + " " + a.label;
  report.label_b = b.kind + " " + b.label;
  report.fingerprint_a = a.input_fingerprint;
  report.fingerprint_b = b.input_fingerprint;

  std::set<std::string> ids;
  for (const auto& [id, outcome] : a.contracts) ids.insert(id);
  for (const auto& [id, outcome] : b.contracts) ids.insert(id);
  for (const std::string& id : ids) {
    const auto before_it = a.contracts.find(id);
    const auto after_it = b.contracts.find(id);
    const ContractOutcome* before = before_it != a.contracts.end() ? &before_it->second : nullptr;
    const ContractOutcome* after = after_it != b.contracts.end() ? &after_it->second : nullptr;
    ContractDelta delta;
    delta.contract_id = id;
    delta.before = before != nullptr ? before->verdict : "";
    delta.after = after != nullptr ? after->verdict : "";
    if (before != nullptr && after != nullptr) {
      delta.flipped = before->verdict != after->verdict;
      if (!delta.flipped && before->signature_digest != after->signature_digest)
        delta.notes.push_back("verdict signature changed: " + before->signature_digest +
                              " -> " + after->signature_digest);
      if (before->slice_fp != after->slice_fp)
        delta.notes.push_back("slice fingerprint: " + or_absent(before->slice_fp) + " -> " +
                              or_absent(after->slice_fp));
      if (!delta.flipped && delta.notes.empty()) {
        ++report.contracts_unchanged;
        continue;
      }
    }
    report.contracts.push_back(std::move(delta));
  }

  std::set<std::string> metric_names;
  for (const auto& [name, value] : a.metrics) metric_names.insert(name);
  for (const auto& [name, value] : b.metrics) metric_names.insert(name);
  for (const std::string& name : metric_names) {
    const auto before = a.metrics.find(name);
    const auto after = b.metrics.find(name);
    MetricDelta delta;
    delta.name = name;
    delta.before = before != a.metrics.end() ? before->second : 0.0;
    delta.after = after != b.metrics.end() ? after->second : 0.0;
    if (delta.before == delta.after) continue;
    report.metrics.push_back(std::move(delta));
  }
  return report;
}

std::string render_diff_text(const DiffReport& report) {
  std::string out;
  out += "=== lisa diff: " + report.label_a + " -> " + report.label_b + " ===\n";
  out += "fingerprints: " + or_absent(report.fingerprint_a) + " -> " +
         or_absent(report.fingerprint_b) +
         (report.fingerprint_a == report.fingerprint_b ? " (same inputs)" : "") + "\n\n";
  if (report.identical()) {
    out += "no differences: " + std::to_string(report.contracts_unchanged) +
           " contract(s) decided identically\n";
    return out;
  }
  out += "verdict flips: " + std::to_string(report.verdict_flips()) + "\n";
  out += "contracts changed: " + std::to_string(report.contracts.size()) + " (unchanged " +
         std::to_string(report.contracts_unchanged) + ")\n\n";
  for (const ContractDelta& contract : report.contracts) {
    out += (contract.flipped ? "[FLIP] " : "[edit] ") + contract.contract_id + ": " +
           or_absent(contract.before) + " -> " + or_absent(contract.after) + "\n";
    for (const std::string& note : contract.notes) out += "    " + note + "\n";
  }
  if (!report.metrics.empty()) {
    out += "\nmetrics:\n";
    for (const MetricDelta& metric : report.metrics) {
      char line[192];
      std::snprintf(line, sizeof(line), "  %-28s %12.2f -> %12.2f  (%+.2f)\n",
                    metric.name.c_str(), metric.before, metric.after, metric.delta());
      out += line;
    }
  }
  return out;
}

namespace {

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return out;
}

const char* verdict_class(const std::string& verdict) {
  if (verdict == "violated") return "bad";
  if (verdict == "passed") return "good";
  return "warn";
}

}  // namespace

std::string render_diff_html(const DiffReport& report) {
  // Same inline-CSS conventions as render_ledger_html: self-contained, no
  // external assets, suitable for CI artifact upload.
  std::string out;
  out +=
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>LISA gate diff</title>\n<style>\n"
      "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:64rem;"
      "color:#1a1a2e;line-height:1.45}\n"
      "code{background:#f2f2f7;padding:0 .2em;border-radius:3px;"
      "font-size:.92em;word-break:break-all}\n"
      "table{border-collapse:collapse;margin:.5rem 0;width:100%}\n"
      "th,td{border:1px solid #d8d8e0;padding:.25rem .5rem;text-align:left;"
      "vertical-align:top;font-size:.9rem}\n"
      "th{background:#f7f7fb}\n"
      ".badge{padding:.1em .5em;border-radius:1em;font-size:.85em;color:#fff}\n"
      ".badge.bad,td.bad{background:#c0392b;color:#fff}\n"
      ".badge.good,td.good{background:#1e8449;color:#fff}\n"
      ".badge.warn{background:#b9770e}\n"
      ".meta{color:#555;font-size:.9rem;margin:.2rem 0}\n"
      "ul.notes{margin:.2rem 0 .6rem 1.2rem;font-size:.9rem}\n"
      "</style></head><body>\n";
  out += "<h1>LISA gate diff</h1>\n";
  out += "<p class=\"meta\"><code>" + html_escape(report.label_a) + "</code> &rarr; <code>" +
         html_escape(report.label_b) + "</code> · fingerprints <code>" +
         html_escape(or_absent(report.fingerprint_a)) + "</code> &rarr; <code>" +
         html_escape(or_absent(report.fingerprint_b)) + "</code></p>\n";
  if (report.identical()) {
    out += "<p>No differences: " + std::to_string(report.contracts_unchanged) +
           " contract(s) decided identically.</p>\n</body></html>\n";
    return out;
  }
  out += "<p><strong>" + std::to_string(report.verdict_flips()) +
         " verdict flip(s)</strong>, " + std::to_string(report.contracts.size()) +
         " contract(s) changed, " + std::to_string(report.contracts_unchanged) +
         " unchanged.</p>\n";
  for (const ContractDelta& contract : report.contracts) {
    out += "<h3><code>" + html_escape(contract.contract_id) + "</code> <span class=\"badge " +
           verdict_class(contract.before.empty() ? "warn" : contract.before) + "\">" +
           html_escape(or_absent(contract.before)) + "</span> &rarr; <span class=\"badge " +
           verdict_class(contract.after.empty() ? "warn" : contract.after) + "\">" +
           html_escape(or_absent(contract.after)) + "</span>" +
           (contract.flipped ? " — verdict flip" : "") + "</h3>\n";
    if (!contract.notes.empty()) {
      out += "<ul class=\"notes\">\n";
      for (const std::string& note : contract.notes)
        out += "<li>" + html_escape(note) + "</li>\n";
      out += "</ul>\n";
    }
  }
  if (!report.metrics.empty()) {
    out += "<h3>Metrics</h3><table><tr><th>metric</th><th>before</th><th>after</th>"
           "<th>delta</th></tr>\n";
    for (const MetricDelta& metric : report.metrics)
      out += "<tr><td><code>" + html_escape(metric.name) + "</code></td><td>" +
             format_value(metric.before) + "</td><td>" + format_value(metric.after) +
             "</td><td>" + format_value(metric.delta()) + "</td></tr>\n";
    out += "</table>\n";
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace lisa::obs
