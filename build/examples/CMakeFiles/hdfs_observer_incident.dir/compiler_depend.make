# Empty compiler generated dependencies file for hdfs_observer_incident.
# This may be replaced when dependencies are built.
