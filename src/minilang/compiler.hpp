// AST → bytecode compiler for the MiniLang VM.
#pragma once

#include <stdexcept>

#include "minilang/bytecode.hpp"

namespace lisa::minilang {

/// Raised for constructs the compiler cannot lower (none in the current
/// language; kept for forward compatibility) or internal inconsistencies.
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Compiles every function of `program`. The returned Module borrows
/// `program` (struct layouts for `new`), which must outlive it.
[[nodiscard]] Module compile(const Program& program);

}  // namespace lisa::minilang
