// Wall-clock stopwatch used by the pipeline stage-latency benchmarks (Fig. 5).
#pragma once

#include <chrono>

namespace lisa::support {

/// Process-wide monotonic epoch: fixed at the first call anywhere in the
/// process. Log-line prefixes (support/log) and trace-span timestamps
/// (obs/trace) both measure from it, so the two streams correlate.
inline std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Milliseconds elapsed since process_epoch().
inline double process_elapsed_ms() {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   process_epoch())
      .count();
}

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { start_ = Clock::now(); }

  /// Elapsed microseconds since construction or last reset().
  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_us() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lisa::support
