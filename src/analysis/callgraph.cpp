#include "analysis/callgraph.hpp"

#include <algorithm>
#include <functional>

#include "minilang/interp.hpp"

namespace lisa::analysis {

using minilang::Expr;
using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;

namespace {

void collect_calls(const Expr& expr, const std::function<void(const Expr&)>& on_call) {
  if (expr.kind == Expr::Kind::kCall) on_call(expr);
  for (const minilang::ExprPtr& arg : expr.args) collect_calls(*arg, on_call);
}

void walk_stmts(const std::vector<minilang::StmtPtr>& stmts, const Stmt* enclosing_sync,
                const std::function<void(const Stmt&, const Expr&, const Stmt*)>& on_call) {
  for (const minilang::StmtPtr& stmt : stmts) {
    const auto visit_expr = [&](const minilang::ExprPtr& expr) {
      if (expr)
        collect_calls(*expr,
                      [&](const Expr& call) { on_call(*stmt, call, enclosing_sync); });
    };
    visit_expr(stmt->expr);
    visit_expr(stmt->expr2);
    const Stmt* body_sync =
        stmt->kind == Stmt::Kind::kSync ? stmt.get() : enclosing_sync;
    walk_stmts(stmt->body, body_sync, on_call);
    walk_stmts(stmt->else_body, enclosing_sync, on_call);
  }
}

}  // namespace

CallGraph CallGraph::build(const Program& program) {
  CallGraph graph;
  graph.program_ = &program;
  for (const FuncDecl& fn : program.functions) {
    graph.callees_[fn.name];  // ensure node exists
    graph.callers_[fn.name];
    walk_stmts(fn.body, /*enclosing_sync=*/nullptr,
               [&](const Stmt& stmt, const Expr& call, const Stmt* enclosing_sync) {
                 CallSite site;
                 site.caller = &fn;
                 site.stmt = &stmt;
                 site.call = &call;
                 site.inside_sync = enclosing_sync != nullptr;
                 site.sync_stmt = enclosing_sync;
                 graph.sites_.push_back(site);
                 graph.callees_[fn.name].insert(call.text);
                 graph.callers_[call.text].insert(fn.name);
               });
  }
  return graph;
}

std::vector<const CallSite*> CallGraph::sites_calling(const std::string& name) const {
  std::vector<const CallSite*> out;
  for (const CallSite& site : sites_)
    if (site.callee() == name) out.push_back(&site);
  return out;
}

const std::set<std::string>& CallGraph::callees_of(const std::string& name) const {
  static const std::set<std::string> empty;
  const auto it = callees_.find(name);
  return it == callees_.end() ? empty : it->second;
}

const std::set<std::string>& CallGraph::callers_of(const std::string& name) const {
  static const std::set<std::string> empty;
  const auto it = callers_.find(name);
  return it == callers_.end() ? empty : it->second;
}

std::vector<const FuncDecl*> CallGraph::entry_functions() const {
  std::vector<const FuncDecl*> out;
  for (const FuncDecl& fn : program_->functions) {
    if (fn.has_annotation("test")) continue;
    const bool annotated = fn.has_annotation("entry");
    // A function is a root if annotated, or if no non-test function calls it.
    bool has_real_caller = false;
    for (const std::string& caller : callers_of(fn.name)) {
      const FuncDecl* caller_fn = program_->find_function(caller);
      if (caller_fn != nullptr && !caller_fn->has_annotation("test")) {
        has_real_caller = true;
        break;
      }
    }
    if (annotated || !has_real_caller) out.push_back(&fn);
  }
  return out;
}

std::vector<std::vector<std::string>> CallGraph::chains_to(const std::string& target,
                                                           std::size_t max_chains) const {
  std::vector<std::vector<std::string>> chains;
  const std::vector<const FuncDecl*> entries = entry_functions();
  std::set<std::string> entry_names;
  for (const FuncDecl* fn : entries) entry_names.insert(fn->name);

  // DFS backwards from target to entries, avoiding cycles.
  std::vector<std::string> stack{target};
  std::set<std::string> on_stack{target};
  const std::function<void()> dfs = [&] {
    if (chains.size() >= max_chains) return;
    const std::string& current = stack.back();
    if (entry_names.count(current) > 0) {
      chains.emplace_back(stack.rbegin(), stack.rend());
      // An entry can itself be called by another entry; keep exploring.
    }
    for (const std::string& caller : callers_of(current)) {
      if (on_stack.count(caller) > 0) continue;
      const FuncDecl* caller_fn = program_->find_function(caller);
      if (caller_fn == nullptr || caller_fn->has_annotation("test")) continue;
      stack.push_back(caller);
      on_stack.insert(caller);
      dfs();
      on_stack.erase(caller);
      stack.pop_back();
    }
  };
  dfs();
  return chains;
}

Condensation CallGraph::condensation() const {
  // Iterative Tarjan over user functions in declaration order. Tarjan pops
  // each SCC only after all components reachable from it are popped, so the
  // emission order is already reverse topological (callees before callers).
  struct NodeState {
    int index = -1;
    int lowlink = -1;
    bool on_stack = false;
  };
  Condensation result;
  std::map<std::string, NodeState> state;
  std::vector<std::string> stack;
  int next_index = 0;

  const std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
    NodeState& vs = state[v];
    vs.index = vs.lowlink = next_index++;
    vs.on_stack = true;
    stack.push_back(v);

    for (const std::string& callee : callees_of(v)) {
      if (program_->find_function(callee) == nullptr) continue;  // builtin leaf
      NodeState& ws = state[callee];
      if (ws.index < 0) {
        strongconnect(callee);
        vs.lowlink = std::min(vs.lowlink, state[callee].lowlink);
      } else if (ws.on_stack) {
        vs.lowlink = std::min(vs.lowlink, ws.index);
      }
    }

    if (vs.lowlink == vs.index) {
      Condensation::Component component;
      while (true) {
        const std::string w = stack.back();
        stack.pop_back();
        state[w].on_stack = false;
        result.component_of[w] = static_cast<int>(result.components.size());
        component.members.push_back(w);
        if (w == v) break;
      }
      component.recursive = component.members.size() > 1 ||
                            callees_of(component.members.front()).count(component.members.front()) > 0;
      result.components.push_back(std::move(component));
    }
  };

  for (const FuncDecl& fn : program_->functions)
    if (state[fn.name].index < 0) strongconnect(fn.name);
  return result;
}

bool CallGraph::reaches_blocking(const std::string& name) const {
  const auto cached = blocking_cache_.find(name);
  if (cached != blocking_cache_.end()) return cached->second;
  blocking_cache_[name] = false;  // cycle guard: assume non-blocking on cycles
  bool result = false;
  if (minilang::blocking_builtins().count(name) > 0) {
    result = true;
  } else {
    const FuncDecl* fn = program_->find_function(name);
    if (fn != nullptr && fn->has_annotation("blocking")) {
      result = true;
    } else if (fn != nullptr) {
      for (const std::string& callee : callees_of(name)) {
        if (reaches_blocking(callee)) {
          result = true;
          break;
        }
      }
    }
  }
  blocking_cache_[name] = result;
  return result;
}

}  // namespace lisa::analysis
