#include "systems/hdfs/namenode.hpp"

#include "support/strings.hpp"

namespace lisa::systems::hdfs {

void ActiveNameNode::add_file(const std::string& path, std::int64_t block_id,
                              std::vector<std::string> locations) {
  files_[path] = BlockInfo{block_id, std::move(locations)};
}

std::optional<BlockInfo> ActiveNameNode::get_block(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

ObserverNameNode::ObserverNameNode(EventLoop& loop, MessageBus& bus, std::string name)
    : loop_(loop), bus_(bus), name_(std::move(name)) {
  bus_.register_endpoint(name_, [this](const Message& message) {
    if (message.type != "block_report") return;
    // payload: "<path>|<block_id>|<loc1,loc2,...>"
    const std::vector<std::string> parts = support::split(message.payload, '|');
    if (parts.size() != 3) return;
    BlockInfo info;
    info.block_id = std::stoll(parts[1]);
    if (!parts[2].empty())
      for (const std::string& loc : support::split(parts[2], ',')) info.locations.push_back(loc);
    replica_[parts[0]] = std::move(info);
    ++stats_.block_reports_applied;
  });
}

void ObserverNameNode::receive_report_later(const ActiveNameNode& active,
                                            const std::string& path,
                                            std::int64_t extra_delay_ms) {
  const std::optional<BlockInfo> block = active.get_block(path);
  if (!block.has_value()) return;
  // Until the (delayed) full report lands, the observer knows the block id
  // but not its locations — exactly the stale state of the incident.
  BlockInfo placeholder;
  placeholder.block_id = block->block_id;
  replica_[path] = std::move(placeholder);
  std::string payload = path + "|" + std::to_string(block->block_id) + "|" +
                        support::join(block->locations, ",");
  loop_.schedule_after(extra_delay_ms, [this, payload = std::move(payload)] {
    bus_.send("active-nn", name_, "block_report", payload);
  });
}

std::optional<BlockInfo> ObserverNameNode::read(const std::string& path, bool check_locations) {
  const auto it = replica_.find(path);
  if (it == replica_.end()) return std::nullopt;
  if (it->second.locations.empty()) {
    if (check_locations) {
      // The fixed behaviour: stale observer redirects to the active.
      ++stats_.reads_redirected;
      return std::nullopt;
    }
    ++stats_.empty_location_reads;  // the incident symptom
  }
  ++stats_.reads_served;
  return it->second;
}

std::vector<BlockInfo> ObserverNameNode::batched_listing(const std::vector<std::string>& paths,
                                                         bool check_locations) {
  std::vector<BlockInfo> out;
  for (const std::string& path : paths) {
    const auto it = replica_.find(path);
    if (it == replica_.end()) continue;
    if (it->second.locations.empty()) {
      if (check_locations) {
        ++stats_.reads_redirected;
        continue;
      }
      ++stats_.empty_location_reads;
    }
    ++stats_.reads_served;
    out.push_back(it->second);
  }
  return out;
}

}  // namespace lisa::systems::hdfs
