// SMT-LIB 2 export.
//
// The mini solver decides the contract fragment natively, but every query it
// answers can also be exported as an SMT-LIB 2 script so results are
// cross-checkable against a real Z3 where one is available (the paper's
// actual backend). Boolean variables become Bool constants, integer path
// variables become Int constants, and nullness indicators stay Bool.
#pragma once

#include <string>

#include "smt/formula.hpp"

namespace lisa::smt {

/// Renders `f` as a complete SMT-LIB 2 script: declarations for every
/// variable, one (assert ...), and (check-sat).
[[nodiscard]] std::string to_smtlib(const FormulaPtr& f);

/// Renders the §3.2 complement query `trace ∧ ¬checker` (sat = violation).
[[nodiscard]] std::string complement_query_smtlib(const FormulaPtr& trace,
                                                  const FormulaPtr& checker);

}  // namespace lisa::smt
