#include "systems/cassandra/read_repair.hpp"

namespace lisa::systems::cassandra {

void ReplicaSet::write_row(const std::string& key, const std::string& value) {
  rows_[key] = Row{value, false, 0};
}

void ReplicaSet::delete_row(const std::string& key) {
  Row& row = rows_[key];
  row.tombstoned = true;
  row.tombstone_ms = loop_.now();
}

bool ReplicaSet::is_purgeable(const std::string& key) const {
  const auto it = rows_.find(key);
  if (it == rows_.end() || !it->second.tombstoned) return false;
  return loop_.now() >= it->second.tombstone_ms + gc_grace_ms_;
}

bool ReplicaSet::repair_one(const std::string& key, bool check) {
  const auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  if (check && is_purgeable(key)) {
    ++stats_.repairs_skipped;
    return false;
  }
  if (is_purgeable(key)) ++stats_.purgeable_repaired;
  ++stats_.repairs_sent;
  return true;
}

bool ReplicaSet::read_repair(const std::string& key) {
  return repair_one(key, guards_.foreground_checks_purgeable);
}

std::size_t ReplicaSet::background_repair() {
  std::size_t repaired = 0;
  for (const auto& [key, row] : rows_)
    if (repair_one(key, guards_.background_checks_purgeable)) ++repaired;
  return repaired;
}

void ReplicaSet::add_counter_node(const std::string& host, bool bootstrapping) {
  counters_[host] = CounterNode{bootstrapping, 0};
}

void ReplicaSet::finish_bootstrap(const std::string& host) {
  const auto it = counters_.find(host);
  if (it == counters_.end()) return;
  if (it->second.bootstrapping) {
    it->second.bootstrapping = false;
    // Streamed state merges on top of whatever was applied locally — if
    // mutations landed during bootstrap, they are now counted twice.
    it->second.value *= 2;
  }
}

bool ReplicaSet::apply_counter(const std::string& host, std::int64_t delta, bool check) {
  const auto it = counters_.find(host);
  if (it == counters_.end()) return false;
  if (check && it->second.bootstrapping) {
    ++stats_.counters_rejected;
    return false;
  }
  if (it->second.bootstrapping) ++stats_.counters_on_bootstrap;
  it->second.value += delta;
  ++stats_.counters_applied;
  return true;
}

bool ReplicaSet::write_counter(const std::string& host, std::int64_t delta) {
  return apply_counter(host, delta, guards_.single_counter_checks_bootstrap);
}

std::size_t ReplicaSet::write_counter_batch(const std::string& host,
                                            const std::vector<std::int64_t>& deltas) {
  std::size_t applied = 0;
  for (const std::int64_t delta : deltas)
    if (apply_counter(host, delta, guards_.batch_counter_checks_bootstrap)) ++applied;
  return applied;
}

std::int64_t ReplicaSet::counter_value(const std::string& host) const {
  const auto it = counters_.find(host);
  return it == counters_.end() ? 0 : it->second.value;
}

}  // namespace lisa::systems::cassandra
