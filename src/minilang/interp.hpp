// Tree-walking interpreter for MiniLang.
//
// This is the *concrete* engine: it runs corpus programs and their @test
// functions natively (the concolic engine in src/concolic re-implements the
// walk with shadow symbolic state). A virtual clock and a pluggable observer
// make executions deterministic and measurable.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minilang/ast.hpp"
#include "minilang/value.hpp"

namespace lisa::minilang {

/// MiniLang-level exception (a `throw` that escaped to the host).
class MiniThrow : public std::runtime_error {
 public:
  explicit MiniThrow(Value value)
      : std::runtime_error("uncaught MiniLang exception: " + value.to_display()),
        value_(std::move(value)) {}
  [[nodiscard]] const Value& value() const noexcept { return value_; }

 private:
  Value value_;
};

/// Engine-level error: type confusion, unknown function.
class InterpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Step-limit (fuel) exhaustion — a *resource* outcome, not a program bug.
/// Distinct from InterpError so the checking stack can route it into
/// inconclusive accounting instead of reporting a generic engine failure;
/// still an InterpError subtype so existing catch sites keep working.
class StepLimitExceeded : public InterpError {
 public:
  explicit StepLimitExceeded(std::int64_t limit)
      : InterpError("step limit exhausted after " + std::to_string(limit) +
                    " statements: possible non-terminating MiniLang program"),
        limit_(limit) {}
  [[nodiscard]] std::int64_t limit() const noexcept { return limit_; }

 private:
  std::int64_t limit_ = 0;
};

/// Mutable view of the executing frame, handed to state-observing
/// callbacks (ExecObserver::on_state). Lookups see every scope of the
/// current function frame, innermost first; returned pointers stay valid
/// only for the duration of the callback. Mutation through the pointer is
/// deliberate — the counterexample narrator (obs/explain.hpp) injects
/// witness state this way.
class StateAccess {
 public:
  virtual ~StateAccess() = default;
  /// The live slot for local `name`, or nullptr when no scope defines it.
  [[nodiscard]] virtual Value* lookup(const std::string& name) = 0;
  /// Every visible local name (unordered; callers sort for determinism).
  [[nodiscard]] virtual std::vector<std::string> local_names() const = 0;
  /// Monitors held at this statement.
  [[nodiscard]] virtual int sync_depth() const = 0;
};

/// Observation points used by coverage measurement and the runtime
/// blocking-in-sync detector. All callbacks default to no-ops.
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  virtual void on_stmt(const FuncDecl& fn, const Stmt& stmt) { (void)fn, (void)stmt; }
  virtual void on_call(const FuncDecl& fn) { (void)fn; }
  /// Fired when a blocking builtin (or @blocking function) executes.
  /// `sync_depth` > 0 means the call happens while holding a monitor.
  virtual void on_blocking(const std::string& name, int sync_depth) {
    (void)name, (void)sync_depth;
  }
  /// Opt-in state observation: when wants_state() returns true, on_state
  /// fires before every statement with a mutable view of the live frame.
  /// Kept behind the flag so the common observers pay one virtual call,
  /// not a frame adapter, per statement.
  [[nodiscard]] virtual bool wants_state() { return false; }
  virtual void on_state(const FuncDecl& fn, const Stmt& stmt, StateAccess& state) {
    (void)fn, (void)stmt, (void)state;
  }
};

/// Names of builtins that model blocking I/O (serialization, disk, network).
/// These advance the virtual clock and trip the blocking-in-sync detector.
[[nodiscard]] const std::unordered_set<std::string>& blocking_builtins();

class Interp {
 public:
  /// `program` must outlive the interpreter.
  explicit Interp(const Program& program);

  /// Calls a MiniLang function by name. Throws MiniThrow for uncaught
  /// MiniLang exceptions, InterpError for engine errors.
  Value call(const std::string& function, std::vector<Value> args);

  /// Runs one @test function; returns true on success, false if the test
  /// threw. Failure detail is available via last_error().
  bool run_test(const std::string& test_name);

  /// Runs every @test function; returns (passed, failed) counts.
  std::pair<int, int> run_all_tests();

  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  /// True when the last run_test() failed because the step limit ran out
  /// (see set_fuel) rather than a program error — a structured outcome the
  /// caller should surface as inconclusive, not as a test failure.
  [[nodiscard]] bool last_run_hit_step_limit() const { return step_limit_hit_; }

  /// Virtual clock (milliseconds). now() in MiniLang reads this.
  [[nodiscard]] std::int64_t now_ms() const { return now_ms_; }
  void set_now_ms(std::int64_t ms) { now_ms_ = ms; }

  /// Per-blocking-call latency added to the virtual clock.
  void set_blocking_latency_ms(std::int64_t ms) { blocking_latency_ms_ = ms; }

  /// Upper bound on executed statements per call(); guards against
  /// non-terminating corpus programs. Default 2 million.
  void set_fuel(std::int64_t fuel) { fuel_limit_ = fuel; }

  void set_observer(ExecObserver* observer) { observer_ = observer; }

  /// Output accumulated by print(); cleared by take_output().
  [[nodiscard]] std::string take_output() { return std::exchange(output_, std::string()); }

  /// Statement ids executed since construction (coverage).
  [[nodiscard]] const std::unordered_set<int>& covered_stmts() const { return covered_; }

 private:
  struct Frame {
    std::vector<std::unordered_map<std::string, Value>> scopes;
  };
  enum class Flow { kNormal, kReturn, kBreak, kContinue };

  Value call_function(const FuncDecl& fn, std::vector<Value> args);
  Flow exec_block(const std::vector<StmtPtr>& stmts, Frame& frame, Value& return_value);
  Flow exec_stmt(const Stmt& stmt, Frame& frame, Value& return_value);
  Value eval(const Expr& expr, Frame& frame);
  Value eval_binary(const Expr& expr, Frame& frame);
  Value call_builtin(const std::string& name, const Expr& expr, Frame& frame);
  Value* lookup(Frame& frame, const std::string& name);
  void assign_lvalue(const Expr& lvalue, Value value, Frame& frame);
  void burn_fuel();
  [[nodiscard]] bool truthy(const Value& v, const Expr& where) const;

  const Program& program_;
  ExecObserver* observer_ = nullptr;
  const FuncDecl* current_fn_ = nullptr;  // function whose body is executing
  std::string output_;
  std::string last_error_;
  std::int64_t now_ms_ = 0;
  std::int64_t blocking_latency_ms_ = 5;
  std::int64_t fuel_limit_ = 2'000'000;
  std::int64_t fuel_used_ = 0;
  bool step_limit_hit_ = false;
  int sync_depth_ = 0;
  int call_depth_ = 0;
  std::uint64_t next_object_id_ = 1;
  std::unordered_set<int> covered_;
};

}  // namespace lisa::minilang
