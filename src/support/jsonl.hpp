// Shared JSONL journal framing: fingerprinted headers over line-oriented
// JSON files.
//
// Two artifacts use the format — the checkpoint journal (lisa/journal.hpp,
// kind "lisa-check") and the provenance ledger (obs/provenance.hpp, kind
// "lisa-ledger"). Both start with a one-line header
//
//   {"journal":"<kind>","version":N,"fingerprint":"<hex>"}
//
// followed by one JSON document per line. The fingerprint binds the file to
// the run's identifying inputs; a mismatched header means "different inputs,
// do not trust". This header centralizes the hash and the header handling so
// the two formats cannot drift apart.
#pragma once

#include <cstdint>
#include <string>

#include "support/json.hpp"

namespace lisa::support {

/// FNV-1a 64-bit content hash as lowercase hex. Stable across runs and
/// builds, cheap, and collision-resistant enough for cache keying — none of
/// the consumers treat it as a security boundary.
[[nodiscard]] std::string fnv1a_fingerprint(const std::string& inputs);

/// The header line (no trailing newline) for a journal of `kind`.
[[nodiscard]] std::string jsonl_header(const std::string& kind, std::int64_t version,
                                       const std::string& fingerprint);

/// Parses `line` as a journal header and checks kind, version, and (when
/// `expected_fingerprint` is non-empty) the fingerprint. Returns false on a
/// torn/malformed line or any mismatch.
[[nodiscard]] bool jsonl_header_matches(const std::string& line, const std::string& kind,
                                        std::int64_t version,
                                        const std::string& expected_fingerprint);

}  // namespace lisa::support
