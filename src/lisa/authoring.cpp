#include "lisa/authoring.hpp"

#include <set>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "smt/minilang_bridge.hpp"
#include "support/strings.hpp"

namespace lisa::core {

namespace {

/// Variable roots visible in a function frame: parameters plus let-bound
/// locals anywhere in the body (dominance is approximated generously; the
/// checker's unmappable verdict catches the remaining cases path-wise).
std::set<std::string> frame_roots(const minilang::FuncDecl& fn) {
  std::set<std::string> roots;
  for (const minilang::Param& param : fn.params) roots.insert(param.name);
  const std::function<void(const std::vector<minilang::StmtPtr>&)> walk =
      [&](const std::vector<minilang::StmtPtr>& stmts) {
        for (const minilang::StmtPtr& stmt : stmts) {
          if (stmt->kind == minilang::Stmt::Kind::kLet) roots.insert(stmt->name);
          walk(stmt->body);
          walk(stmt->else_body);
        }
      };
  walk(fn.body);
  return roots;
}

}  // namespace

AuthoringFeedback author_rule(const minilang::Program& program, const DeveloperRule& rule) {
  AuthoringFeedback feedback;

  if (rule.id.empty()) feedback.errors.push_back("rule id must not be empty");
  if (rule.operation.empty()) feedback.errors.push_back("operation must name a function");

  const std::string target_fragment = rule.operation + "(";
  const auto targets = analysis::find_target_statements(program, target_fragment);
  if (targets.empty())
    feedback.errors.push_back("operation '" + rule.operation +
                              "' has no call site in the codebase");

  const auto condition = smt::parse_condition(rule.required_condition);
  if (!condition.has_value()) {
    feedback.errors.push_back(
        "required_condition is outside the checkable fragment (allowed: boolean "
        "structure over field paths, null tests, and integer comparisons): " +
        rule.required_condition);
  } else {
    // Every condition root must be visible in at least one target frame.
    std::set<std::string> roots;
    for (const std::string& var : (*condition)->variables()) {
      const std::size_t cut = var.find_first_of(".#");
      roots.insert(cut == std::string::npos ? var : var.substr(0, cut));
    }
    for (const std::string& root : roots) {
      bool visible = false;
      for (const auto& [fn, stmt] : targets) {
        (void)stmt;
        if (frame_roots(*fn).count(root) > 0) visible = true;
      }
      if (!visible)
        feedback.errors.push_back("condition variable '" + root +
                                  "' is not visible in any function containing the "
                                  "operation — name it as the target frame sees it");
    }
  }

  if (feedback.errors.empty()) {
    // Vacuity warning: no entry path reaches any target.
    const analysis::CallGraph graph = analysis::CallGraph::build(program);
    analysis::TreeOptions options;
    options.contract_condition = *condition;
    const analysis::ExecutionTree tree =
        analysis::build_execution_tree(program, graph, target_fragment, options);
    if (tree.paths.empty())
      feedback.warnings.push_back(
          "rule is vacuous on this codebase: no entry path reaches the operation");

    feedback.accepted = true;
    feedback.contract.id = rule.id;
    feedback.contract.case_id = rule.id;
    feedback.contract.system = "developer-authored";
    feedback.contract.kind = corpus::SemanticsKind::kStatePredicate;
    feedback.contract.description = rule.behavior;
    feedback.contract.high_level = rule.behavior;
    feedback.contract.target_fragment = target_fragment;
    feedback.contract.condition_text = rule.required_condition;
    feedback.contract.condition = smt::to_nnf(*condition);
  }
  return feedback;
}

}  // namespace lisa::core
