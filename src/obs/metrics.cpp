#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

namespace lisa::obs {

namespace {

/// CAS-loop update for atomic min/max over doubles.
template <typename Better>
void update_extreme(std::atomic<double>& slot, double value, Better better) {
  double current = slot.load(std::memory_order_relaxed);
  while (better(value, current) &&
         !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN → underflow bucket
  const int raw = static_cast<int>(
      std::floor(std::log2(value) * kSubBucketsPerOctave)) -
      kMinExponent * kSubBucketsPerOctave + 1;
  return std::clamp(raw, 0, kBuckets - 1);
}

double Histogram::bucket_mid(int index) {
  // Inverse of bucket_index: geometric midpoint of the bucket's range.
  const double exponent =
      (static_cast<double>(index - 1) + 0.5) / kSubBucketsPerOctave +
      kMinExponent;
  return std::exp2(exponent);
}

void Histogram::record(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (!has_samples_.exchange(true, std::memory_order_relaxed)) {
    // First sample seeds both extremes; racing seeders are reconciled by
    // the CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  update_extreme(min_, value, [](double a, double b) { return a < b; });
  update_extreme(max_, value, [](double a, double b) { return a > b; });
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return has_samples_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  return has_samples_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank over the bucketed distribution. Rank 1 is the smallest
  // sample and rank n the largest — both tracked exactly, so return them
  // directly instead of a bucket midpoint.
  const std::int64_t rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank <= 1) return min();
  if (rank >= n) return max();
  std::int64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank && cumulative > 0)
      return std::clamp(bucket_mid(i), min(), max());
  }
  return max();
}

support::Json Histogram::to_json() const {
  support::JsonObject out;
  out["count"] = count();
  out["sum"] = sum();
  out["min"] = min();
  out["max"] = max();
  out["mean"] = mean();
  out["p50"] = quantile(0.50);
  out["p95"] = quantile(0.95);
  out["p99"] = quantile(0.99);
  return support::Json(std::move(out));
}

void Histogram::merge(const Histogram& other) {
  if (other.count() == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    const std::int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (!has_samples_.exchange(true, std::memory_order_relaxed)) {
    min_.store(other.min(), std::memory_order_relaxed);
    max_.store(other.max(), std::memory_order_relaxed);
  }
  update_extreme(min_, other.min(), [](double a, double b) { return a < b; });
  update_extreme(max_, other.max(), [](double a, double b) { return a > b; });
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  has_samples_.store(false, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

support::Json MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  support::JsonObject counters;
  for (const auto& [name, counter] : counters_) counters[name] = counter->value();
  support::JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
  support::JsonObject histograms;
  for (const auto& [name, histogram] : histograms_) histograms[name] = histogram->to_json();
  support::JsonObject root;
  root["counters"] = support::Json(std::move(counters));
  root["gauges"] = support::Json(std::move(gauges));
  root["histograms"] = support::Json(std::move(histograms));
  return support::Json(std::move(root));
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

std::string prometheus_metric_name(const std::string& name) {
  // Strip an embedded `{...}` label suffix; the caller renders it separately.
  const std::size_t brace = name.find('{');
  const std::string base = brace == std::string::npos ? name : name.substr(0, brace);
  std::string out = "lisa_";
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

namespace {

/// Renders the `{key="value",...}` suffix for a registry name carrying
/// embedded labels (`budget.exhausted{reason=deadline}`); "" when none.
/// `extra` label pairs (e.g. quantile) are appended after the embedded ones.
std::string prometheus_labels(const std::string& name,
                              const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  std::vector<std::pair<std::string, std::string>> labels;
  const std::size_t brace = name.find('{');
  if (brace != std::string::npos && name.back() == '}') {
    const std::string inside = name.substr(brace + 1, name.size() - brace - 2);
    std::size_t start = 0;
    while (start < inside.size()) {
      std::size_t end = inside.find(',', start);
      if (end == std::string::npos) end = inside.size();
      const std::string pair = inside.substr(start, end - start);
      const std::size_t eq = pair.find('=');
      if (eq != std::string::npos)
        labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
      start = end + 1;
    }
  }
  labels.insert(labels.end(), extra.begin(), extra.end());
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    // Label names get the same charset sanitization as metric names
    // (without the prefix); values are escaped, not sanitized.
    std::string clean_key;
    for (const char c : key) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      clean_key += ok ? c : '_';
    }
    out += clean_key + "=\"" + prometheus_escape_label(value) + "\"";
  }
  out += "}";
  return out;
}

std::string prometheus_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + prometheus_labels(name) + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + prometheus_labels(name) + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " summary\n";
    static constexpr std::pair<double, const char*> kQuantiles[] = {
        {0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}};
    for (const auto& [q, label] : kQuantiles)
      out += prom + prometheus_labels(name, {{"quantile", label}}) + " " +
             prometheus_number(histogram->quantile(q)) + "\n";
    out += prom + "_sum" + prometheus_labels(name) + " " +
           prometheus_number(histogram->sum()) + "\n";
    out += prom + "_count" + prometheus_labels(name) + " " +
           std::to_string(histogram->count()) + "\n";
  }
  return out;
}

}  // namespace lisa::obs
