// Bounded schedule exploration for spawn-ing MiniLang programs.
//
// Serial replay runs every spawned thread root inline, so a single replay
// sees exactly one interleaving and is provably blind to atomicity bugs.
// The ScheduleExplorer quantifies over interleavings instead: it re-runs a
// @test under the interpreter's cooperative scheduler, choosing a different
// thread order each time.
//
// Two phases, one bound (`max_schedules`, every run charged to the Budget):
//
//   1. DFS with conflict-directed branching. A yield point becomes a
//      backtrack point only when two runnable threads have pending
//      operations that do not commute (same monitor, same object field, or
//      an operation whose footprint is unknown); otherwise the lowest id
//      runs and no alternative is recorded. This is a simplified
//      sleep-set-spirit reduction: commuting choices are pruned, conflicting
//      choices are explored exhaustively. If the DFS drains its stack within
//      the bound, exploration is *conclusive* for the reduced space.
//   2. Prioritized random search (PCT-style) for the remaining bound when
//      the DFS could not finish: seeded deterministically, so the same seed
//      reproduces the same schedules. Finding a violation here is a real
//      verdict; finding none is a typed inconclusive, never a silent pass.
//
// A violating schedule is captured as a replayable witness — the seed and
// the decision taken at every choice point — which re-derives the identical
// trace on any later run (determinism is asserted by schedule_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "minilang/ast.hpp"
#include "minilang/interp.hpp"
#include "obs/provenance.hpp"
#include "support/budget.hpp"

namespace lisa::concolic {

/// Replayable evidence for one violating interleaving.
struct ScheduleWitness {
  std::string test;
  /// 0 when found by the DFS phase (decisions alone replay it); otherwise
  /// the random-phase seed the decisions were drawn under.
  std::uint64_t seed = 0;
  /// Thread picked at each choice point, in order. Replay follows this list
  /// and falls back to lowest-id once it is exhausted.
  std::vector<int> decisions;
  std::string outcome;  // "assert-failure" | "hang" | "exception"
  std::string detail;   // narrated failure (assert text, hang description)

  [[nodiscard]] std::string decisions_text() const;  // "0,1,1,0"
  [[nodiscard]] static std::vector<int> parse_decisions(const std::string& text);
  /// Compact one-line form carried through reports and the ledger:
  /// "test=...;seed=...;decisions=...;outcome=...".
  [[nodiscard]] std::string to_compact() const;
  [[nodiscard]] static ScheduleWitness from_compact(const std::string& text);
};

struct ScheduleExplorationResult {
  int schedules_explored = 0;
  int tests_with_threads = 0;
  /// True when the DFS drained the (reduced) schedule space of every
  /// thread-spawning test within the bound and no run was degraded. A
  /// violation found under any phase is a real verdict regardless.
  bool conclusive = true;
  bool violation_found = false;
  std::string inconclusive_reason;  // typed cause when !conclusive
  std::vector<ScheduleWitness> witnesses;  // first violation per failing test
};

struct ScheduleExploreOptions {
  int max_schedules = 2048;
  std::uint64_t seed = 0x5eedULL;     // random-phase seed (deterministic default)
  support::Budget* budget = nullptr;  // charged one schedule per run
};

class ScheduleExplorer {
 public:
  /// `program` must outlive the explorer.
  ScheduleExplorer(const minilang::Program& program, ScheduleExploreOptions options);

  /// Explores every @test that (transitively) executes a spawn statement.
  /// Tests that never spawn have exactly one schedule and cost nothing.
  ScheduleExplorationResult explore();

  /// Explores one test (which need not spawn; then it is trivially
  /// conclusive after one run).
  ScheduleExplorationResult explore_test(const std::string& test_name);

  /// Re-runs a witness schedule. `configure` (optional) receives the fresh
  /// interpreter before the run — attach trace observers there.
  minilang::ScheduleRunResult replay(
      const ScheduleWitness& witness,
      const std::function<void(minilang::Interp&)>& configure = nullptr);

  /// True when `test_name` (or anything it calls) contains a spawn.
  [[nodiscard]] bool test_spawns(const std::string& test_name) const;

 private:
  void explore_into(const std::string& test_name, ScheduleExplorationResult& out);

  const minilang::Program& program_;
  ScheduleExploreOptions options_;
};

/// Narrates a violating interleaving: replays `witness` under the scheduler
/// with a recording observer and returns a Narration of kind
/// "schedule-replay" whose steps carry the executing MiniLang thread id
/// (rendered as [tN] markers by `lisa explain`).
[[nodiscard]] obs::Narration narrate_schedule(const minilang::Program& program,
                                              const ScheduleWitness& witness);

}  // namespace lisa::concolic
