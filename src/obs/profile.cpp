#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace lisa::obs {

namespace {

/// The span's "contract" attribute, or empty.
std::string contract_attr(const SpanRecord& span) {
  for (const auto& [key, value] : span.attrs)
    if (key == "contract" && value.is_string()) return value.as_string();
  return std::string();
}

}  // namespace

CostTable build_cost_table(const std::vector<SpanRecord>& spans) {
  CostTable table;
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& span : spans) by_id.emplace(span.id, &span);

  // Direct-children duration, charged to each parent for exclusive time.
  std::unordered_map<std::uint64_t, double> children_us;
  for (const SpanRecord& span : spans)
    if (span.parent_id != 0 && by_id.count(span.parent_id) > 0)
      children_us[span.parent_id] += span.dur_us;

  std::map<std::string, SpanCost> by_name;
  std::map<std::string, SmtHotspot> by_contract;
  for (const SpanRecord& span : spans) {
    SpanCost& cost = by_name[span.name];
    cost.name = span.name;
    ++cost.count;
    cost.inclusive_ms += span.dur_us / 1000.0;
    const auto children = children_us.find(span.id);
    const double child_us = children == children_us.end() ? 0.0 : children->second;
    cost.exclusive_ms += std::max(0.0, span.dur_us - child_us) / 1000.0;
    if (span.parent_id == 0 || by_id.count(span.parent_id) == 0)
      table.wall_ms += span.dur_us / 1000.0;

    if (span.name == "smt.solve") {
      // Charge the query to the nearest enclosing contract span.
      const SpanRecord* cursor = &span;
      while (cursor != nullptr && cursor->name != "checker.contract") {
        const auto parent = by_id.find(cursor->parent_id);
        cursor = parent == by_id.end() ? nullptr : parent->second;
      }
      const std::string contract =
          cursor != nullptr ? contract_attr(*cursor) : std::string("(outside checker)");
      if (!contract.empty()) {
        SmtHotspot& hotspot = by_contract[contract];
        hotspot.contract_id = contract;
        ++hotspot.queries;
        hotspot.solve_ms += span.dur_us / 1000.0;
      }
    }
  }

  for (auto& [name, cost] : by_name) table.rows.push_back(std::move(cost));
  std::sort(table.rows.begin(), table.rows.end(), [](const SpanCost& a, const SpanCost& b) {
    if (a.inclusive_ms != b.inclusive_ms) return a.inclusive_ms > b.inclusive_ms;
    return a.name < b.name;
  });
  for (auto& [contract, hotspot] : by_contract) table.hotspots.push_back(std::move(hotspot));
  std::sort(table.hotspots.begin(), table.hotspots.end(),
            [](const SmtHotspot& a, const SmtHotspot& b) {
              if (a.solve_ms != b.solve_ms) return a.solve_ms > b.solve_ms;
              return a.contract_id < b.contract_id;
            });
  return table;
}

support::Json CostTable::to_json() const {
  support::JsonArray span_rows;
  for (const SpanCost& row : rows) {
    support::JsonObject entry;
    entry["name"] = row.name;
    entry["count"] = row.count;
    entry["inclusive_ms"] = row.inclusive_ms;
    entry["exclusive_ms"] = row.exclusive_ms;
    span_rows.push_back(support::Json(std::move(entry)));
  }
  support::JsonArray hotspot_rows;
  for (const SmtHotspot& hotspot : hotspots) {
    support::JsonObject entry;
    entry["contract"] = hotspot.contract_id;
    entry["queries"] = hotspot.queries;
    entry["solve_ms"] = hotspot.solve_ms;
    hotspot_rows.push_back(support::Json(std::move(entry)));
  }
  support::JsonObject root;
  root["wall_ms"] = wall_ms;
  root["spans"] = support::Json(std::move(span_rows));
  root["smt_hotspots"] = support::Json(std::move(hotspot_rows));
  return support::Json(std::move(root));
}

std::string CostTable::render(std::size_t limit) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %8s %14s %14s\n", "span", "count",
                "inclusive ms", "exclusive ms");
  out += line;
  std::size_t shown = 0;
  for (const SpanCost& row : rows) {
    if (shown++ >= limit) break;
    std::snprintf(line, sizeof(line), "%-28s %8lld %14.3f %14.3f\n", row.name.c_str(),
                  static_cast<long long>(row.count), row.inclusive_ms, row.exclusive_ms);
    out += line;
  }
  if (!hotspots.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %8s %14s\n", "SMT hotspot (contract)",
                  "queries", "solve ms");
    out += line;
    shown = 0;
    for (const SmtHotspot& hotspot : hotspots) {
      if (shown++ >= limit) break;
      std::snprintf(line, sizeof(line), "%-44s %8lld %14.3f\n", hotspot.contract_id.c_str(),
                    static_cast<long long>(hotspot.queries), hotspot.solve_ms);
      out += line;
    }
  }
  std::snprintf(line, sizeof(line), "\nwall clock (root spans): %.3f ms\n", wall_ms);
  out += line;
  return out;
}

}  // namespace lisa::obs
