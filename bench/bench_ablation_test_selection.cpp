// Ablation (§3.2 design choice): RAG-style embedding test selection vs
// random selection vs running the whole suite, measured by execution-tree
// coverage (fraction of static paths some selected test drives to the
// target) against the number of tests replayed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "inference/embedding.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"
#include "support/rng.hpp"

namespace {

using namespace lisa;

struct SelectionScore {
  int covered = 0;
  int paths = 0;
  int tests_run = 0;
};

SelectionScore score_with_tests(const corpus::FailureTicket& ticket,
                                const core::SemanticContract& contract,
                                std::vector<std::string> tests) {
  const minilang::Program program = minilang::parse_checked(ticket.patched_source);
  core::CheckOptions options;
  options.forced_tests = std::move(tests);
  const core::ContractCheckReport report =
      core::Checker().check(program, contract, options);
  SelectionScore score;
  score.paths = static_cast<int>(report.paths.size());
  score.covered = score.paths - report.uncovered;
  score.tests_run = report.dynamic.tests_run;
  return score;
}

std::vector<std::string> all_tests_of(const corpus::FailureTicket& ticket) {
  const minilang::Program program = minilang::parse_checked(ticket.patched_source);
  std::vector<std::string> out;
  for (const minilang::FuncDecl* test : program.functions_with("test"))
    out.push_back(test->name);
  return out;
}

void print_selection_table() {
  std::printf("=== Ablation: test selection strategy (k = 2 per contract) ===\n\n");
  std::printf("%-12s %12s %14s %12s\n", "strategy", "tests run", "paths covered",
              "coverage %");
  const std::size_t k = 2;
  SelectionScore rag_total;
  SelectionScore random_total;
  SelectionScore all_total;
  support::Rng rng(2024);
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
    core::TranslationResult translation = core::translate(proposal, ticket.system);
    const core::SemanticContract& contract = translation.contracts[0];

    // RAG: the checker's default per-path embedding selection, capped at k.
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    core::CheckOptions rag_options;
    rag_options.max_tests_per_contract = k;
    const core::ContractCheckReport rag_report =
        core::Checker().check(program, contract, rag_options);
    const std::vector<std::string> rag = rag_report.dynamic.selected_tests;
    // Random: k arbitrary tests.
    std::vector<std::string> pool = all_tests_of(ticket);
    rng.shuffle(pool);
    std::vector<std::string> random_pick(pool.begin(),
                                         pool.begin() + std::min(k, pool.size()));

    const auto accumulate = [](SelectionScore& total, const SelectionScore& s) {
      total.covered += s.covered;
      total.paths += s.paths;
      total.tests_run += s.tests_run;
    };
    accumulate(rag_total, score_with_tests(ticket, contract, rag));
    accumulate(random_total, score_with_tests(ticket, contract, random_pick));
    accumulate(all_total, score_with_tests(ticket, contract, all_tests_of(ticket)));
  }
  const auto row = [](const char* name, const SelectionScore& s) {
    std::printf("%-12s %12d %9d/%-4d %11.0f%%\n", name, s.tests_run, s.covered, s.paths,
                100.0 * s.covered / s.paths);
  };
  row("RAG top-k", rag_total);
  row("random-k", random_total);
  row("all tests", all_total);
  std::printf("\nshape check: at the same replay budget, per-path RAG selection covers\n"
              "substantially more execution-tree paths than random selection; the rest\n"
              "is the paper's residue — \"the test suite does not have enough coverage,\n"
              "or the LLM misses the related tests\" — reported as uncovered for a\n"
              "developer verdict (or testgen synthesis).\n\n");
}

void BM_RagSelection(benchmark::State& state) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  for (auto _ : state) {
    const inference::TestSelector selector(program);
    benchmark::DoNotOptimize(selector.select("ephemeral closing session", 3).size());
  }
}
BENCHMARK(BM_RagSelection)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_selection_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
