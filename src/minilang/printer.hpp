// Canonical source rendering of MiniLang ASTs.
//
// Statement/expression texts produced here are the *identity* used throughout
// LISA: the structural diff engine compares canonical statement texts between
// program versions, and semantic contracts name their target statement by a
// canonical-text fragment (mirroring the paper's "target statement: the code
// statement where the condition should be checked").
#pragma once

#include <string>

#include "minilang/ast.hpp"

namespace lisa::minilang {

/// Canonical one-line rendering of an expression, fully parenthesized for
/// binary operators so the text is unambiguous.
[[nodiscard]] std::string expr_text(const Expr& expr);

/// Canonical one-line header of a statement — the part before any nested
/// block, e.g. `if (s.is_closing)`, `let n: int = 0;`, `create(path, s);`.
[[nodiscard]] std::string stmt_header_text(const Stmt& stmt);

/// Full pretty-printed function (signature + body).
[[nodiscard]] std::string function_text(const FuncDecl& fn);

/// Full pretty-printed program; parse(print(p)) is structurally equal to p.
[[nodiscard]] std::string program_text(const Program& program);

}  // namespace lisa::minilang
