file(REMOVE_RECURSE
  "CMakeFiles/systems_lifecycle_test.dir/systems_lifecycle_test.cpp.o"
  "CMakeFiles/systems_lifecycle_test.dir/systems_lifecycle_test.cpp.o.d"
  "systems_lifecycle_test"
  "systems_lifecycle_test.pdb"
  "systems_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systems_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
