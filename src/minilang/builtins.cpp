#include "minilang/builtins.hpp"

#include <algorithm>

namespace lisa::minilang {

std::optional<Value> dispatch_builtin(const std::string& name, std::vector<Value>& args,
                                      BuiltinContext& context) {
  const auto need = [&](std::size_t n) {
    if (args.size() != n)
      throw InterpError("builtin " + name + " expects " + std::to_string(n) + " args");
  };
  const auto key_of = [](const Value& k) {
    return k.is_string() ? k.as_string() : std::to_string(k.as_int());
  };

  if (blocking_builtins().count(name) > 0) {
    if (context.now_ms != nullptr) *context.now_ms += context.blocking_latency_ms;
    if (context.observer != nullptr) context.observer->on_blocking(name, context.sync_depth);
    return Value::null();
  }
  if (name == "print" || name == "log") {
    if (context.output != nullptr) {
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) *context.output += " ";
        *context.output += args[i].to_display();
      }
      *context.output += "\n";
    }
    return Value::null();
  }
  if (name == "len") {
    need(1);
    if (args[0].is_list())
      return Value::of_int(static_cast<std::int64_t>(args[0].as_list()->size()));
    if (args[0].is_map())
      return Value::of_int(static_cast<std::int64_t>(args[0].as_map()->size()));
    if (args[0].is_string())
      return Value::of_int(static_cast<std::int64_t>(args[0].as_string().size()));
    throw InterpError("len() on non-container");
  }
  if (name == "list_new") {
    need(0);
    return Value::new_list();
  }
  if (name == "map_new") {
    need(0);
    return Value::new_map();
  }
  if (name == "push") {
    need(2);
    if (!args[0].is_list()) throw InterpError("push() on non-list");
    args[0].as_list()->push_back(args[1]);
    return Value::null();
  }
  if (name == "put") {
    need(3);
    if (!args[0].is_map()) throw InterpError("put() on non-map");
    (*args[0].as_map())[key_of(args[1])] = args[2];
    return Value::null();
  }
  if (name == "get") {
    need(2);
    if (!args[0].is_map()) throw InterpError("get() on non-map");
    const auto& map = *args[0].as_map();
    const auto it = map.find(key_of(args[1]));
    return it == map.end() ? Value::null() : it->second;
  }
  if (name == "has") {
    need(2);
    if (!args[0].is_map()) throw InterpError("has() on non-map");
    return Value::of_bool(args[0].as_map()->count(key_of(args[1])) > 0);
  }
  if (name == "del") {
    need(2);
    if (!args[0].is_map()) throw InterpError("del() on non-map");
    args[0].as_map()->erase(key_of(args[1]));
    return Value::null();
  }
  if (name == "keys") {
    need(1);
    if (!args[0].is_map()) throw InterpError("keys() on non-map");
    Value out = Value::new_list();
    for (const auto& [key, value] : *args[0].as_map()) {
      (void)value;
      out.as_list()->push_back(Value::of_string(key));
    }
    return out;
  }
  if (name == "contains") {
    need(2);
    if (!args[0].is_list()) throw InterpError("contains() on non-list");
    for (const Value& item : *args[0].as_list())
      if (item.equals(args[1])) return Value::of_bool(true);
    return Value::of_bool(false);
  }
  if (name == "str") {
    need(1);
    return Value::of_string(args[0].to_display());
  }
  if (name == "min" || name == "max") {
    need(2);
    const std::int64_t a = args[0].as_int();
    const std::int64_t b = args[1].as_int();
    return Value::of_int(name == "min" ? std::min(a, b) : std::max(a, b));
  }
  if (name == "abs") {
    need(1);
    const std::int64_t a = args[0].as_int();
    return Value::of_int(a < 0 ? -a : a);
  }
  if (name == "assert") {
    if (args.empty() || !args[0].is_bool()) throw InterpError("assert() expects a bool");
    if (!args[0].as_bool()) {
      std::string message = "assertion failed";
      if (args.size() > 1) message += ": " + args[1].to_display();
      throw MiniThrow(Value::of_string(message));
    }
    return Value::null();
  }
  if (name == "wait") {
    need(1);
    if (context.sched != nullptr) context.sched->wait_on(args[0]);
    return Value::null();
  }
  if (name == "notify" || name == "notify_all") {
    need(1);
    if (context.sched != nullptr) context.sched->notify(args[0], name == "notify_all");
    return Value::null();
  }
  if (name == "join_all") {
    need(0);
    if (context.sched != nullptr) context.sched->join_all();
    return Value::null();
  }
  if (name == "now") {
    need(0);
    return Value::of_int(context.now_ms != nullptr ? *context.now_ms : 0);
  }
  if (name == "advance_clock") {
    need(1);
    if (context.now_ms != nullptr) *context.now_ms += args[0].as_int();
    return Value::null();
  }
  return std::nullopt;
}

}  // namespace lisa::minilang
