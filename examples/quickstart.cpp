// Quickstart: the smallest end-to-end LISA run.
//
// 1. Write a tiny "cloud system" in MiniLang with a bug-fix history.
// 2. Feed the failure ticket to the inference backend.
// 3. Translate the proposal into a semantic contract.
// 4. Assert the contract over the current codebase and print the verdicts.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "lisa/pipeline.hpp"

namespace {

// The codebase BEFORE the fix: pay() never checks the account status.
const char* kBuggy = R"ml(
struct Account { id: int; frozen: bool; balance: int; }

fn debit(a: Account, amount: int) {
  a.balance = a.balance - amount;
}

@entry
fn pay(a: Account?, amount: int) {
  if (a == null) {
    throw "NoSuchAccount";
  }
  debit(a, amount);
}

@entry
fn pay_batch(a: Account?, amounts: list<int>) {
  if (a == null) {
    throw "NoSuchAccount";
  }
  let i = 0;
  while (i < len(amounts)) {
    debit(a, amounts[i]);
    i = i + 1;
  }
}

@test
fn test_pay_debits_balance() {
  let a = new Account { id: 1, frozen: false, balance: 100 };
  pay(a, 30);
  assert(a.balance == 70, "debited");
}
)ml";

// The fix adds the frozen-account guard on pay() — but pay_batch() still
// lacks it, exactly the shape of the paper's recurring regressions.
const char* kPatched = R"ml(
struct Account { id: int; frozen: bool; balance: int; }

fn debit(a: Account, amount: int) {
  a.balance = a.balance - amount;
}

@entry
fn pay(a: Account?, amount: int) {
  if (a == null) {
    throw "NoSuchAccount";
  }
  if (a.frozen) {
    throw "AccountFrozen";
  }
  debit(a, amount);
}

@entry
fn pay_batch(a: Account?, amounts: list<int>) {
  if (a == null) {
    throw "NoSuchAccount";
  }
  let i = 0;
  while (i < len(amounts)) {
    debit(a, amounts[i]);
    i = i + 1;
  }
}

@test
fn test_pay_debits_balance() {
  let a = new Account { id: 1, frozen: false, balance: 100 };
  pay(a, 30);
  assert(a.balance == 70, "debited");
}

@test
fn test_frozen_account_rejected() {
  let a = new Account { id: 2, frozen: true, balance: 100 };
  let rejected = false;
  try {
    pay(a, 30);
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "frozen account must not be debited");
}

@test
fn test_pay_batch_debits_all() {
  let a = new Account { id: 3, frozen: false, balance: 100 };
  let amounts = list_new();
  push(amounts, 10);
  push(amounts, 20);
  pay_batch(a, amounts);
  assert(a.balance == 70, "batch debited");
}
)ml";

}  // namespace

int main() {
  using namespace lisa;

  // A failure ticket bundles exactly what the paper feeds the LLM.
  corpus::FailureTicket ticket;
  ticket.case_id = "billing-frozen-account";
  ticket.system = "billing";
  ticket.feature = "payments";
  ticket.description =
      "A payment was debited from a frozen account. Developer discussion: "
      "no debit may happen while the account is frozen. Fix adds the frozen "
      "check before debit on the pay path.";
  ticket.buggy_source = kBuggy;
  ticket.patched_source = kPatched;

  const core::Pipeline pipeline;
  const core::PipelineResult result = pipeline.run(ticket, ticket.patched_source);

  std::printf("== inferred semantics ==\n%s\n\n",
              result.proposal.to_json().pretty().c_str());

  for (const core::ContractCheckReport& report : result.reports) {
    std::printf("== contract %s on current codebase ==\n", report.contract_id.c_str());
    std::printf("target statements: %zu, paths: %zu (verified %d, violated %d)\n",
                report.target_statements, report.paths.size(), report.verified,
                report.violated);
    for (const core::PathReport& path : report.paths) {
      std::string chain;
      for (const std::string& fn : path.call_chain) {
        if (!chain.empty()) chain += " -> ";
        chain += fn;
      }
      std::printf("  [%-9s] %s  (pi: %s)\n", core::path_verdict_name(path.verdict),
                  chain.c_str(), path.path_condition.c_str());
      if (!path.counterexample.empty())
        std::printf("              counterexample: %s\n", path.counterexample.c_str());
    }
    std::printf("dynamic: %d tests replayed, %d target hits, %d missing-check traces\n",
                report.dynamic.tests_run, report.dynamic.target_hits,
                report.dynamic.symbolic_violations);
  }

  std::printf("\nverdict: the pay() path verifies, the pay_batch() path is flagged —\n"
              "the regression that would have shipped is blocked before it happens.\n");
  return 0;
}
