// Failure-ticket schema for the incident corpus.
//
// §2.1 of the paper: "we collect and analyze 16 regression cases from widely
// used cloud systems, including ZooKeeper, HDFS, HBase, and Cassandra. Each
// case includes one original bug and at least one new (regression) bugs. In
// total we study 34 software bugs."
//
// Each ticket bundles exactly what the paper's workflow feeds the LLM
// (Fig. 5): the textual failure description and developer discussion, the
// code patch (derivable from buggy vs patched source), and the source code
// after the patch. The MiniLang sources stand in for the Java code of the
// real tickets; the cases are modeled on the incidents the paper cites
// (ZOOKEEPER-1208/1496, ZOOKEEPER-2201/3531, HBASE-27671/28704/29296,
// HDFS-13924/16732/17768) plus additional cases in the same four systems to
// reach the study's 16-case / 34-bug shape, and four interleaving-sensitive
// cases (lock-order deadlocks, data races) settled by the static
// concurrency pass rather than concolic replay.
#pragma once

#include <string>
#include <vector>

namespace lisa::corpus {

/// One concrete bug occurrence inside a case.
struct BugRecord {
  std::string id;       // tracker id, e.g. "ZK-1208"
  std::string date;     // ISO date of the report
  std::string summary;  // one-line manifestation
};

enum class SemanticsKind {
  kStatePredicate,         // <P> s — guard condition at a target statement
  kStructuralPattern,      // e.g. no blocking I/O inside sync blocks (Fig. 6)
  kInterleavingSensitive,  // guarded-field invariants / lock-order patterns,
                           // settled by the static concurrency pass
};

struct FailureTicket {
  std::string case_id;   // stable corpus id, e.g. "zk-1208-ephemeral-create"
  std::string system;    // "zookeeper" | "hdfs" | "hbase" | "cassandra"
  std::string feature;   // subsystem/feature the case concerns
  std::string title;
  /// Failure description + developer discussion (the LLM's first input).
  std::string description;
  /// MiniLang source before the original fix (second input: diff base).
  std::string buggy_source;
  /// MiniLang source after the original fix (third input).
  std::string patched_source;
  /// Latest-version source for the preliminary-results experiments (§4);
  /// empty when the case has no "latest" scenario.
  std::string latest_source;
  /// Names of the @test functions the original fix added.
  std::vector<std::string> regression_tests;

  BugRecord original;
  std::vector<BugRecord> regressions;  // at least one per §2.1

  SemanticsKind kind = SemanticsKind::kStatePredicate;
  /// Ground truth for evaluation benches (not visible to inference):
  std::string expected_target;     // canonical target fragment
  std::string expected_condition;  // condition in target-frame names

  [[nodiscard]] int bug_count() const {
    return 1 + static_cast<int>(regressions.size());
  }
};

/// The full study corpus.
class Corpus {
 public:
  /// All cases (16 study + 4 interleaving-sensitive), in stable order.
  [[nodiscard]] static const std::vector<FailureTicket>& all();

  /// Case lookup by id; nullptr if absent.
  [[nodiscard]] static const FailureTicket* find(const std::string& case_id);

  /// Cases for one system.
  [[nodiscard]] static std::vector<const FailureTicket*> for_system(const std::string& system);
};

// Per-system case constructors (implemented in <system>_cases.cpp).
[[nodiscard]] std::vector<FailureTicket> zookeeper_cases();
[[nodiscard]] std::vector<FailureTicket> hdfs_cases();
[[nodiscard]] std::vector<FailureTicket> hbase_cases();
[[nodiscard]] std::vector<FailureTicket> cassandra_cases();

}  // namespace lisa::corpus
