// Tests for the inference layer: mock-LLM extraction accuracy against corpus
// ground truth, proposal JSON round-trips, embeddings, and test selection.
#include <gtest/gtest.h>

#include "inference/embedding.hpp"
#include "inference/mock_llm.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"
#include "smt/solver.hpp"

namespace lisa::inference {
namespace {

TEST(MockLlm, ExtractsEphemeralRule) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  ASSERT_NE(ticket, nullptr);
  const MockLlm llm;
  const SemanticsProposal proposal = llm.infer(*ticket);
  EXPECT_EQ(proposal.kind, corpus::SemanticsKind::kStatePredicate);
  ASSERT_EQ(proposal.low_level.size(), 1u);
  EXPECT_EQ(proposal.low_level[0].target_statement, "create_ephemeral_node(");
  // The extracted condition must be logically equivalent to ground truth.
  const auto extracted = smt::parse_condition(proposal.low_level[0].condition_statement);
  const auto truth = smt::parse_condition(ticket->expected_condition);
  ASSERT_TRUE(extracted.has_value());
  ASSERT_TRUE(truth.has_value());
  smt::Solver solver;
  EXPECT_TRUE(solver.equivalent(*extracted, *truth))
      << proposal.low_level[0].condition_statement;
}

TEST(MockLlm, ExtractsStructuralRule) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-2201-sync-serialize");
  ASSERT_NE(ticket, nullptr);
  const SemanticsProposal proposal = MockLlm().infer(*ticket);
  EXPECT_EQ(proposal.kind, corpus::SemanticsKind::kStructuralPattern);
  EXPECT_EQ(proposal.pattern, "no_blocking_in_sync");
  ASSERT_EQ(proposal.low_level.size(), 1u);
  EXPECT_EQ(proposal.low_level[0].target_statement, "write_record(");
}

// Parameterized accuracy sweep: the extraction must recover target + an
// equivalent condition for every state-predicate case in the corpus — the
// property the whole downstream pipeline depends on.
class ExtractionAccuracy : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtractionAccuracy, TargetAndConditionMatchGroundTruth) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find(GetParam());
  ASSERT_NE(ticket, nullptr);
  const SemanticsProposal proposal = MockLlm().infer(*ticket);
  if (ticket->kind == corpus::SemanticsKind::kStructuralPattern) {
    EXPECT_EQ(proposal.pattern, "no_blocking_in_sync");
    return;
  }
  if (ticket->kind == corpus::SemanticsKind::kInterleavingSensitive) {
    // Interleaving conditions are not SMT formulas; ground truth is matched
    // textually (the pattern name or a holds(monitor) guard).
    EXPECT_EQ(proposal.kind, corpus::SemanticsKind::kInterleavingSensitive) << ticket->case_id;
    ASSERT_FALSE(proposal.low_level.empty());
    bool interleaving_matched = false;
    for (const LowLevelSemantics& low : proposal.low_level)
      if (low.target_statement == ticket->expected_target &&
          low.condition_statement == ticket->expected_condition)
        interleaving_matched = true;
    EXPECT_TRUE(interleaving_matched)
        << "no extracted rule matches ground truth for " << ticket->case_id;
    return;
  }
  ASSERT_FALSE(proposal.low_level.empty());
  bool matched = false;
  smt::Solver solver;
  const auto truth = smt::parse_condition(ticket->expected_condition);
  ASSERT_TRUE(truth.has_value()) << ticket->expected_condition;
  for (const LowLevelSemantics& low : proposal.low_level) {
    if (low.target_statement != ticket->expected_target) continue;
    const auto extracted = smt::parse_condition(low.condition_statement);
    if (!extracted.has_value()) continue;
    if (solver.equivalent(*extracted, *truth)) matched = true;
  }
  EXPECT_TRUE(matched) << "no extracted rule matches ground truth for " << ticket->case_id;
}

INSTANTIATE_TEST_SUITE_P(AllCases, ExtractionAccuracy, ::testing::ValuesIn([] {
                           std::vector<std::string> ids;
                           for (const auto& ticket : corpus::Corpus::all())
                             ids.push_back(ticket.case_id);
                           return ids;
                         }()));

TEST(MockLlm, NoiseInjectionCorruptsConditions) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  MockLlmOptions options;
  options.noise = 1.0;
  options.seed = 5;
  const SemanticsProposal noisy = MockLlm(options).infer(*ticket);
  const SemanticsProposal clean = MockLlm().infer(*ticket);
  ASSERT_FALSE(noisy.low_level.empty());
  EXPECT_NE(noisy.low_level[0].condition_statement, clean.low_level[0].condition_statement);
}

TEST(MockLlm, DeterministicAcrossRuns) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("hdfs-13924-observer-locations");
  const SemanticsProposal a = MockLlm().infer(*ticket);
  const SemanticsProposal b = MockLlm().infer(*ticket);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(MockLlm, RenderPromptContainsAllThreeInputs) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const std::string prompt = MockLlm::render_prompt(*ticket);
  EXPECT_NE(prompt.find("Failure description"), std::string::npos);
  EXPECT_NE(prompt.find("Code patch"), std::string::npos);
  EXPECT_NE(prompt.find("is_closing"), std::string::npos);
}

TEST(Proposal, JsonRoundTrip) {
  SemanticsProposal proposal;
  proposal.case_id = "case-x";
  proposal.high_level_semantics = "high";
  proposal.kind = corpus::SemanticsKind::kStructuralPattern;
  proposal.pattern = "no_blocking_in_sync";
  proposal.reasoning = "because";
  proposal.low_level.push_back({"desc", "tgt(", "a.b > 0"});
  const SemanticsProposal back = SemanticsProposal::from_json(proposal.to_json());
  EXPECT_EQ(back.case_id, "case-x");
  EXPECT_EQ(back.kind, corpus::SemanticsKind::kStructuralPattern);
  ASSERT_EQ(back.low_level.size(), 1u);
  EXPECT_EQ(back.low_level[0].condition_statement, "a.b > 0");
}

// ---------------------------------------------------------------------------
// Embeddings / test selection
// ---------------------------------------------------------------------------

TEST(TfIdf, CosineRanksRelatedTextHigher) {
  TfIdfModel model;
  model.fit({"ephemeral node closing session", "snapshot expired ttl",
             "block report observer location"});
  const auto q = model.embed("closing session create ephemeral");
  const double close = TfIdfModel::cosine(q, model.embed("ephemeral node closing session"));
  const double far = TfIdfModel::cosine(q, model.embed("snapshot expired ttl"));
  EXPECT_GT(close, far);
  EXPECT_GT(close, 0.5);
}

TEST(TfIdf, EmptyAndOovTextsEmbedToZero) {
  TfIdfModel model;
  model.fit({"alpha beta"});
  EXPECT_TRUE(model.embed("").empty());
  EXPECT_TRUE(model.embed("gamma delta").empty());
  EXPECT_EQ(TfIdfModel::cosine({}, model.embed("alpha")), 0.0);
}

TEST(TestSelector, SelectsRegressionTestForItsContract) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  const TestSelector selector(program);
  EXPECT_EQ(selector.test_count(), 5u);
  const auto ranked =
      selector.rank("create_ephemeral_node closing session p_request_create rejected");
  ASSERT_FALSE(ranked.empty());
  // The ZK-1208 regression test must rank in the top 2.
  bool in_top2 = false;
  for (std::size_t i = 0; i < 2 && i < ranked.size(); ++i)
    if (ranked[i].test_name == "test_zk1208_no_create_on_closing_session") in_top2 = true;
  EXPECT_TRUE(in_top2) << "top test: " << ranked[0].test_name;
}

TEST(TestSelector, SelectRespectsLimitsAndThreshold) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  const TestSelector selector(program);
  EXPECT_LE(selector.select("ephemeral", 2).size(), 2u);
  // An absurd threshold filters everything.
  EXPECT_TRUE(selector.select("ephemeral", 10, 0.999).empty());
}

TEST(TestSelector, RankingIsDeterministic) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("cass-hint-decommissioned");
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  const TestSelector selector(program);
  const auto a = selector.rank("hints decommissioned replay");
  const auto b = selector.rank("hints decommissioned replay");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].test_name, b[i].test_name);
}

}  // namespace
}  // namespace lisa::inference
