# Empty dependencies file for bench_vm_throughput.
# This may be replaced when dependencies are built.
