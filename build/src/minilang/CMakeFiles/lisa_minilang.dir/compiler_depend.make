# Empty compiler generated dependencies file for lisa_minilang.
# This may be replaced when dependencies are built.
