// Unit tests for src/analysis: call graph, execution trees, renaming, and
// structural pattern checks.
#include <gtest/gtest.h>

#include <set>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "analysis/patterns.hpp"
#include "analysis/rename.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"
#include "smt/solver.hpp"

namespace lisa::analysis {
namespace {

using minilang::Program;

const char* kSample = R"(
struct Session { is_closing: bool; ttl: int; }
struct Server { count: int; }

fn helper(server: Server, s: Session?) {
  if (s == null) {
    return;
  }
  do_create(server, s);
}

fn do_create(server: Server, s: Session) {
  server.count = server.count + 1;
}

@entry
fn entry_a(server: Server, s: Session?) {
  if (s == null) {
    throw "expired";
  }
  if (s.is_closing) {
    throw "closing";
  }
  do_create(server, s);
}

@entry
fn entry_b(server: Server, s: Session?) {
  helper(server, s);
}

@test
fn test_something() {
  let server = new Server {};
  let s = new Session { is_closing: false, ttl: 1 };
  entry_a(server, s);
}
)";

Program sample() { return minilang::parse_checked(kSample); }

TEST(CallGraph, EdgesAndSites) {
  const Program program = sample();
  const CallGraph graph = CallGraph::build(program);
  EXPECT_TRUE(graph.callees_of("entry_b").count("helper"));
  EXPECT_TRUE(graph.callers_of("do_create").count("entry_a"));
  EXPECT_TRUE(graph.callers_of("do_create").count("helper"));
  EXPECT_EQ(graph.sites_calling("do_create").size(), 2u);
}

TEST(CallGraph, EntryFunctionsExcludeTestsAndCalledFns) {
  const Program program = sample();
  const CallGraph graph = CallGraph::build(program);
  std::set<std::string> names;
  for (const auto* fn : graph.entry_functions()) names.insert(fn->name);
  EXPECT_TRUE(names.count("entry_a"));
  EXPECT_TRUE(names.count("entry_b"));
  EXPECT_FALSE(names.count("test_something"));
  EXPECT_FALSE(names.count("do_create"));  // called by non-test functions
  EXPECT_FALSE(names.count("helper"));
}

TEST(CallGraph, ChainsToTarget) {
  const Program program = sample();
  const CallGraph graph = CallGraph::build(program);
  const auto chains = graph.chains_to("do_create");
  // entry_a -> do_create and entry_b -> helper -> do_create.
  ASSERT_EQ(chains.size(), 2u);
  std::set<std::string> firsts{chains[0].front(), chains[1].front()};
  EXPECT_TRUE(firsts.count("entry_a"));
  EXPECT_TRUE(firsts.count("entry_b"));
}

TEST(CallGraph, ChainsHandleRecursionWithoutLooping) {
  const Program program = minilang::parse_checked(R"(
@entry
fn a(n: int) { b(n); }
fn b(n: int) { if (n > 0) { a(n - 1); } c(n); }
fn c(n: int) { print(n); }
)");
  const CallGraph graph = CallGraph::build(program);
  const auto chains = graph.chains_to("c");
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].front(), "a");
}

TEST(CallGraph, BlockingReachability) {
  const Program program = minilang::parse_checked(R"(
fn leaf_blocking(x: int) { fsync_log(x); }
fn mid(x: int) { leaf_blocking(x); }
fn clean(x: int) { print(x); }
@blocking
fn annotated(x: int) { print(x); }
@entry
fn top(x: int) { mid(x); clean(x); annotated(x); }
)");
  const CallGraph graph = CallGraph::build(program);
  EXPECT_TRUE(graph.reaches_blocking("leaf_blocking"));
  EXPECT_TRUE(graph.reaches_blocking("mid"));
  EXPECT_TRUE(graph.reaches_blocking("top"));
  EXPECT_TRUE(graph.reaches_blocking("annotated"));
  EXPECT_FALSE(graph.reaches_blocking("clean"));
}

TEST(CallGraph, CondensationIsReverseTopologicalAndAcyclicIsSingletons) {
  const Program program = sample();
  const CallGraph graph = CallGraph::build(program);
  const Condensation condensation = graph.condensation();
  // Every function lands in exactly one component; no recursion here.
  EXPECT_EQ(condensation.size(), program.functions.size());
  for (const auto& component : condensation.components) {
    EXPECT_EQ(component.members.size(), 1u);
    EXPECT_FALSE(component.recursive);
  }
  // Reverse topological order: every callee's component precedes its caller's.
  for (const minilang::FuncDecl& fn : program.functions)
    for (const std::string& callee : graph.callees_of(fn.name)) {
      if (program.find_function(callee) == nullptr) continue;  // builtin
      EXPECT_LT(condensation.component_index(callee), condensation.component_index(fn.name))
          << callee << " must be summarized before " << fn.name;
    }
  EXPECT_EQ(condensation.component_index("no_such_function"), -1);
}

TEST(CallGraph, CondensationGroupsRecursiveComponents) {
  const Program program = minilang::parse_checked(R"(
fn self_loop(n: int) -> int {
  if (n <= 0) {
    return 0;
  }
  return self_loop(n - 1);
}
fn even(n: int) -> bool {
  if (n == 0) {
    return true;
  }
  return odd(n - 1);
}
fn odd(n: int) -> bool {
  if (n == 0) {
    return false;
  }
  return even(n - 1);
}
@entry
fn top(n: int) { print(self_loop(n)); print(even(n)); }
)");
  const CallGraph graph = CallGraph::build(program);
  const Condensation condensation = graph.condensation();
  // self_loop is its own recursive component; even/odd share one.
  const int self_component = condensation.component_index("self_loop");
  ASSERT_GE(self_component, 0);
  EXPECT_TRUE(condensation.components[static_cast<std::size_t>(self_component)].recursive);
  EXPECT_EQ(
      condensation.components[static_cast<std::size_t>(self_component)].members.size(), 1u);
  const int even_component = condensation.component_index("even");
  EXPECT_EQ(even_component, condensation.component_index("odd"));
  ASSERT_GE(even_component, 0);
  EXPECT_TRUE(condensation.components[static_cast<std::size_t>(even_component)].recursive);
  EXPECT_EQ(
      condensation.components[static_cast<std::size_t>(even_component)].members.size(), 2u);
  // top calls both SCCs, so both precede it.
  EXPECT_LT(self_component, condensation.component_index("top"));
  EXPECT_LT(even_component, condensation.component_index("top"));
}

TEST(Rename, CanonicalVarQualifiesLocalsAndMapsParams) {
  FrameMap map;
  map.frame = "touch";
  map.roots["s"] = "entry::req.session";
  map.roots["bad"] = kOpaqueRoot;
  EXPECT_EQ(canonical_var("s.ttl", map), "entry::req.session.ttl");
  EXPECT_EQ(canonical_var("s#null", map), "entry::req.session#null");
  EXPECT_EQ(canonical_var("local_var.x", map), "touch::local_var.x");
  EXPECT_EQ(canonical_var("bad.flag", map), kOpaqueRoot);
}

TEST(Rename, OpaqueRootsCollapseToOpaqueAtoms) {
  FrameMap map;
  map.frame = "f";
  map.roots["p"] = kOpaqueRoot;
  const auto condition = smt::parse_condition("p.x > 0 && q.y");
  ASSERT_TRUE(condition.has_value());
  EXPECT_TRUE(has_opaque_root(*condition, map));
  const smt::FormulaPtr renamed = rename_formula(*condition, map);
  bool found_opaque = false;
  for (const std::string& var : renamed->variables())
    if (var.rfind("opaque:", 0) == 0) found_opaque = true;
  EXPECT_TRUE(found_opaque);
}

TEST(Paths, FindTargetStatementsMatchesFragment) {
  const Program program = sample();
  const auto targets = find_target_statements(program, "do_create(");
  EXPECT_EQ(targets.size(), 2u);  // in entry_a and helper; test excluded
}

TEST(Paths, TreeEnumeratesGuardedPaths) {
  const Program program = sample();
  const CallGraph graph = CallGraph::build(program);
  TreeOptions options;
  options.contract_condition =
      *smt::parse_condition("!(s == null) && !(s.is_closing)");
  const ExecutionTree tree =
      build_execution_tree(program, graph, "do_create(", options);
  ASSERT_EQ(tree.paths.size(), 2u);

  smt::Solver solver;
  int violated = 0;
  int verified = 0;
  for (const ExecutionPath& path : tree.paths) {
    ASSERT_TRUE(path.mappable);
    const bool viol = solver
                          .solve(smt::Formula::conj2(
                              path.condition, smt::Formula::negate(path.renamed_contract)))
                          .sat();
    if (viol) ++violated;
    else ++verified;
  }
  // entry_a checks both predicates (verified); entry_b->helper misses
  // is_closing (violated).
  EXPECT_EQ(verified, 1);
  EXPECT_EQ(violated, 1);
}

TEST(Paths, PruningCollapsesIrrelevantBranches) {
  const Program program = minilang::parse_checked(R"(
struct S { flag: bool; }
fn act(s: S) { print(s); }
@entry
fn main_entry(s: S, a: bool, b: bool, c: bool) {
  if (a) { print(1); } else { print(2); }
  if (b) { print(3); } else { print(4); }
  if (c) { print(5); } else { print(6); }
  if (s.flag) {
    act(s);
  }
}
)");
  const CallGraph graph = CallGraph::build(program);
  TreeOptions pruned;
  pruned.contract_condition = *smt::parse_condition("s.flag");
  const ExecutionTree with_pruning = build_execution_tree(program, graph, "act(", pruned);
  EXPECT_EQ(with_pruning.paths.size(), 1u);        // 8 raw paths collapse
  EXPECT_EQ(with_pruning.enumerated_raw, 8u);

  TreeOptions unpruned = pruned;
  unpruned.prune_irrelevant = false;
  const ExecutionTree without = build_execution_tree(program, graph, "act(", unpruned);
  EXPECT_EQ(without.paths.size(), 8u);
}

TEST(Paths, WhileLoopTargetInsideBodyRecordsEntryGuard) {
  const Program program = minilang::parse_checked(R"(
struct T { go: bool; }
fn work(t: T) { print(t); }
@entry
fn loop_entry(t: T, n: int) {
  let i = 0;
  while (i < n) {
    if (t.go) {
      work(t);
    }
    i = i + 1;
  }
}
)");
  const CallGraph graph = CallGraph::build(program);
  TreeOptions options;
  options.contract_condition = *smt::parse_condition("t.go");
  const ExecutionTree tree = build_execution_tree(program, graph, "work(", options);
  ASSERT_EQ(tree.paths.size(), 1u);
  // The relevant guard t.go survives pruning; the loop bound does not.
  ASSERT_EQ(tree.paths[0].guards.size(), 1u);
  EXPECT_TRUE(tree.paths[0].guards[0].taken);
}

TEST(Paths, UnmappableWhenArgumentIsNotAPath) {
  const Program program = minilang::parse_checked(R"(
struct S { ok: bool; }
fn make() -> S { return new S { ok: true }; }
fn inner(s: S) { act2(s); }
fn act2(s: S) { print(s); }
@entry
fn main_entry() {
  inner(make());
}
)");
  const CallGraph graph = CallGraph::build(program);
  TreeOptions options;
  options.contract_condition = *smt::parse_condition("s.ok");
  const ExecutionTree tree = build_execution_tree(program, graph, "act2(", options);
  ASSERT_FALSE(tree.paths.empty());
  bool any_unmappable = false;
  for (const ExecutionPath& path : tree.paths)
    if (!path.mappable) any_unmappable = true;
  EXPECT_TRUE(any_unmappable);
}

TEST(Paths, MaxPathsTruncates) {
  // 2^10 paths through ten unguarded branches with pruning disabled.
  std::string body;
  for (int i = 0; i < 10; ++i)
    body += "  if (n > " + std::to_string(i) + ") { print(" + std::to_string(i) + "); }\n";
  const Program program = minilang::parse_checked(
      "fn act3(n: int) { print(n); }\n@entry\nfn wide(n: int) {\n" + body + "  act3(n);\n}\n");
  const CallGraph graph = CallGraph::build(program);
  TreeOptions options;
  options.prune_irrelevant = false;
  options.max_paths = 100;
  const ExecutionTree tree = build_execution_tree(program, graph, "act3(", options);
  EXPECT_TRUE(tree.truncated);
  EXPECT_LE(tree.paths.size(), 100u);
}

TEST(Patterns, DetectsBlockingInsideSyncTransitively) {
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
fn persist(n: Node) { write_record(n, n.data); }
@entry
fn serialize(n: Node) {
  sync (n) {
    persist(n);
  }
}
@entry
fn safe(n: Node) {
  let d = "";
  sync (n) {
    d = n.data;
  }
  write_record(n, d);
}
)");
  const CallGraph graph = CallGraph::build(program);
  const auto violations = check_no_blocking_in_sync(program, graph);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].function, "serialize");
  EXPECT_EQ(violations[0].blocking_call, "write_record");
  ASSERT_GE(violations[0].call_path.size(), 2u);
  EXPECT_EQ(violations[0].call_path.front(), "persist");
}

TEST(Patterns, ReportsEveryBlockingChainWithSyncLocation) {
  // `flush` reaches two distinct blocking leaves; the checker must report
  // one violation per chain, each carrying the enclosing sync statement.
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
fn flush(n: Node) {
  write_record(n, n.data);
  fsync_log(n);
}
@entry
fn serialize(n: Node) {
  sync (n) {
    flush(n);
  }
}
)");
  const CallGraph graph = CallGraph::build(program);
  const auto violations = check_no_blocking_in_sync(program, graph);
  ASSERT_EQ(violations.size(), 2u);
  std::set<std::string> leaves;
  for (const PatternViolation& violation : violations) {
    leaves.insert(violation.blocking_call);
    ASSERT_NE(violation.sync_stmt, nullptr);
    EXPECT_EQ(violation.sync_stmt->kind, minilang::Stmt::Kind::kSync);
    EXPECT_NE(violation.description.find("sync at line"), std::string::npos);
    ASSERT_FALSE(violation.call_path.empty());
    EXPECT_EQ(violation.call_path.front(), "flush");
  }
  EXPECT_EQ(leaves, (std::set<std::string>{"fsync_log", "write_record"}));
}

TEST(Patterns, SpecificRuleMissesOtherFunctions) {
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn ser_a(n: Node) {
  sync (n) { write_record(n, n.data); }
}
@entry
fn ser_b(n: Node) {
  sync (n) { fsync_log(n); }
}
)");
  const CallGraph graph = CallGraph::build(program);
  EXPECT_EQ(check_no_blocking_in_sync(program, graph).size(), 2u);
  EXPECT_EQ(check_specific_call_in_sync(program, graph, "write_record").size(), 1u);
}

}  // namespace
}  // namespace lisa::analysis
