#include "analysis/patterns.hpp"

#include <functional>
#include <set>

#include "minilang/interp.hpp"
#include "minilang/printer.hpp"

namespace lisa::analysis {

using minilang::FuncDecl;
using minilang::Program;

namespace {

/// DFS from `name` collecting every acyclic call chain ending at a blocking
/// leaf (builtin or @blocking function). A callee that reaches several
/// distinct leaves produces several chains.
std::vector<std::vector<std::string>> blocking_chains(const Program& program,
                                                      const CallGraph& graph,
                                                      const std::string& name) {
  std::vector<std::vector<std::string>> chains;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  const std::function<void(const std::string&)> dfs = [&](const std::string& current) {
    if (!on_stack.insert(current).second) return;
    stack.push_back(current);
    const FuncDecl* fn = program.find_function(current);
    if (minilang::blocking_builtins().count(current) > 0 ||
        (fn != nullptr && fn->has_annotation("blocking"))) {
      chains.push_back(stack);
    } else {
      for (const std::string& callee : graph.callees_of(current))
        if (graph.reaches_blocking(callee)) dfs(callee);
    }
    stack.pop_back();
    on_stack.erase(current);
  };
  dfs(name);
  return chains;
}

std::string sync_loc_text(const minilang::Stmt* sync_stmt) {
  if (sync_stmt == nullptr) return "";
  return " (sync at line " + std::to_string(sync_stmt->loc.line) + ")";
}

}  // namespace

std::vector<PatternViolation> check_no_blocking_in_sync(const Program& program,
                                                        const CallGraph& graph) {
  std::vector<PatternViolation> out;
  for (const CallSite& site : graph.sites()) {
    if (!site.inside_sync) continue;
    if (site.caller->has_annotation("test")) continue;
    if (!graph.reaches_blocking(site.callee())) continue;
    for (std::vector<std::string>& chain : blocking_chains(program, graph, site.callee())) {
      PatternViolation violation;
      violation.function = site.caller->name;
      violation.stmt = site.stmt;
      violation.sync_stmt = site.sync_stmt;
      violation.call_path = std::move(chain);
      violation.blocking_call =
          violation.call_path.empty() ? site.callee() : violation.call_path.back();
      violation.description = "blocking call " + violation.blocking_call +
                              " reachable inside sync block of " + site.caller->name +
                              sync_loc_text(site.sync_stmt) + " via " +
                              minilang::stmt_header_text(*site.stmt);
      out.push_back(std::move(violation));
    }
  }
  return out;
}

std::vector<PatternViolation> check_specific_call_in_sync(const Program& program,
                                                          const CallGraph& graph,
                                                          const std::string& specific_callee) {
  (void)program;
  std::vector<PatternViolation> out;
  for (const CallSite& site : graph.sites()) {
    if (!site.inside_sync || site.callee() != specific_callee) continue;
    if (site.caller->has_annotation("test")) continue;
    PatternViolation violation;
    violation.function = site.caller->name;
    violation.stmt = site.stmt;
    violation.sync_stmt = site.sync_stmt;
    violation.blocking_call = specific_callee;
    violation.call_path = {specific_callee};
    violation.description = "direct call to " + specific_callee + " inside sync block of " +
                            site.caller->name + sync_loc_text(site.sync_stmt);
    out.push_back(std::move(violation));
  }
  return out;
}

}  // namespace lisa::analysis
