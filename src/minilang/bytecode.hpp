// Bytecode representation for the MiniLang VM.
//
// The tree-walking interpreter (interp.hpp) is the reference semantics; the
// VM (vm.hpp) compiles functions to a compact stack bytecode for fast test
// replay — the CI gate runs suites on every commit, so throughput matters.
// The two engines are kept observationally equivalent by differential
// property tests over random programs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minilang/ast.hpp"

namespace lisa::minilang {

enum class Op : std::uint8_t {
  kPushInt,     // a = constant-pool index of the integer
  kPushBool,    // a = 0/1
  kPushStr,     // a = string-pool index
  kPushNull,
  kLoad,        // a = local slot
  kStore,       // a = local slot (pops)
  kFieldGet,    // a = name-pool index
  kFieldSet,    // a = name-pool index (stack: object value → ∅)
  kIndexGet,    // stack: base index → value
  kIndexSet,    // stack: base index value → ∅
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNot, kNeg,
  kJump,         // a = target ip
  kJumpIfFalse,  // a = target ip (pops condition)
  kJumpIfTrue,   // a = target ip (pops condition)
  kCall,         // a = function index, b = argc
  kCallBuiltin,  // a = name-pool index, b = argc
  kNew,          // a = new-spec index (field values on stack, in spec order)
  kPop,
  kReturn,       // pops return value (kPushNull'ed for void paths)
  kThrow,        // pops thrown value
  kTryPush,      // a = handler ip, b = catch-variable slot
  kTryPop,
  kSyncEnter,    // pops monitor value
  kSyncExit,
};

struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
};

/// One compiled function.
struct Chunk {
  std::string name;
  int arity = 0;
  int slot_count = 0;  // locals including parameters
  std::vector<Insn> code;
  bool is_blocking = false;  // @blocking annotation
};

/// Object-construction descriptor for one `new T { ... }` site.
struct NewSpec {
  std::string struct_name;
  std::vector<std::string> fields;  // initializer field names, in stack order
};

/// A compiled program: chunks plus shared pools.
struct Module {
  std::vector<Chunk> chunks;
  std::map<std::string, int> function_index;   // name → chunk id
  std::vector<std::int64_t> int_pool;
  std::vector<std::string> string_pool;        // literals
  std::vector<std::string> name_pool;          // identifiers (fields/builtins)
  std::vector<NewSpec> new_specs;
  const Program* program = nullptr;            // for struct layouts (borrowed)

  [[nodiscard]] int chunk_of(const std::string& name) const {
    const auto it = function_index.find(name);
    return it == function_index.end() ? -1 : it->second;
  }
};

/// Human-readable disassembly of one chunk (for debugging and tests).
[[nodiscard]] std::string disassemble(const Module& module, const Chunk& chunk);

}  // namespace lisa::minilang
