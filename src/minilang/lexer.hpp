// Hand-written lexer for MiniLang. Produces the full token stream up front;
// MiniLang sources in this repository are small (hundreds of lines), so the
// simplicity is worth more than streaming.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "minilang/token.hpp"

namespace lisa::minilang {

/// Error thrown for malformed input (unterminated string, stray byte, ...).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, SourceLoc loc)
      : std::runtime_error(message + " at line " + std::to_string(loc.line) + ":" +
                           std::to_string(loc.column)),
        loc_(loc) {}
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// Tokenizes `source`; the result always ends with a kEof token.
/// Comments run from `//` to end of line and are skipped.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace lisa::minilang
