# Empty compiler generated dependencies file for lisa_support.
# This may be replaced when dependencies are built.
