// Reproduces §4 (Preliminary Results): applying LISA to the *latest*
// versions of mini-HBase and mini-HDFS with the contracts mined from their
// historical tickets uncovers the two previously-unknown bugs the paper
// reported (HBASE-29296 and HDFS-17768 analogs).
#include <cstdio>

#include "lisa/pipeline.hpp"

namespace {

void hunt(const char* case_id, const char* paper_bug, const char* expected_path) {
  using namespace lisa;
  const corpus::FailureTicket* ticket = corpus::Corpus::find(case_id);
  if (ticket == nullptr || ticket->latest_source.empty()) {
    std::printf("corpus case %s missing a latest version\n", case_id);
    return;
  }
  std::printf("=== %s: checking the latest release with rules from %s ===\n", paper_bug,
              ticket->original.id.c_str());

  const core::Pipeline pipeline;
  const core::PipelineResult result = pipeline.run(*ticket, ticket->latest_source);
  for (const core::ContractCheckReport& report : result.reports) {
    std::printf("contract %s over %zu target statements, %zu paths\n",
                report.contract_id.c_str(), report.target_statements, report.paths.size());
    for (const core::PathReport& path : report.paths) {
      std::string chain;
      for (const std::string& fn : path.call_chain) {
        if (!chain.empty()) chain += " -> ";
        chain += fn;
      }
      std::printf("  [%-9s] %s\n", core::path_verdict_name(path.verdict), chain.c_str());
      if (path.verdict == core::PathVerdict::kViolated) {
        std::printf("      NEW BUG: unguarded path (counterexample %s)\n",
                    path.counterexample.c_str());
        std::printf("      proposed fix: add the check <%s> before the call\n",
                    result.contracts[0].condition_text.c_str());
      }
    }
  }
  std::printf("expected finding: the %s path — matches the paper's community-confirmed "
              "bug.\n\n", expected_path);
}

}  // namespace

int main() {
  std::printf("LISA bug hunt over the latest mini-HBase / mini-HDFS releases\n"
              "(the paper's §4: two previously unknown, community-confirmed bugs)\n\n");
  hunt("hbase-27671-snapshot-ttl", "Bug #1 (HBASE-29296)", "scan_snapshot");
  hunt("hdfs-13924-observer-locations", "Bug #2 (HDFS-17768)", "get_batched_listing");
  return 0;
}
