// Simulated message bus with configurable latency, jitter, and loss.
//
// Endpoints register by name; send() schedules delivery on the event loop.
// Delays and drops are drawn from a seeded Rng, so histories replay exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "support/rng.hpp"
#include "systems/sim/event_loop.hpp"

namespace lisa::systems {

struct Message {
  std::string from;
  std::string to;
  std::string type;
  std::string payload;
  std::int64_t sent_at_ms = 0;
};

struct NetworkOptions {
  std::int64_t base_delay_ms = 1;
  std::int64_t jitter_ms = 0;    // uniform extra delay in [0, jitter_ms]
  double drop_rate = 0.0;        // probability a message is lost
  std::uint64_t seed = 42;
};

class MessageBus {
 public:
  using Receiver = std::function<void(const Message&)>;

  MessageBus(EventLoop& loop, NetworkOptions options = {})
      : loop_(loop), options_(options), rng_(options.seed) {}

  /// Registers (or replaces) the receiver for `endpoint`.
  void register_endpoint(const std::string& endpoint, Receiver receiver);

  /// Removes an endpoint; in-flight messages to it are dropped on delivery.
  void unregister_endpoint(const std::string& endpoint);

  /// Queues a message. Returns false if it was dropped by loss injection
  /// (delivery to unknown endpoints is counted separately at delivery time).
  bool send(const std::string& from, const std::string& to, const std::string& type,
            const std::string& payload);

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t dead_lettered() const { return dead_lettered_; }

 private:
  EventLoop& loop_;
  NetworkOptions options_;
  support::Rng rng_;
  std::map<std::string, Receiver> endpoints_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dead_lettered_ = 0;
};

}  // namespace lisa::systems
