file(REMOVE_RECURSE
  "CMakeFiles/lisa_analysis.dir/callgraph.cpp.o"
  "CMakeFiles/lisa_analysis.dir/callgraph.cpp.o.d"
  "CMakeFiles/lisa_analysis.dir/paths.cpp.o"
  "CMakeFiles/lisa_analysis.dir/paths.cpp.o.d"
  "CMakeFiles/lisa_analysis.dir/patterns.cpp.o"
  "CMakeFiles/lisa_analysis.dir/patterns.cpp.o.d"
  "CMakeFiles/lisa_analysis.dir/rename.cpp.o"
  "CMakeFiles/lisa_analysis.dir/rename.cpp.o.d"
  "liblisa_analysis.a"
  "liblisa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
