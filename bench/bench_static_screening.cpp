// Static contract screening: precision and pipeline speedup.
//
// The staticcheck screener (src/staticcheck) runs before the concolic
// replay — the pipeline's dominant cost — and settles contracts whose
// verdict is decidable from the guard-only execution tree plus dataflow
// facts. This bench measures, across every corpus contract × program
// version:
//   * the settled fraction (ProvedSafe + ProvedViolated; target ≥ 30%),
//   * agreement with the full static + concolic checker (must be exact:
//     screening is an accelerator, never an oracle), and
//   * the end-to-end wall-clock reduction with screening + trusted
//     verdicts against the unscreened checker.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "lisa/checker.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"
#include "staticcheck/screener.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace lisa;

struct Workload {
  struct Item {
    std::string label;  // "<case>/<version>"
    const minilang::Program* program = nullptr;
    const core::SemanticContract* contract = nullptr;
  };
  // Owned storage backing the Item pointers.
  std::vector<minilang::Program> programs;
  std::vector<core::TranslationResult> translations;
  std::vector<Item> items;
};

/// Parses every corpus program version once and pairs it with the contracts
/// mined from its ticket, so timing loops measure checking, not parsing.
const Workload& workload() {
  static const Workload loaded = [] {
    Workload w;
    // Reserve to keep pointers stable while filling.
    const auto& tickets = corpus::Corpus::all();
    w.programs.reserve(tickets.size() * 3);
    w.translations.reserve(tickets.size());
    for (const corpus::FailureTicket& ticket : tickets) {
      w.translations.push_back(
          core::translate(inference::MockLlm().infer(ticket), ticket.system));
      const core::TranslationResult& translation = w.translations.back();
      const std::pair<const char*, const std::string*> versions[] = {
          {"buggy", &ticket.buggy_source},
          {"patched", &ticket.patched_source},
          {"latest", &ticket.latest_source},
      };
      for (const auto& [name, source] : versions) {
        if (source->empty()) continue;
        w.programs.push_back(minilang::parse_checked(*source));
        for (const core::SemanticContract& contract : translation.contracts)
          w.items.push_back({ticket.case_id + "/" + name, &w.programs.back(), &contract});
      }
    }
    return w;
  }();
  return loaded;
}

struct ScreenStats {
  int contracts = 0;
  int proved_safe = 0;
  int proved_violated = 0;
  int unknown = 0;
  int disagreements = 0;
  double screened_ms = 0.0;  // wall clock, screening + trusted verdicts
  double full_ms = 0.0;      // wall clock, screening disabled

  [[nodiscard]] int settled() const { return proved_safe + proved_violated; }
  [[nodiscard]] double settled_fraction() const {
    return contracts == 0 ? 0.0 : static_cast<double>(settled()) / contracts;
  }
};

ScreenStats run_comparison(std::vector<std::string>* disagreement_lines) {
  ScreenStats stats;
  const core::Checker checker;
  core::CheckOptions screened_options;
  screened_options.trust_screen_verdicts = true;  // CI-style: outcome only
  core::CheckOptions full_options;
  full_options.static_screen = false;

  for (const Workload::Item& item : workload().items) {
    ++stats.contracts;
    const support::Stopwatch full_timer;
    const core::ContractCheckReport truth =
        checker.check(*item.program, *item.contract, full_options);
    stats.full_ms += full_timer.elapsed_ms();

    const support::Stopwatch screened_timer;
    const core::ContractCheckReport screened =
        checker.check(*item.program, *item.contract, screened_options);
    stats.screened_ms += screened_timer.elapsed_ms();

    if (screened.screen_verdict == "proved-safe") {
      ++stats.proved_safe;
      if (!truth.passed()) {
        ++stats.disagreements;
        if (disagreement_lines != nullptr)
          disagreement_lines->push_back(item.label + " " + item.contract->id +
                                        ": screener safe, checker violated");
      }
    } else if (screened.screen_verdict == "proved-violated") {
      ++stats.proved_violated;
      if (truth.passed()) {
        ++stats.disagreements;
        if (disagreement_lines != nullptr)
          disagreement_lines->push_back(item.label + " " + item.contract->id +
                                        ": screener violated, checker passed");
      }
    } else {
      ++stats.unknown;
      // Unknown must fall through to the identical full-check outcome.
      if (screened.passed() != truth.passed()) {
        ++stats.disagreements;
        if (disagreement_lines != nullptr)
          disagreement_lines->push_back(item.label + " " + item.contract->id +
                                        ": unknown-path outcome diverged");
      }
    }
  }
  return stats;
}

int print_screening_table() {
  std::vector<std::string> disagreements;
  const ScreenStats stats = run_comparison(&disagreements);

  std::printf("=== Static contract screening vs concolic ground truth ===\n\n");
  std::printf("contracts x versions checked: %d\n", stats.contracts);
  std::printf("  proved safe:      %d\n", stats.proved_safe);
  std::printf("  proved violated:  %d\n", stats.proved_violated);
  std::printf("  unknown:          %d (fall through to the full check)\n", stats.unknown);
  std::printf("  settled fraction: %.1f%% (target >= 30%%)\n",
              100.0 * stats.settled_fraction());
  std::printf("  disagreements:    %d (must be 0)\n", stats.disagreements);
  for (const std::string& line : disagreements) std::printf("    !! %s\n", line.c_str());
  const double reduction =
      stats.full_ms <= 0.0 ? 0.0 : 100.0 * (1.0 - stats.screened_ms / stats.full_ms);
  std::printf("\nwall clock: full %.1f ms, screened %.1f ms (%.1f%% reduction)\n\n",
              stats.full_ms, stats.screened_ms, reduction);

  const bool ok = stats.disagreements == 0 && stats.settled_fraction() >= 0.30 &&
                  stats.screened_ms < stats.full_ms;
  std::printf("shape check: %s — screening settles a third or more of the corpus\n"
              "statically, never contradicts the concolic verdict, and cuts the\n"
              "end-to-end checking time.\n\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

void BM_FullCheck(benchmark::State& state) {
  const core::Checker checker;
  core::CheckOptions options;
  options.static_screen = false;
  for (auto _ : state) {
    int violated = 0;
    for (const Workload::Item& item : workload().items)
      violated += checker.check(*item.program, *item.contract, options).violated;
    benchmark::DoNotOptimize(violated);
  }
}
BENCHMARK(BM_FullCheck)->Unit(benchmark::kMillisecond);

void BM_ScreenedCheck(benchmark::State& state) {
  const core::Checker checker;
  core::CheckOptions options;
  options.trust_screen_verdicts = true;
  for (auto _ : state) {
    int violated = 0;
    for (const Workload::Item& item : workload().items)
      violated += checker.check(*item.program, *item.contract, options).violated;
    benchmark::DoNotOptimize(violated);
  }
}
BENCHMARK(BM_ScreenedCheck)->Unit(benchmark::kMillisecond);

void BM_ScreenerOnly(benchmark::State& state) {
  for (auto _ : state) {
    int settled = 0;
    for (const Workload::Item& item : workload().items) {
      if (item.contract->condition == nullptr) continue;
      const staticcheck::Screener screener(*item.program);
      const staticcheck::ScreenResult result = screener.screen_state_predicate(
          item.contract->target_fragment, item.contract->condition);
      settled += result.verdict != staticcheck::ScreenVerdict::kUnknown ? 1 : 0;
    }
    benchmark::DoNotOptimize(settled);
  }
}
BENCHMARK(BM_ScreenerOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int status = print_screening_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return status;
}
