// Tests for witness-test synthesis from SMT models of uncovered paths.
#include <gtest/gtest.h>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "concolic/engine.hpp"
#include "concolic/testgen.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"

namespace lisa::concolic {
namespace {

const char* kBilling = R"(
struct Account { id: int; frozen: bool; balance: int; }
fn debit(a: Account, amount: int) {
  a.balance = a.balance - amount;
}
@entry
fn pay(a: Account?, amount: int) {
  if (a == null) { throw "NoSuchAccount"; }
  if (a.frozen) { throw "AccountFrozen"; }
  if (amount <= 0) { throw "BadAmount"; }
  debit(a, amount);
}
@entry
fn refund(a: Account?, amount: int) {
  if (a == null) { throw "NoSuchAccount"; }
  debit(a, 0 - amount);
}
)";

analysis::ExecutionTree tree_for(const minilang::Program& program,
                                 const std::string& condition) {
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions options;
  options.contract_condition = *smt::parse_condition(condition);
  // Synthesis needs the FULL path condition: guards the contract does not
  // mention (e.g. `amount > 0`) still decide whether the entry reaches the
  // target, so the tree is built unpruned.
  options.prune_irrelevant = false;
  return analysis::build_execution_tree(program, graph, "debit(", options);
}

TEST(TestGen, SynthesizesCoveringTestForGuardedPath) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  const analysis::ExecutionTree tree =
      tree_for(program, "!(a == null) && !(a.frozen)");
  const analysis::ExecutionPath* pay_path = nullptr;
  for (const analysis::ExecutionPath& path : tree.paths)
    if (path.call_chain.front() == "pay") pay_path = &path;
  ASSERT_NE(pay_path, nullptr);

  const auto test = synthesize_path_test(program, *pay_path, /*violating=*/false, 1);
  ASSERT_TRUE(test.has_value());
  EXPECT_NE(test->source.find("fn synth_cover_1()"), std::string::npos);
  EXPECT_NE(test->source.find("pay(arg0, arg1)"), std::string::npos);
  // The synthesized amount must satisfy the path's amount > 0 guard.
  EXPECT_TRUE(validate_synthesized_test(program, *test, "debit("));
}

TEST(TestGen, SynthesizesViolationWitnessForUnguardedPath) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  const analysis::ExecutionTree tree =
      tree_for(program, "!(a == null) && !(a.frozen)");
  const analysis::ExecutionPath* refund_path = nullptr;
  for (const analysis::ExecutionPath& path : tree.paths)
    if (path.call_chain.front() == "refund") refund_path = &path;
  ASSERT_NE(refund_path, nullptr);

  const auto witness = synthesize_path_test(program, *refund_path, /*violating=*/true, 2);
  ASSERT_TRUE(witness.has_value());
  // The model must set frozen = true (the missing check's complement).
  EXPECT_NE(witness->source.find("frozen: true"), std::string::npos);
  EXPECT_TRUE(validate_synthesized_test(program, *witness, "debit("));
}

TEST(TestGen, GuardedPathHasNoViolationWitness) {
  const minilang::Program program = minilang::parse_checked(kBilling);
  const analysis::ExecutionTree tree =
      tree_for(program, "!(a == null) && !(a.frozen)");
  for (const analysis::ExecutionPath& path : tree.paths) {
    if (path.call_chain.front() != "pay") continue;
    // π ∧ ¬P is UNSAT on the guarded path: no witness exists.
    EXPECT_FALSE(synthesize_path_test(program, path, /*violating=*/true, 3).has_value());
  }
}

TEST(TestGen, RefusesContainerMediatedState) {
  // State reached through a map lookup cannot be established via arguments.
  const minilang::Program program = minilang::parse_checked(R"(
struct Session { is_closing: bool; }
struct Server { sessions: map<string, Session>; }
fn act(s: Session) { print(s); }
@entry
fn handle(server: Server, id: int) {
  let s = get(server.sessions, str(id));
  if (s == null) { throw "expired"; }
  act(s);
}
)");
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions options;
  options.contract_condition = *smt::parse_condition("!(s == null) && !(s.is_closing)");
  const analysis::ExecutionTree tree =
      analysis::build_execution_tree(program, graph, "act(", options);
  ASSERT_FALSE(tree.paths.empty());
  EXPECT_FALSE(
      synthesize_path_test(program, tree.paths[0], /*violating=*/true, 4).has_value());
}

TEST(TestGen, RefusesListParameters) {
  const minilang::Program program = minilang::parse_checked(R"(
struct S { ok: bool; }
fn act2(s: S) { print(s); }
@entry
fn batch(s: S, items: list<int>) {
  act2(s);
}
)");
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions options;
  options.contract_condition = *smt::parse_condition("s.ok");
  const analysis::ExecutionTree tree =
      analysis::build_execution_tree(program, graph, "act2(", options);
  ASSERT_FALSE(tree.paths.empty());
  EXPECT_FALSE(
      synthesize_path_test(program, tree.paths[0], /*violating=*/true, 5).has_value());
}

TEST(TestGen, NullableWitnessWhenContractRequiresNonNull) {
  const minilang::Program program = minilang::parse_checked(R"(
struct S { ok: bool; }
fn act3(s: S?) { print(s); }
@entry
fn forward(s: S?) {
  act3(s);
}
)");
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions options;
  options.contract_condition = *smt::parse_condition("!(s == null)");
  const analysis::ExecutionTree tree =
      analysis::build_execution_tree(program, graph, "act3(", options);
  ASSERT_FALSE(tree.paths.empty());
  const auto witness =
      synthesize_path_test(program, tree.paths[0], /*violating=*/true, 6);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->source.find("= null"), std::string::npos);
  EXPECT_TRUE(validate_synthesized_test(program, *witness, "act3("));
}

}  // namespace
}  // namespace lisa::concolic
