file(REMOVE_RECURSE
  "CMakeFiles/zookeeper_incident.dir/zookeeper_incident.cpp.o"
  "CMakeFiles/zookeeper_incident.dir/zookeeper_incident.cpp.o.d"
  "zookeeper_incident"
  "zookeeper_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zookeeper_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
