// Deterministic pseudo-random number generator (SplitMix64).
//
// Every stochastic component in this repository — workload generators, the
// discrete-event simulator, the LLM-noise ablation — draws from an explicit
// Rng instance seeded by the caller, so all experiments replay bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace lisa::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64 step).
  std::uint64_t next_u64() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw.
  bool next_bool(double probability_true = 0.5) { return next_double() < probability_true; }

  /// Picks a uniformly random element index for a container of size `n`.
  std::size_t pick_index(std::size_t n) { return static_cast<std::size_t>(next_below(n)); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = pick_index(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace lisa::support
