// Simulates the development workflow the paper envisions (§1): every fixed
// failure becomes an executable contract in the CI/CD pipeline, and commits
// that would reintroduce the failure class are blocked.
//
// The commit stream below mirrors the real ZooKeeper history:
//   commit 1  the ZK-1208 fix lands              → contract mined + stored
//   commit 2  unrelated feature work             → passes the gate
//   commit 3  the change that routed traffic through the unguarded batch
//             path (the ZK-1496 regression)      → BLOCKED by the gate
//   commit 4  the complete fix (guards the batch path too) → passes
#include <cstdio>

#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "support/strings.hpp"

namespace {

void print_decision(const char* label, const lisa::core::GateDecision& decision) {
  std::printf("%-46s %s  (%.1f ms, %zu contracts checked)\n", label,
              decision.allowed ? "ALLOWED" : "BLOCKED", decision.evaluation_ms,
              decision.reports.size());
  for (const std::string& violation : decision.violations)
    std::printf("    - %s\n", violation.c_str());
}

}  // namespace

int main() {
  using namespace lisa;
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");

  std::printf("=== commit 1: the ZK-1208 fix lands ===\n");
  std::printf("LISA mines the incident ticket and stores the contract.\n\n");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  core::TranslationResult translation = core::translate(proposal, ticket->system);
  core::ContractStore store;
  store.add_all(std::move(translation.contracts));
  for (const core::SemanticContract& contract : store.all())
    std::printf("stored contract %s: <%s> %s\n", contract.id.c_str(),
                contract.condition_text.c_str(), contract.target_fragment.c_str());

  // For gating we use the static checker only (fast path for CI).
  core::CheckOptions options;
  options.run_concolic = false;
  const core::CiGate gate(options);

  std::printf("\n=== evaluating the commit stream ===\n");

  // Commit 2: unrelated feature — a fresh module with no ephemeral logic.
  const std::string commit2 = R"ml(
struct Metric { name: string; value: int; }
fn record_metric(m: Metric) { print(m.name, m.value); }
@entry
fn report(m: Metric) { record_metric(m); }
)ml";
  print_decision("commit 2 (unrelated feature):", gate.evaluate(commit2, store));

  // Commit 3: the history-repeating commit. The patched codebase still ships
  // the unguarded batch path; this commit is exactly what production ran
  // when ZK-1496 fired one year later.
  print_decision("commit 3 (re-exposes the unguarded batch path):",
                 gate.evaluate(ticket->patched_source, store));

  // Commit 4: the complete fix — the batch path gets the same guard.
  std::string commit4 = ticket->patched_source;
  const std::string anchor =
      "  let i = 0;\n  while (i < len(paths)) {\n    create_ephemeral_node(";
  const std::size_t pos = commit4.find(anchor);
  if (pos != std::string::npos)
    commit4.insert(pos, "  if (s.is_closing) {\n    throw \"SessionClosingException\";\n  }\n");
  print_decision("commit 4 (guards every create path):", gate.evaluate(commit4, store));

  std::printf("\nOnce bitten, no longer shy: the second incident never ships.\n");
  return 0;
}
