// Tree-walking interpreter for MiniLang.
//
// This is the *concrete* engine: it runs corpus programs and their @test
// functions natively (the concolic engine in src/concolic re-implements the
// walk with shadow symbolic state). A virtual clock and a pluggable observer
// make executions deterministic and measurable.
//
// Thread scheduling: `spawn f(args);` statements create cooperative thread
// roots. Outside a scheduled run the spawned call executes inline to
// completion at the spawn point (serial semantics — single-schedule replay
// by construction). Inside run_scheduled_test() every spawn becomes a real
// thread handing a single execution token around: the interpreter yields at
// scheduling points (spawn, sync enter/exit, blocking builtins, shared
// field access, wait/notify/join), and a ScheduleController decides which
// runnable thread proceeds. Exactly one thread executes at any moment, so
// interpreter state needs no locking and runs are fully deterministic for a
// fixed decision sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minilang/ast.hpp"
#include "minilang/value.hpp"

namespace lisa::minilang {

/// MiniLang-level exception (a `throw` that escaped to the host).
class MiniThrow : public std::runtime_error {
 public:
  explicit MiniThrow(Value value)
      : std::runtime_error("uncaught MiniLang exception: " + value.to_display()),
        value_(std::move(value)) {}
  [[nodiscard]] const Value& value() const noexcept { return value_; }

 private:
  Value value_;
};

/// Engine-level error: type confusion, unknown function.
class InterpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Step-limit (fuel) exhaustion — a *resource* outcome, not a program bug.
/// Distinct from InterpError so the checking stack can route it into
/// inconclusive accounting instead of reporting a generic engine failure;
/// still an InterpError subtype so existing catch sites keep working.
class StepLimitExceeded : public InterpError {
 public:
  explicit StepLimitExceeded(std::int64_t limit)
      : InterpError("step limit exhausted after " + std::to_string(limit) +
                    " statements: possible non-terminating MiniLang program"),
        limit_(limit) {}
  [[nodiscard]] std::int64_t limit() const noexcept { return limit_; }

 private:
  std::int64_t limit_ = 0;
};

/// Mutable view of the executing frame, handed to state-observing
/// callbacks (ExecObserver::on_state). Lookups see every scope of the
/// current function frame, innermost first; returned pointers stay valid
/// only for the duration of the callback. Mutation through the pointer is
/// deliberate — the counterexample narrator (obs/explain.hpp) injects
/// witness state this way.
class StateAccess {
 public:
  virtual ~StateAccess() = default;
  /// The live slot for local `name`, or nullptr when no scope defines it.
  [[nodiscard]] virtual Value* lookup(const std::string& name) = 0;
  /// Every visible local name (unordered; callers sort for determinism).
  [[nodiscard]] virtual std::vector<std::string> local_names() const = 0;
  /// Monitors held at this statement.
  [[nodiscard]] virtual int sync_depth() const = 0;
};

/// Observation points used by coverage measurement and the runtime
/// blocking-in-sync detector. All callbacks default to no-ops.
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  virtual void on_stmt(const FuncDecl& fn, const Stmt& stmt) { (void)fn, (void)stmt; }
  virtual void on_call(const FuncDecl& fn) { (void)fn; }
  /// Fired when a blocking builtin (or @blocking function) executes.
  /// `sync_depth` > 0 means the call happens while holding a monitor.
  virtual void on_blocking(const std::string& name, int sync_depth) {
    (void)name, (void)sync_depth;
  }
  /// Opt-in state observation: when wants_state() returns true, on_state
  /// fires before every statement with a mutable view of the live frame.
  /// Kept behind the flag so the common observers pay one virtual call,
  /// not a frame adapter, per statement.
  [[nodiscard]] virtual bool wants_state() { return false; }
  virtual void on_state(const FuncDecl& fn, const Stmt& stmt, StateAccess& state) {
    (void)fn, (void)stmt, (void)state;
  }
};

/// Names of builtins that model blocking I/O (serialization, disk, network).
/// These advance the virtual clock and trip the blocking-in-sync detector.
[[nodiscard]] const std::unordered_set<std::string>& blocking_builtins();

// ---------------------------------------------------------------------------
// Cooperative scheduling
// ---------------------------------------------------------------------------

/// One operation a scheduled thread is about to perform at a yield point.
/// `resource` is a deterministic key ("m:obj:7" for monitors,
/// "f:7.value" for field access) used by the schedule explorer to decide
/// which pending operations commute.
struct ScheduleOp {
  enum class Kind {
    kStart,       // thread created, first statement pending
    kSpawn,       // about to create a new thread (resource = root function)
    kSyncEnter,   // about to acquire a monitor
    kSyncExit,    // just released a monitor
    kFieldRead,   // about to read an object field
    kFieldWrite,  // about to write an object field
    kBlocking,    // about to run a blocking builtin
    kWait,        // about to wait on a monitor
    kNotify,      // just notified a monitor
    kJoin,        // waiting for every other thread to finish
  };
  Kind kind = Kind::kStart;
  std::string resource;
};

[[nodiscard]] const char* schedule_op_name(ScheduleOp::Kind kind);

/// A runnable thread offered to the controller at a yield point, with the
/// operation it will perform when scheduled.
struct ThreadStatus {
  int thread_id = 0;
  ScheduleOp op;
};

/// Schedule decision source. pick() fires at every yield point where more
/// than one thread is runnable; `runnable` is sorted by thread id and never
/// empty. Returning an id not in the list falls back to the lowest id (so a
/// stale witness degrades deterministically instead of aborting the run);
/// returning kPruneRun aborts the run without a verdict (the sleep-set DFS
/// uses it to cut interleavings it has proven redundant).
class ScheduleController {
 public:
  /// pick() may return this to abandon the run as redundant: the scheduler
  /// tears the schedule down and reports the run as pruned, not failed.
  static constexpr int kPruneRun = -1;

  virtual ~ScheduleController() = default;
  virtual int pick(const std::vector<ThreadStatus>& runnable) = 0;
  /// Fired at every scheduling grant — including forced grants where only
  /// one thread was runnable and pick() was never consulted — with the
  /// thread and the operation it is about to perform. Sleep-set pruning
  /// needs this full op stream to decide which sleeping threads to wake.
  virtual void observe(const ThreadStatus& granted) { (void)granted; }
};

/// Outcome of one scheduled execution of a @test function.
struct ScheduleRunResult {
  bool test_passed = false;
  /// No runnable thread while unfinished threads remained: a deadlock or a
  /// missed-notify hang under this schedule.
  bool hung = false;
  /// The run was cut short by the interpreter step limit — a resource
  /// outcome, not a verdict (the explorer reports it as inconclusive).
  bool degraded = false;
  /// The controller returned kPruneRun: the interleaving was abandoned as
  /// redundant. Neither a pass nor a failure — the covering schedule was
  /// (or will be) explored elsewhere.
  bool pruned = false;
  int threads_spawned = 0;
  /// pick() calls made — yield points where the schedule actually chose.
  int decisions = 0;
  std::string error;  // first failure: assert text, hang detail, engine error
};

/// Scheduler operations reachable from builtins (wait/notify/join_all).
/// Null outside scheduled runs, where these builtins are no-ops — the
/// serial semantics under which spawned roots already ran to completion.
class SchedulerHooks {
 public:
  virtual ~SchedulerHooks() = default;
  virtual void wait_on(const Value& monitor) = 0;
  virtual void notify(const Value& monitor, bool all) = 0;
  virtual void join_all() = 0;
};

class Interp {
 public:
  /// `program` must outlive the interpreter.
  explicit Interp(const Program& program);

  /// Calls a MiniLang function by name. Throws MiniThrow for uncaught
  /// MiniLang exceptions, InterpError for engine errors.
  Value call(const std::string& function, std::vector<Value> args);

  /// Runs one @test function; returns true on success, false if the test
  /// threw. Failure detail is available via last_error().
  bool run_test(const std::string& test_name);

  /// Runs every @test function; returns (passed, failed) counts.
  std::pair<int, int> run_all_tests();

  /// Runs one @test function under the cooperative scheduler: every spawn
  /// becomes a thread and `controller` decides the interleaving. Threads
  /// still running when the test body returns are drained to completion
  /// (an implicit join); a state where no thread can proceed is reported
  /// as hung, not as a crash.
  ScheduleRunResult run_scheduled_test(const std::string& test_name,
                                       ScheduleController& controller);

  /// Id of the currently executing thread: 0 for the main/test thread and
  /// for every serial run, 1.. for spawned threads during scheduled runs.
  /// Trace recorders use this to tag steps with their thread.
  [[nodiscard]] int current_thread_id() const { return ctx_->id; }

  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  /// True when the last run_test() failed because the step limit ran out
  /// (see set_fuel) rather than a program error — a structured outcome the
  /// caller should surface as inconclusive, not as a test failure.
  [[nodiscard]] bool last_run_hit_step_limit() const { return step_limit_hit_; }

  /// Virtual clock (milliseconds). now() in MiniLang reads this.
  [[nodiscard]] std::int64_t now_ms() const { return now_ms_; }
  void set_now_ms(std::int64_t ms) { now_ms_ = ms; }

  /// Per-blocking-call latency added to the virtual clock.
  void set_blocking_latency_ms(std::int64_t ms) { blocking_latency_ms_ = ms; }

  /// Upper bound on executed statements per call(); guards against
  /// non-terminating corpus programs. Default 2 million.
  void set_fuel(std::int64_t fuel) { fuel_limit_ = fuel; }

  void set_observer(ExecObserver* observer) { observer_ = observer; }

  /// Output accumulated by print(); cleared by take_output().
  [[nodiscard]] std::string take_output() { return std::exchange(output_, std::string()); }

  /// Statement ids executed since construction (coverage).
  [[nodiscard]] const std::unordered_set<int>& covered_stmts() const { return covered_; }

 private:
  struct Frame {
    std::vector<std::unordered_map<std::string, Value>> scopes;
  };
  enum class Flow { kNormal, kReturn, kBreak, kContinue };

  /// Per-thread interpreter state. Serial runs use main_ctx_ only; during
  /// scheduled runs the scheduler swaps ctx_ to the active thread's record
  /// at every token handoff, so monitor depth, call depth, and the current
  /// function are tracked per thread (two runnable threads must not share a
  /// sync depth — the blocking-in-sync detector would misfire).
  struct ThreadCtx {
    int id = 0;
    int sync_depth = 0;
    int call_depth = 0;
    const FuncDecl* current_fn = nullptr;  // function whose body is executing
  };

  class Scheduler;  // cooperative token-passing scheduler (interp.cpp)
  friend class Scheduler;

  Value call_function(const FuncDecl& fn, std::vector<Value> args);
  Flow exec_block(const std::vector<StmtPtr>& stmts, Frame& frame, Value& return_value);
  Flow exec_stmt(const Stmt& stmt, Frame& frame, Value& return_value);
  Value eval(const Expr& expr, Frame& frame);
  Value eval_binary(const Expr& expr, Frame& frame);
  Value call_builtin(const std::string& name, const Expr& expr, Frame& frame);
  Value* lookup(Frame& frame, const std::string& name);
  void assign_lvalue(const Expr& lvalue, Value value, Frame& frame);
  void burn_fuel();
  [[nodiscard]] bool truthy(const Value& v, const Expr& where) const;

  const Program& program_;
  ExecObserver* observer_ = nullptr;
  std::string output_;
  std::string last_error_;
  std::int64_t now_ms_ = 0;
  std::int64_t blocking_latency_ms_ = 5;
  std::int64_t fuel_limit_ = 2'000'000;
  std::int64_t fuel_used_ = 0;
  bool step_limit_hit_ = false;
  ThreadCtx main_ctx_;
  ThreadCtx* ctx_ = &main_ctx_;
  Scheduler* sched_ = nullptr;  // non-null only inside run_scheduled_test
  std::uint64_t next_object_id_ = 1;
  std::unordered_set<int> covered_;
};

}  // namespace lisa::minilang
