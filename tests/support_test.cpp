// Unit tests for src/support: strings, JSON, RNG.
#include <gtest/gtest.h>

#include <thread>

#include "support/json.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace lisa::support {
namespace {

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(contains("haystack", "sta"));
  EXPECT_TRUE(contains_ci("HayStack", "hays"));
  EXPECT_FALSE(contains_ci("HayStack", "xyz"));
}

TEST(Strings, JoinAndReplaceAll) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

TEST(Strings, WordTokensLowercasesAndSplitsOnPunct) {
  const auto tokens = word_tokens("Create_Ephemeral(server, Path)");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "create_ephemeral");
  EXPECT_EQ(tokens[1], "server");
  EXPECT_EQ(tokens[2], "path");
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, RoundTripScalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ParseObjectAndAccess) {
  const Json v = Json::parse(R"({"a": 1, "b": [true, null], "c": {"d": "x"}})");
  EXPECT_EQ(v.get_int("a"), 1);
  EXPECT_TRUE(v.at("b").as_array()[0].as_bool());
  EXPECT_TRUE(v.at("b").as_array()[1].is_null());
  EXPECT_EQ(v.at("c").get_string("d"), "x");
  EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
}

TEST(Json, EscapesSpecialCharacters) {
  const Json v = Json(std::string("line\n\"quote\"\tta\\b"));
  const Json back = Json::parse(v.dump());
  EXPECT_EQ(back.as_string(), "line\n\"quote\"\tta\\b");
}

TEST(Json, ParseRejectsTrailingGarbage) {
  EXPECT_THROW(Json::parse("{} x"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse(""), JsonParseError);
}

TEST(Json, ParseUnicodeEscape) {
  const Json v = Json::parse(R"("Aé")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");
}

TEST(Json, NegativeAndDoubleNumbers) {
  const Json v = Json::parse("[-5, 2.5, 1e3]");
  EXPECT_EQ(v.as_array()[0].as_int(), -5);
  EXPECT_DOUBLE_EQ(v.as_array()[1].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(v.as_array()[2].as_double(), 1000.0);
}

TEST(Json, StableKeyOrderInDump) {
  JsonObject o;
  o["zebra"] = Json(1);
  o["apple"] = Json(2);
  EXPECT_EQ(Json(std::move(o)).dump(), R"({"apple":2,"zebra":1})");
}

TEST(Json, PrettyPrintsIndented) {
  JsonObject o;
  o["k"] = Json(JsonArray{Json(1)});
  const std::string pretty = Json(std::move(o)).pretty();
  EXPECT_NE(pretty.find("\n  \"k\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextInRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.next_bool(0.3)) ++heads;
  EXPECT_GT(heads, 2600);
  EXPECT_LT(heads, 3400);
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

TEST(Log, ParseLogLevelAcceptsAllSpellings) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::warn);
  EXPECT_EQ(parse_log_level("WARNING"), LogLevel::warn);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::off);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(Log, RenderedLineCarriesElapsedPrefixThreadAndLevel) {
  const std::string line = render_log_line(LogLevel::warn, "spilled to concolic");
  // "[+     12.345ms] [t1] [WARN] spilled to concolic" — fixed-width elapsed
  // ms from the process epoch plus the sequential thread number, so lines
  // correlate with trace timestamps AND span thread ids.
  ASSERT_GE(line.size(), 2u);
  EXPECT_EQ(line.substr(0, 2), "[+");
  const std::size_t ms = line.find("ms] ");
  ASSERT_NE(ms, std::string::npos);
  const std::string elapsed = line.substr(2, ms - 2);
  EXPECT_NE(elapsed.find('.'), std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(elapsed), std::stod(elapsed));  // parses as a number
  EXPECT_GE(std::stod(elapsed), 0.0);
  EXPECT_NE(line.find("[WARN] spilled to concolic"), std::string::npos);
  // The thread field sits between elapsed and level, numbered from this
  // thread's stable sequential id.
  const std::string tid = "[t" + std::to_string(this_thread_number()) + "] ";
  EXPECT_NE(line.find(tid + "[WARN]"), std::string::npos) << line;
}

TEST(Log, ThreadNumbersAreStablePerThreadAndDistinctAcrossThreads) {
  const std::uint32_t mine = this_thread_number();
  EXPECT_GE(mine, 1u);
  EXPECT_EQ(this_thread_number(), mine);  // stable within a thread
  std::uint32_t other = 0;
  std::thread worker([&] { other = this_thread_number(); });
  worker.join();
  EXPECT_NE(other, mine);
  EXPECT_GE(other, 1u);
  // Every rendered line on this thread carries the same [tN].
  const std::string tag = "[t" + std::to_string(mine) + "]";
  EXPECT_NE(render_log_line(LogLevel::info, "x").find(tag), std::string::npos);
}

TEST(Log, ElapsedPrefixIsMonotonic) {
  const auto elapsed_of = [](const std::string& line) {
    return std::stod(line.substr(2, line.find("ms] ") - 2));
  };
  const double first = elapsed_of(render_log_line(LogLevel::info, "a"));
  const double second = elapsed_of(render_log_line(LogLevel::info, "b"));
  EXPECT_GE(second, first);
}

TEST(Log, LevelNamesAlignAcrossLevels) {
  EXPECT_NE(render_log_line(LogLevel::debug, "m").find("[DEBUG]"), std::string::npos);
  EXPECT_NE(render_log_line(LogLevel::info, "m").find("[INFO]"), std::string::npos);
  EXPECT_NE(render_log_line(LogLevel::error, "m").find("[ERROR]"), std::string::npos);
}

}  // namespace
}  // namespace lisa::support
