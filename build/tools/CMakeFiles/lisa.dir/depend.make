# Empty dependencies file for lisa.
# This may be replaced when dependencies are built.
