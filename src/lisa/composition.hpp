// Composing validated low-level semantics into high-level guarantees
// (§5, third open question).
//
// "Low-level semantics might serve as building blocks for higher-level
//  guarantees. Our long-term goal is to logically compose multiple low-level
//  semantic rules and merge partial insights, so that it could provide a
//  more complete, high-level form of system correctness guarantee ... we
//  plan to begin with a preliminary study on the collected cases."
//
// This module implements that preliminary study: a high-level property is
// declared as a named claim plus the set of low-level contracts that jointly
// entail it (an explicit entailment obligation, reviewed by a human — the
// part today's techniques cannot automate). The composer then:
//   * checks every constituent contract on the codebase,
//   * reports the property as GUARANTEED only when all constituents hold
//     everywhere (no violated, unmappable, or structurally violating path),
//   * otherwise lists exactly which constituent broke where — turning a
//     high-level "ephemeral nodes are cleaned up" alarm into the low-level
//     unguarded path that explains it.
#pragma once

#include <string>
#include <vector>

#include "lisa/checker.hpp"
#include "lisa/contract.hpp"

namespace lisa::core {

/// A high-level system property composed from low-level contracts.
struct HighLevelProperty {
  std::string id;
  std::string statement;  // e.g. "every ephemeral node is deleted once its
                          // client session is fully disconnected"
  /// Contracts that jointly entail the property (human-reviewed obligation).
  std::vector<SemanticContract> constituents;
};

enum class PropertyStatus {
  kGuaranteed,   // every constituent holds on every path
  kBroken,       // >=1 constituent violated somewhere
  kInconclusive, // no violation, but unmappable/uncovered paths remain
};

[[nodiscard]] const char* property_status_name(PropertyStatus status);

struct PropertyReport {
  std::string property_id;
  PropertyStatus status = PropertyStatus::kInconclusive;
  std::vector<ContractCheckReport> constituent_reports;
  /// Human-readable explanations of what broke / what is unresolved.
  std::vector<std::string> findings;

  [[nodiscard]] support::Json to_json() const;
};

class Composer {
 public:
  explicit Composer(CheckOptions options = {}) : options_(std::move(options)) {}

  /// Evaluates the property on `program` by checking every constituent.
  [[nodiscard]] PropertyReport evaluate(const minilang::Program& program,
                                        const HighLevelProperty& property) const;

 private:
  CheckOptions options_;
};

/// The paper's running example assembled as a composed property: the
/// ephemeral-node lifecycle guarantee built from the creation-guard contract
/// mined from ZK-1208 (plus any extra contracts the caller adds).
[[nodiscard]] HighLevelProperty ephemeral_lifecycle_property(
    std::vector<SemanticContract> constituents);

}  // namespace lisa::core
