#include "obs/trace.hpp"

#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace lisa::obs {

namespace {

/// Innermost live span ids of the current thread, for parent linkage.
thread_local std::vector<std::uint64_t> t_span_stack;

double now_us() {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   support::process_epoch())
      .count();
}

}  // namespace

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void Tracer::record(SpanRecord&& span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

support::Json Tracer::chrome_trace() const {
  support::JsonArray events;
  for (const SpanRecord& span : snapshot()) {
    support::JsonObject event;
    event["name"] = span.name;
    event["cat"] = "lisa";
    event["ph"] = "X";
    event["ts"] = span.start_us;
    event["dur"] = span.dur_us;
    event["pid"] = 1;
    event["tid"] = static_cast<std::int64_t>(span.tid);
    support::JsonObject args;
    args["span_id"] = static_cast<std::int64_t>(span.id);
    args["parent_id"] = static_cast<std::int64_t>(span.parent_id);
    for (const auto& [key, value] : span.attrs) args[key] = value;
    event["args"] = support::Json(std::move(args));
    events.push_back(support::Json(std::move(event)));
  }
  support::JsonObject root;
  root["traceEvents"] = support::Json(std::move(events));
  root["displayTimeUnit"] = "ms";
  return support::Json(std::move(root));
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

ScopedSpan::ScopedSpan(Tracer& tracer, const char* name)
    : tracer_(&tracer), start_(std::chrono::steady_clock::now()) {
  if (!tracer.enabled()) return;
  record_ = std::make_unique<SpanRecord>();
  record_->id = tracer.next_id();
  record_->parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  // Shared with the logger's [tN] prefix so traces and stderr correlate.
  record_->tid = support::this_thread_number();
  record_->name = name;
  record_->start_us = now_us();
  t_span_stack.push_back(record_->id);
}

ScopedSpan::~ScopedSpan() { close(); }

void ScopedSpan::close() {
  if (record_ == nullptr) return;
  record_->dur_us = now_us() - record_->start_us;
  t_span_stack.pop_back();
  tracer_->record(std::move(*record_));
  record_.reset();
}

void ScopedSpan::attr(const char* key, support::Json value) {
  if (record_ == nullptr) return;
  record_->attrs.emplace_back(key, std::move(value));
}

}  // namespace lisa::obs
