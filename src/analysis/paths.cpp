#include "analysis/paths.hpp"

#include <map>
#include <unordered_set>

#include "minilang/printer.hpp"
#include "smt/minilang_bridge.hpp"

namespace lisa::analysis {

using minilang::Expr;
using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;
using minilang::StmtPtr;

std::string ExecutionPath::key() const {
  std::string out;
  for (const std::string& fn : call_chain) out += fn + ">";
  out += "#" + std::to_string(target != nullptr ? target->id : -1);
  for (const GuardStep& guard : guards) out += "|" + guard.text + (guard.taken ? "+" : "-");
  return out;
}

std::vector<std::pair<const FuncDecl*, const Stmt*>> find_target_statements(
    const Program& program, const std::string& fragment) {
  std::vector<std::pair<const FuncDecl*, const Stmt*>> out;
  program.for_each_stmt([&](const FuncDecl& fn, const Stmt& stmt) {
    if (fn.has_annotation("test")) return;
    if (minilang::stmt_header_text(stmt).find(fragment) != std::string::npos)
      out.emplace_back(&fn, &stmt);
  });
  return out;
}

namespace {

/// (guard expression, polarity) pairs in the local frame, pre-rename.
using LocalGuard = std::pair<const Expr*, bool>;
using LocalPath = std::vector<LocalGuard>;

bool subtree_contains(const std::vector<StmtPtr>& stmts, const Stmt* target) {
  for (const StmtPtr& stmt : stmts) {
    if (stmt.get() == target) return true;
    if (subtree_contains(stmt->body, target)) return true;
    if (subtree_contains(stmt->else_body, target)) return true;
  }
  return false;
}

/// Enumerates all guard prefixes within one function that reach `target`.
class LocalEnumerator {
 public:
  LocalEnumerator(const Stmt* target, std::size_t cap, bool* truncated)
      : target_(target), cap_(cap), truncated_(truncated) {}

  std::vector<LocalPath> run(const FuncDecl& fn) {
    std::vector<LocalPath> live;
    live.emplace_back();
    walk(fn.body, std::move(live));
    return std::move(results_);
  }

 private:
  void emit(const std::vector<LocalPath>& live) {
    for (const LocalPath& path : live) {
      if (results_.size() >= cap_) {
        *truncated_ = true;
        return;
      }
      results_.push_back(path);
    }
  }

  std::vector<LocalPath> with_guard(std::vector<LocalPath> paths, const Expr* guard,
                                    bool taken) {
    for (LocalPath& path : paths) path.emplace_back(guard, taken);
    return paths;
  }

  void clamp(std::vector<LocalPath>& live) {
    if (live.size() > cap_) {
      live.resize(cap_);
      *truncated_ = true;
    }
  }

  /// Processes `stmts` with the given live prefixes; returns the prefixes
  /// that complete the statement list normally (no return/throw/break).
  std::vector<LocalPath> walk(const std::vector<StmtPtr>& stmts, std::vector<LocalPath> live) {
    for (const StmtPtr& stmt : stmts) {
      if (live.empty()) return live;
      if (stmt.get() == target_) emit(live);
      switch (stmt->kind) {
        case Stmt::Kind::kIf: {
          std::vector<LocalPath> then_out =
              walk(stmt->body, with_guard(live, stmt->expr.get(), true));
          std::vector<LocalPath> else_out =
              walk(stmt->else_body, with_guard(std::move(live), stmt->expr.get(), false));
          for (LocalPath& path : else_out) then_out.push_back(std::move(path));
          live = std::move(then_out);
          clamp(live);
          break;
        }
        case Stmt::Kind::kWhile: {
          // One-shot unrolling: enter the body (guard true) only if the
          // target is inside it; falling past the loop records no exit guard
          // (sound over-approximation: the loop runs zero or more times).
          if (subtree_contains(stmt->body, target_))
            walk(stmt->body, with_guard(live, stmt->expr.get(), true));
          break;
        }
        case Stmt::Kind::kSync:
        case Stmt::Kind::kBlock:
          live = walk(stmt->body, std::move(live));
          break;
        case Stmt::Kind::kTry: {
          // Both arms are feasible continuations; the catch arm is entered
          // with the same prefixes (the throwing point is not tracked).
          std::vector<LocalPath> body_out = walk(stmt->body, live);
          std::vector<LocalPath> catch_out = walk(stmt->else_body, std::move(live));
          for (LocalPath& path : catch_out) body_out.push_back(std::move(path));
          live = std::move(body_out);
          clamp(live);
          break;
        }
        case Stmt::Kind::kReturn:
        case Stmt::Kind::kThrow:
        case Stmt::Kind::kBreak:
        case Stmt::Kind::kContinue:
          live.clear();
          break;
        default:
          break;
      }
    }
    return live;
  }

  const Stmt* target_;
  std::size_t cap_;
  bool* truncated_;
  std::vector<LocalPath> results_;
};

class TreeBuilder {
 public:
  TreeBuilder(const Program& program, const CallGraph& graph, const TreeOptions& options)
      : program_(program), graph_(graph), options_(options) {}

  ExecutionTree build(const std::string& fragment) {
    ExecutionTree tree;
    tree.target_fragment = fragment;
    const auto targets = find_target_statements(program_, fragment);
    for (const auto& [fn, stmt] : targets) tree.targets.push_back(stmt);
    for (const auto& [fn, stmt] : targets) {
      const std::vector<std::vector<std::string>> chains = graph_.chains_to(fn->name);
      for (const std::vector<std::string>& chain : chains) {
        FrameMap entry_map;
        entry_map.frame = chain.front();
        // Entry parameters canonicalize to "<entry>::<param>" like locals.
        combine(tree, chain, 0, {}, entry_map, stmt);
        if (tree.paths.size() >= options_.max_paths) {
          tree.truncated = true;
          return tree;
        }
      }
    }
    return tree;
  }

 private:
  const std::vector<LocalPath>& enumerate(const FuncDecl& fn, const Stmt* target,
                                          ExecutionTree& tree) {
    const auto key = std::make_pair(&fn, target);
    const auto it = local_cache_.find(key);
    if (it != local_cache_.end()) return it->second;
    bool truncated = false;
    LocalEnumerator enumerator(target, options_.max_paths, &truncated);
    auto inserted = local_cache_.emplace(key, enumerator.run(fn));
    if (truncated) tree.truncated = true;
    return inserted.first->second;
  }

  std::vector<GuardStep> rename_local(const LocalPath& local, const FrameMap& map) {
    std::vector<GuardStep> out;
    out.reserve(local.size());
    for (const auto& [expr, taken] : local) {
      GuardStep step;
      step.taken = taken;
      step.text = map.frame + "::" + minilang::expr_text(*expr);
      const auto formula = smt::to_formula(*expr, smt::OpaquePolicy::kAbstract);
      smt::FormulaPtr f = formula.value_or(smt::Formula::truth(true));
      if (!taken) f = smt::Formula::negate(std::move(f));
      step.formula = rename_formula(f, map);
      out.push_back(std::move(step));
    }
    return out;
  }

  FrameMap callee_map(const CallSite& site, const FrameMap& caller_map) {
    FrameMap map;
    map.frame = site.callee();
    const FuncDecl* callee = program_.find_function(site.callee());
    if (callee == nullptr) return map;
    for (std::size_t i = 0; i < callee->params.size() && i < site.call->args.size(); ++i) {
      const std::string arg_path = smt::access_path(*site.call->args[i]);
      if (arg_path.empty()) {
        map.roots[callee->params[i].name] = kOpaqueRoot;
      } else {
        map.roots[callee->params[i].name] = canonical_var(arg_path, caller_map);
      }
    }
    return map;
  }

  void combine(ExecutionTree& tree, const std::vector<std::string>& chain, std::size_t hop,
               std::vector<GuardStep> prefix, const FrameMap& map, const Stmt* target) {
    if (tree.paths.size() >= options_.max_paths) {
      tree.truncated = true;
      return;
    }
    const FuncDecl* fn = program_.find_function(chain[hop]);
    if (fn == nullptr) return;
    if (hop + 1 == chain.size()) {
      for (const LocalPath& local : enumerate(*fn, target, tree)) {
        std::vector<GuardStep> guards = prefix;
        for (GuardStep& step : rename_local(local, map)) guards.push_back(std::move(step));
        emit(tree, chain, target, std::move(guards), map);
        if (tree.paths.size() >= options_.max_paths) return;
      }
      return;
    }
    const std::string& next = chain[hop + 1];
    for (const CallSite* site : graph_.sites_calling(next)) {
      if (site->caller != fn) continue;
      const FrameMap next_map = callee_map(*site, map);
      for (const LocalPath& local : enumerate(*fn, site->stmt, tree)) {
        std::vector<GuardStep> guards = prefix;
        for (GuardStep& step : rename_local(local, map)) guards.push_back(std::move(step));
        combine(tree, chain, hop + 1, std::move(guards), next_map, target);
        if (tree.paths.size() >= options_.max_paths) return;
      }
    }
  }

  void emit(ExecutionTree& tree, const std::vector<std::string>& chain, const Stmt* target,
            std::vector<GuardStep> guards, const FrameMap& target_map) {
    ++tree.enumerated_raw;
    ExecutionPath path;
    path.call_chain = chain;
    path.target = target;
    path.target_function = chain.back();
    if (options_.contract_condition) {
      path.renamed_contract = rename_formula(options_.contract_condition, target_map);
      path.mappable = !has_opaque_root(options_.contract_condition, target_map);
    } else {
      path.renamed_contract = smt::Formula::truth(true);
    }
    if (options_.prune_irrelevant && options_.contract_condition) {
      const std::set<std::string> relevant = path.renamed_contract->variables();
      std::vector<GuardStep> kept;
      for (GuardStep& guard : guards) {
        const std::set<std::string> vars = guard.formula->variables();
        const bool shares = std::any_of(vars.begin(), vars.end(), [&](const std::string& v) {
          return relevant.count(v) > 0;
        });
        if (shares) kept.push_back(std::move(guard));
      }
      guards = std::move(kept);
    }
    path.guards = std::move(guards);
    std::vector<smt::FormulaPtr> conjuncts;
    conjuncts.reserve(path.guards.size());
    for (const GuardStep& guard : path.guards) conjuncts.push_back(guard.formula);
    path.condition = smt::Formula::conj(std::move(conjuncts));
    const std::string key = path.key();
    if (!seen_.insert(key).second) return;  // collapsed by pruning
    tree.paths.push_back(std::move(path));
  }

  const Program& program_;
  const CallGraph& graph_;
  const TreeOptions& options_;
  std::map<std::pair<const FuncDecl*, const Stmt*>, std::vector<LocalPath>> local_cache_;
  std::unordered_set<std::string> seen_;
};

}  // namespace

ExecutionTree build_execution_tree(const Program& program, const CallGraph& graph,
                                   const std::string& target_fragment,
                                   const TreeOptions& options) {
  return TreeBuilder(program, graph, options).build(target_fragment);
}

}  // namespace lisa::analysis
