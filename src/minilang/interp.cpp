#include "minilang/interp.hpp"

#include <utility>

#include "minilang/builtins.hpp"
#include "minilang/printer.hpp"

namespace lisa::minilang {

const std::unordered_set<std::string>& blocking_builtins() {
  // Models the serialization / disk / network calls that the ZK-2201 class of
  // incidents performs while holding a monitor.
  static const std::unordered_set<std::string> names = {
      "write_record", "flush_to_disk", "fsync_log", "network_send", "block_io",
  };
  return names;
}

Interp::Interp(const Program& program) : program_(program) {}

void Interp::burn_fuel() {
  if (++fuel_used_ > fuel_limit_) throw StepLimitExceeded(fuel_limit_);
}

bool Interp::truthy(const Value& v, const Expr& where) const {
  if (!v.is_bool())
    throw InterpError("condition is not a bool: " + expr_text(where));
  return v.as_bool();
}

Value Interp::call(const std::string& function, std::vector<Value> args) {
  const FuncDecl* fn = program_.find_function(function);
  if (fn == nullptr) throw InterpError("unknown function: " + function);
  return call_function(*fn, std::move(args));
}

Value Interp::call_function(const FuncDecl& fn, std::vector<Value> args) {
  if (args.size() != fn.params.size())
    throw InterpError("arity mismatch calling " + fn.name + ": expected " +
                      std::to_string(fn.params.size()) + ", got " +
                      std::to_string(args.size()));
  if (++call_depth_ > 256) {
    --call_depth_;
    throw InterpError("call depth limit exceeded in " + fn.name);
  }
  if (observer_ != nullptr) observer_->on_call(fn);
  if (fn.has_annotation("blocking")) {
    now_ms_ += blocking_latency_ms_;
    if (observer_ != nullptr) observer_->on_blocking(fn.name, sync_depth_);
  }
  Frame frame;
  frame.scopes.emplace_back();
  for (std::size_t i = 0; i < args.size(); ++i)
    frame.scopes.back()[fn.params[i].name] = std::move(args[i]);
  Value return_value;
  const FuncDecl* caller_fn = current_fn_;
  current_fn_ = &fn;
  try {
    exec_block(fn.body, frame, return_value);
  } catch (...) {
    current_fn_ = caller_fn;
    --call_depth_;
    throw;
  }
  current_fn_ = caller_fn;
  --call_depth_;
  return return_value;
}

namespace {

/// StateAccess over the executing frame's scope stack (interp.hpp). Built
/// per observed statement, only when the observer asked for state.
class FrameStateAccess final : public StateAccess {
 public:
  FrameStateAccess(std::vector<std::unordered_map<std::string, Value>>& scopes,
                   int sync_depth)
      : scopes_(scopes), sync_depth_(sync_depth) {}

  Value* lookup(const std::string& name) override {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  std::vector<std::string> local_names() const override {
    std::vector<std::string> names;
    for (const auto& scope : scopes_)
      for (const auto& [name, value] : scope) names.push_back(name);
    return names;
  }

  int sync_depth() const override { return sync_depth_; }

 private:
  std::vector<std::unordered_map<std::string, Value>>& scopes_;
  int sync_depth_;
};

}  // namespace

Interp::Flow Interp::exec_block(const std::vector<StmtPtr>& stmts, Frame& frame,
                                Value& return_value) {
  frame.scopes.emplace_back();
  Flow flow = Flow::kNormal;
  for (const StmtPtr& stmt : stmts) {
    flow = exec_stmt(*stmt, frame, return_value);
    if (flow != Flow::kNormal) break;
  }
  frame.scopes.pop_back();
  return flow;
}

Interp::Flow Interp::exec_stmt(const Stmt& stmt, Frame& frame, Value& return_value) {
  burn_fuel();
  covered_.insert(stmt.id);
  if (observer_ != nullptr) {
    static const FuncDecl kNoFunc{};
    const FuncDecl& owner = current_fn_ != nullptr ? *current_fn_ : kNoFunc;
    observer_->on_stmt(owner, stmt);
    if (observer_->wants_state()) {
      FrameStateAccess state(frame.scopes, sync_depth_);
      observer_->on_state(owner, stmt, state);
    }
  }
  switch (stmt.kind) {
    case Stmt::Kind::kLet:
      frame.scopes.back()[stmt.name] = eval(*stmt.expr, frame);
      return Flow::kNormal;
    case Stmt::Kind::kAssign:
      assign_lvalue(*stmt.expr, eval(*stmt.expr2, frame), frame);
      return Flow::kNormal;
    case Stmt::Kind::kIf: {
      if (truthy(eval(*stmt.expr, frame), *stmt.expr))
        return exec_block(stmt.body, frame, return_value);
      return exec_block(stmt.else_body, frame, return_value);
    }
    case Stmt::Kind::kWhile: {
      while (truthy(eval(*stmt.expr, frame), *stmt.expr)) {
        burn_fuel();
        const Flow flow = exec_block(stmt.body, frame, return_value);
        if (flow == Flow::kReturn) return flow;
        if (flow == Flow::kBreak) break;
      }
      return Flow::kNormal;
    }
    case Stmt::Kind::kReturn:
      if (stmt.expr) return_value = eval(*stmt.expr, frame);
      return Flow::kReturn;
    case Stmt::Kind::kThrow:
      throw MiniThrow(eval(*stmt.expr, frame));
    case Stmt::Kind::kExpr:
      eval(*stmt.expr, frame);
      return Flow::kNormal;
    case Stmt::Kind::kSync: {
      eval(*stmt.expr, frame);  // the monitor expression; evaluated for effect
      ++sync_depth_;
      Flow flow;
      try {
        flow = exec_block(stmt.body, frame, return_value);
      } catch (...) {
        --sync_depth_;
        throw;
      }
      --sync_depth_;
      return flow;
    }
    case Stmt::Kind::kBlock:
      return exec_block(stmt.body, frame, return_value);
    case Stmt::Kind::kTry: {
      try {
        return exec_block(stmt.body, frame, return_value);
      } catch (const MiniThrow& thrown) {
        frame.scopes.emplace_back();
        frame.scopes.back()[stmt.catch_var] = thrown.value();
        Flow flow = Flow::kNormal;
        for (const StmtPtr& handler_stmt : stmt.else_body) {
          flow = exec_stmt(*handler_stmt, frame, return_value);
          if (flow != Flow::kNormal) break;
        }
        frame.scopes.pop_back();
        return flow;
      }
    }
    case Stmt::Kind::kBreak:
      return Flow::kBreak;
    case Stmt::Kind::kContinue:
      return Flow::kContinue;
  }
  return Flow::kNormal;
}

Value* Interp::lookup(Frame& frame, const std::string& name) {
  for (auto it = frame.scopes.rbegin(); it != frame.scopes.rend(); ++it) {
    const auto found = it->find(name);
    if (found != it->end()) return &found->second;
  }
  return nullptr;
}

void Interp::assign_lvalue(const Expr& lvalue, Value value, Frame& frame) {
  switch (lvalue.kind) {
    case Expr::Kind::kVar: {
      Value* slot = lookup(frame, lvalue.text);
      if (slot == nullptr) throw InterpError("assignment to undeclared variable " + lvalue.text);
      *slot = std::move(value);
      return;
    }
    case Expr::Kind::kField: {
      const Value base = eval(*lvalue.args[0], frame);
      if (base.is_null())
        throw MiniThrow(Value::of_string("NullPointerException: field write ." + lvalue.text));
      if (!base.is_object()) throw InterpError("field write on non-object");
      base.as_object()->fields[lvalue.text] = std::move(value);
      return;
    }
    case Expr::Kind::kIndex: {
      const Value base = eval(*lvalue.args[0], frame);
      const Value index = eval(*lvalue.args[1], frame);
      if (base.is_list()) {
        auto& items = *base.as_list();
        const std::int64_t i = index.as_int();
        if (i < 0 || static_cast<std::size_t>(i) >= items.size())
          throw MiniThrow(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
        items[static_cast<std::size_t>(i)] = std::move(value);
        return;
      }
      if (base.is_map()) {
        const std::string key = index.is_string() ? index.as_string()
                                                  : std::to_string(index.as_int());
        (*base.as_map())[key] = std::move(value);
        return;
      }
      throw InterpError("index write on non-container");
    }
    default:
      throw InterpError("invalid assignment target");
  }
}

Value Interp::eval(const Expr& expr, Frame& frame) {
  burn_fuel();
  switch (expr.kind) {
    case Expr::Kind::kIntLit: return Value::of_int(expr.int_value);
    case Expr::Kind::kBoolLit: return Value::of_bool(expr.bool_value);
    case Expr::Kind::kStrLit: return Value::of_string(expr.text);
    case Expr::Kind::kNullLit: return Value::null();
    case Expr::Kind::kVar: {
      Value* slot = lookup(frame, expr.text);
      if (slot == nullptr) throw InterpError("unknown variable: " + expr.text);
      return *slot;
    }
    case Expr::Kind::kField: {
      const Value base = eval(*expr.args[0], frame);
      if (base.is_null())
        throw MiniThrow(Value::of_string("NullPointerException: field read ." + expr.text));
      if (!base.is_object()) throw InterpError("field read on non-object: ." + expr.text);
      const auto& fields = base.as_object()->fields;
      const auto it = fields.find(expr.text);
      if (it == fields.end())
        throw InterpError("object " + base.as_object()->struct_name + " has no field " +
                          expr.text);
      return it->second;
    }
    case Expr::Kind::kIndex: {
      const Value base = eval(*expr.args[0], frame);
      const Value index = eval(*expr.args[1], frame);
      if (base.is_list()) {
        const auto& items = *base.as_list();
        const std::int64_t i = index.as_int();
        if (i < 0 || static_cast<std::size_t>(i) >= items.size())
          throw MiniThrow(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
        return items[static_cast<std::size_t>(i)];
      }
      if (base.is_map()) {
        const std::string key = index.is_string() ? index.as_string()
                                                  : std::to_string(index.as_int());
        const auto& map = *base.as_map();
        const auto it = map.find(key);
        return it == map.end() ? Value::null() : it->second;
      }
      if (base.is_null())
        throw MiniThrow(Value::of_string("NullPointerException: index access"));
      throw InterpError("index on non-container");
    }
    case Expr::Kind::kUnary: {
      const Value operand = eval(*expr.args[0], frame);
      if (expr.un_op == UnOp::kNot) {
        if (!operand.is_bool()) throw InterpError("'!' on non-bool");
        return Value::of_bool(!operand.as_bool());
      }
      if (!operand.is_int()) throw InterpError("unary '-' on non-int");
      return Value::of_int(-operand.as_int());
    }
    case Expr::Kind::kBinary: return eval_binary(expr, frame);
    case Expr::Kind::kCall: {
      const FuncDecl* fn = program_.find_function(expr.text);
      if (fn != nullptr) {
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const ExprPtr& arg : expr.args) args.push_back(eval(*arg, frame));
        return call_function(*fn, std::move(args));
      }
      return call_builtin(expr.text, expr, frame);
    }
    case Expr::Kind::kNew: {
      const StructDecl* decl = program_.find_struct(expr.text);
      if (decl == nullptr) throw InterpError("unknown struct: " + expr.text);
      auto object = std::make_shared<Object>();
      object->struct_name = expr.text;
      object->object_id = next_object_id_++;
      // Default-initialize every declared field, then apply initializers.
      for (const FieldDecl& field : decl->fields) {
        switch (field.type->kind) {
          case Type::Kind::kInt: object->fields[field.name] = Value::of_int(0); break;
          case Type::Kind::kBool: object->fields[field.name] = Value::of_bool(false); break;
          case Type::Kind::kString: object->fields[field.name] = Value::of_string(""); break;
          case Type::Kind::kList: object->fields[field.name] = Value::new_list(); break;
          case Type::Kind::kMap: object->fields[field.name] = Value::new_map(); break;
          default: object->fields[field.name] = Value::null(); break;
        }
      }
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (decl->find_field(expr.field_names[i]) == nullptr)
          throw InterpError("struct " + expr.text + " has no field " + expr.field_names[i]);
        object->fields[expr.field_names[i]] = eval(*expr.args[i], frame);
      }
      return Value::of_object(std::move(object));
    }
  }
  throw InterpError("unreachable expression kind");
}

Value Interp::eval_binary(const Expr& expr, Frame& frame) {
  // Short-circuit operators first.
  if (expr.bin_op == BinOp::kAnd) {
    const Value lhs = eval(*expr.args[0], frame);
    if (!truthy(lhs, *expr.args[0])) return Value::of_bool(false);
    return Value::of_bool(truthy(eval(*expr.args[1], frame), *expr.args[1]));
  }
  if (expr.bin_op == BinOp::kOr) {
    const Value lhs = eval(*expr.args[0], frame);
    if (truthy(lhs, *expr.args[0])) return Value::of_bool(true);
    return Value::of_bool(truthy(eval(*expr.args[1], frame), *expr.args[1]));
  }
  const Value lhs = eval(*expr.args[0], frame);
  const Value rhs = eval(*expr.args[1], frame);
  switch (expr.bin_op) {
    case BinOp::kEq: return Value::of_bool(lhs.equals(rhs));
    case BinOp::kNe: return Value::of_bool(!lhs.equals(rhs));
    case BinOp::kAdd:
      if (lhs.is_string() || rhs.is_string())
        return Value::of_string(lhs.to_display() + rhs.to_display());
      if (lhs.is_int() && rhs.is_int()) return Value::of_int(lhs.as_int() + rhs.as_int());
      throw InterpError("'+' on incompatible operands");
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: {
      if (!lhs.is_int() || !rhs.is_int()) throw InterpError("arithmetic on non-int");
      const std::int64_t a = lhs.as_int();
      const std::int64_t b = rhs.as_int();
      switch (expr.bin_op) {
        case BinOp::kSub: return Value::of_int(a - b);
        case BinOp::kMul: return Value::of_int(a * b);
        case BinOp::kDiv:
          if (b == 0) throw MiniThrow(Value::of_string("ArithmeticException: divide by zero"));
          return Value::of_int(a / b);
        default:
          if (b == 0) throw MiniThrow(Value::of_string("ArithmeticException: mod by zero"));
          return Value::of_int(a % b);
      }
    }
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (lhs.is_string() && rhs.is_string()) {
        const int cmp = lhs.as_string().compare(rhs.as_string());
        switch (expr.bin_op) {
          case BinOp::kLt: return Value::of_bool(cmp < 0);
          case BinOp::kLe: return Value::of_bool(cmp <= 0);
          case BinOp::kGt: return Value::of_bool(cmp > 0);
          default: return Value::of_bool(cmp >= 0);
        }
      }
      if (!lhs.is_int() || !rhs.is_int()) throw InterpError("comparison on incompatible types");
      const std::int64_t a = lhs.as_int();
      const std::int64_t b = rhs.as_int();
      switch (expr.bin_op) {
        case BinOp::kLt: return Value::of_bool(a < b);
        case BinOp::kLe: return Value::of_bool(a <= b);
        case BinOp::kGt: return Value::of_bool(a > b);
        default: return Value::of_bool(a >= b);
      }
    }
    default:
      throw InterpError("unreachable binary operator");
  }
}

Value Interp::call_builtin(const std::string& name, const Expr& expr, Frame& frame) {
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& arg : expr.args) args.push_back(eval(*arg, frame));
  BuiltinContext context;
  context.output = &output_;
  context.now_ms = &now_ms_;
  context.blocking_latency_ms = blocking_latency_ms_;
  context.observer = observer_;
  context.sync_depth = sync_depth_;
  std::optional<Value> result = dispatch_builtin(name, args, context);
  if (!result.has_value()) throw InterpError("unknown function or builtin: " + name);
  return std::move(*result);
}

bool Interp::run_test(const std::string& test_name) {
  last_error_.clear();
  step_limit_hit_ = false;
  try {
    call(test_name, {});
    return true;
  } catch (const MiniThrow& thrown) {
    last_error_ = thrown.value().to_display();
    return false;
  } catch (const StepLimitExceeded& limit) {
    step_limit_hit_ = true;
    last_error_ = limit.what();
    return false;
  } catch (const InterpError& error) {
    last_error_ = error.what();
    return false;
  }
}

std::pair<int, int> Interp::run_all_tests() {
  int passed = 0;
  int failed = 0;
  for (const FuncDecl* test : program_.functions_with("test")) {
    if (run_test(test->name))
      ++passed;
    else
      ++failed;
  }
  return {passed, failed};
}

}  // namespace lisa::minilang
