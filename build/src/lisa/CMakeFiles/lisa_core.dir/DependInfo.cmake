
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lisa/authoring.cpp" "src/lisa/CMakeFiles/lisa_core.dir/authoring.cpp.o" "gcc" "src/lisa/CMakeFiles/lisa_core.dir/authoring.cpp.o.d"
  "/root/repo/src/lisa/checker.cpp" "src/lisa/CMakeFiles/lisa_core.dir/checker.cpp.o" "gcc" "src/lisa/CMakeFiles/lisa_core.dir/checker.cpp.o.d"
  "/root/repo/src/lisa/ci_gate.cpp" "src/lisa/CMakeFiles/lisa_core.dir/ci_gate.cpp.o" "gcc" "src/lisa/CMakeFiles/lisa_core.dir/ci_gate.cpp.o.d"
  "/root/repo/src/lisa/composition.cpp" "src/lisa/CMakeFiles/lisa_core.dir/composition.cpp.o" "gcc" "src/lisa/CMakeFiles/lisa_core.dir/composition.cpp.o.d"
  "/root/repo/src/lisa/contract.cpp" "src/lisa/CMakeFiles/lisa_core.dir/contract.cpp.o" "gcc" "src/lisa/CMakeFiles/lisa_core.dir/contract.cpp.o.d"
  "/root/repo/src/lisa/pipeline.cpp" "src/lisa/CMakeFiles/lisa_core.dir/pipeline.cpp.o" "gcc" "src/lisa/CMakeFiles/lisa_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/lisa/report.cpp" "src/lisa/CMakeFiles/lisa_core.dir/report.cpp.o" "gcc" "src/lisa/CMakeFiles/lisa_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/inference/CMakeFiles/lisa_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/concolic/CMakeFiles/lisa_concolic.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lisa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/lisa_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/lisa_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/minilang/CMakeFiles/lisa_minilang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
