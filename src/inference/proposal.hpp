// Semantics proposals — the JSON contract of Listing 1.
//
// The paper's LLM outputs, per failure ticket:
//   {"high_level_semantics": "<description>",
//    "low_level_semantics": {
//       "description": "<concise_description>",
//       "target_statement": "<code_text>",
//       "condition_statement": "<predicates>", ...},
//    "reasoning": "<summary>" ...}
// This header defines that structure plus (de)serialization, so the mock
// inference backend and any future real-LLM backend are interchangeable.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "corpus/ticket.hpp"
#include "support/json.hpp"

namespace lisa::inference {

struct LowLevelSemantics {
  std::string description;          // concise natural-language statement
  std::string target_statement;     // code text locating the checked statement
  std::string condition_statement;  // predicate text over concrete state
};

struct SemanticsProposal {
  std::string case_id;
  std::string high_level_semantics;
  std::vector<LowLevelSemantics> low_level;
  std::string reasoning;
  corpus::SemanticsKind kind = corpus::SemanticsKind::kStatePredicate;
  /// For structural proposals: the generalized pattern id
  /// (currently "no_blocking_in_sync").
  std::string pattern;

  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static SemanticsProposal from_json(const support::Json& json);
};

/// Typed inference failure. `transient()` distinguishes errors worth
/// retrying (backend hiccup, rate limit, injected fault) from terminal ones
/// (corpus corruption); the ticket id survives into logs and reports so a
/// degraded run still says *which* case was lost.
class InferenceError : public std::runtime_error {
 public:
  InferenceError(std::string ticket_id, const std::string& message, bool transient = false)
      : std::runtime_error("inference failed for " + ticket_id + ": " + message),
        ticket_id_(std::move(ticket_id)),
        transient_(transient) {}

  [[nodiscard]] const std::string& ticket_id() const noexcept { return ticket_id_; }
  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  std::string ticket_id_;
  bool transient_;
};

/// Bounded-retry policy for inference calls: exponential backoff between
/// attempts, applied only to transient errors and malformed responses.
struct RetryPolicy {
  int max_attempts = 3;
  int initial_backoff_ms = 5;
  double backoff_multiplier = 2.0;
  /// Tests disable the sleeps; the attempt/backoff accounting is identical.
  bool sleep_between_attempts = true;
};

/// One inference call's final accounting, success or not. A failed outcome
/// (`!succeeded`) is a structured degradation: the caller reports the case
/// as uninferred instead of crashing the run.
struct InferenceOutcome {
  SemanticsProposal proposal;  // valid only when succeeded
  bool succeeded = false;
  int attempts = 0;
  int transient_errors = 0;
  int validation_failures = 0;
  std::string error;  // terminal or last-attempt error, for the report
};

/// Structural response validation (the guard a real-LLM backend needs
/// against free-form output): the proposal must echo `expected_case_id`,
/// structural proposals must name a pattern, and every low-level semantics
/// must carry both a target and a condition statement. Returns an empty
/// string when valid, else the first problem found.
[[nodiscard]] std::string validate_proposal(const SemanticsProposal& proposal,
                                            const std::string& expected_case_id);

/// Runs `attempt` under `policy`: transient InferenceErrors and proposals
/// that fail validate_proposal are retried with exponential backoff;
/// terminal InferenceErrors stop immediately. Every attempt, retry, and
/// failure class is recorded in the obs metrics registry (infer.attempts,
/// infer.retries, infer.transient_errors, infer.validation_failures,
/// infer.recovered, infer.exhausted). Non-InferenceError exceptions
/// propagate unchanged (corpus corruption keeps its existing contract).
[[nodiscard]] InferenceOutcome infer_with_retry(
    const std::function<SemanticsProposal()>& attempt, const std::string& ticket_id,
    const RetryPolicy& policy = {});

}  // namespace lisa::inference
