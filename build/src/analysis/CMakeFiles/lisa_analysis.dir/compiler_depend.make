# Empty compiler generated dependencies file for lisa_analysis.
# This may be replaced when dependencies are built.
