file(REMOVE_RECURSE
  "CMakeFiles/lisa_core_test.dir/lisa_core_test.cpp.o"
  "CMakeFiles/lisa_core_test.dir/lisa_core_test.cpp.o.d"
  "lisa_core_test"
  "lisa_core_test.pdb"
  "lisa_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
