file(REMOVE_RECURSE
  "liblisa_minilang.a"
)
