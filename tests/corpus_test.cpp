// Tests for the incident corpus (§2.1 study shape) and the diff engine.
#include <gtest/gtest.h>

#include <set>

#include "corpus/diff.hpp"
#include "corpus/ticket.hpp"
#include "minilang/interp.hpp"
#include "minilang/sema.hpp"

namespace lisa::corpus {
namespace {

TEST(Corpus, StudyShapeMatchesPaper) {
  // §2.1: 16 regression cases, 34 bugs total, 4 systems, each case has at
  // least one regression. The paper-shape counts cover the original study
  // corpus; the interleaving-sensitive concurrency cases are an extension
  // on top and are counted separately below.
  const auto& cases = Corpus::all();
  int bugs = 0;
  std::size_t study_cases = 0;
  std::size_t interleaving_cases = 0;
  std::set<std::string> systems;
  for (const FailureTicket& ticket : cases) {
    EXPECT_GE(ticket.regressions.size(), 1u) << ticket.case_id;
    systems.insert(ticket.system);
    if (ticket.kind == SemanticsKind::kInterleavingSensitive) {
      ++interleaving_cases;
      continue;
    }
    ++study_cases;
    bugs += ticket.bug_count();
  }
  EXPECT_EQ(study_cases, 16u);
  EXPECT_EQ(bugs, 34);
  EXPECT_EQ(interleaving_cases, 7u);
  EXPECT_EQ(cases.size(), 23u);
  EXPECT_EQ(systems, (std::set<std::string>{"zookeeper", "hdfs", "hbase", "cassandra"}));
}

TEST(Corpus, LookupHelpers) {
  EXPECT_NE(Corpus::find("zk-1208-ephemeral-create"), nullptr);
  EXPECT_EQ(Corpus::find("nope"), nullptr);
  EXPECT_EQ(Corpus::for_system("zookeeper").size(), 7u);
  EXPECT_EQ(Corpus::for_system("hdfs").size(), 5u);
  EXPECT_EQ(Corpus::for_system("hbase").size(), 6u);
  EXPECT_EQ(Corpus::for_system("cassandra").size(), 5u);
}

TEST(Corpus, InterleavingCasesCoverAllConcurrencyShapes) {
  // The concurrency extension covers the statically-settled shapes (a
  // deadlock-shaped and a race-shaped pair) plus the schedule-explored
  // shapes: two atomicity cases (check-then-act, lost update) and one
  // missed-notify liveness case, which only exploration can decide.
  std::size_t deadlock_shaped = 0;
  std::size_t race_shaped = 0;
  std::size_t atomic_shaped = 0;
  std::size_t eventually_shaped = 0;
  for (const FailureTicket& ticket : Corpus::all()) {
    if (ticket.kind != SemanticsKind::kInterleavingSensitive) continue;
    if (ticket.expected_condition == "lock_order_acyclic") {
      EXPECT_EQ(ticket.expected_target, "sync (") << ticket.case_id;
      ++deadlock_shaped;
    } else if (ticket.expected_condition.rfind("holds(", 0) == 0) {
      ++race_shaped;
    } else if (ticket.expected_condition.rfind("atomic(", 0) == 0) {
      ++atomic_shaped;
    } else {
      EXPECT_EQ(ticket.expected_condition.rfind("eventually(", 0), 0u) << ticket.case_id;
      EXPECT_EQ(ticket.expected_target, "wait(") << ticket.case_id;
      ++eventually_shaped;
    }
  }
  EXPECT_EQ(deadlock_shaped, 2u);
  EXPECT_EQ(race_shaped, 2u);
  EXPECT_EQ(atomic_shaped, 2u);
  EXPECT_EQ(eventually_shaped, 1u);
}

TEST(Corpus, ScheduleExploredCasesSpawnThreads) {
  // The atomic/eventually cases are only decidable by the schedule
  // explorer, so their embedded tests must actually spawn threads — and the
  // statically-settled cases must not (spawn is the routing discriminator).
  for (const FailureTicket& ticket : Corpus::all()) {
    const bool explored = ticket.expected_condition.rfind("atomic(", 0) == 0 ||
                          ticket.expected_condition.rfind("eventually(", 0) == 0;
    for (const std::string* source : {&ticket.buggy_source, &ticket.patched_source}) {
      const minilang::Program program = minilang::parse_checked(*source);
      bool spawns = false;
      program.for_each_stmt([&](const minilang::FuncDecl&, const minilang::Stmt& stmt) {
        if (stmt.kind == minilang::Stmt::Kind::kSpawn) spawns = true;
      });
      EXPECT_EQ(spawns, explored) << ticket.case_id;
    }
  }
}

TEST(Corpus, EveryProgramParsesAndChecksClean) {
  for (const FailureTicket& ticket : Corpus::all()) {
    EXPECT_NO_THROW(minilang::parse_checked(ticket.buggy_source)) << ticket.case_id;
    EXPECT_NO_THROW(minilang::parse_checked(ticket.patched_source)) << ticket.case_id;
    if (!ticket.latest_source.empty()) {
      EXPECT_NO_THROW(minilang::parse_checked(ticket.latest_source)) << ticket.case_id;
    }
  }
}

TEST(Corpus, AllEmbeddedTestsPassOnTheirVersion) {
  for (const FailureTicket& ticket : Corpus::all()) {
    for (const std::string* source :
         {&ticket.buggy_source, &ticket.patched_source, &ticket.latest_source}) {
      if (source->empty()) continue;
      const minilang::Program program = minilang::parse_checked(*source);
      minilang::Interp interp(program);
      const auto [passed, failed] = interp.run_all_tests();
      EXPECT_GT(passed, 0) << ticket.case_id;
      EXPECT_EQ(failed, 0) << ticket.case_id << ": " << interp.last_error();
    }
  }
}

TEST(Corpus, RegressionTestsExistOnlyInPatchedVersion) {
  for (const FailureTicket& ticket : Corpus::all()) {
    const minilang::Program buggy = minilang::parse_checked(ticket.buggy_source);
    const minilang::Program patched = minilang::parse_checked(ticket.patched_source);
    for (const std::string& test : ticket.regression_tests) {
      EXPECT_EQ(buggy.find_function(test), nullptr) << ticket.case_id;
      const minilang::FuncDecl* fn = patched.find_function(test);
      ASSERT_NE(fn, nullptr) << ticket.case_id;
      EXPECT_TRUE(fn->has_annotation("test"));
    }
  }
}

TEST(Corpus, GroundTruthFieldsPopulated) {
  for (const FailureTicket& ticket : Corpus::all()) {
    EXPECT_FALSE(ticket.expected_target.empty()) << ticket.case_id;
    EXPECT_FALSE(ticket.expected_condition.empty()) << ticket.case_id;
    EXPECT_FALSE(ticket.description.empty()) << ticket.case_id;
    EXPECT_FALSE(ticket.original.id.empty()) << ticket.case_id;
  }
}

TEST(Corpus, PreliminaryResultCasesHaveLatestSources) {
  const FailureTicket* hbase = Corpus::find("hbase-27671-snapshot-ttl");
  const FailureTicket* hdfs = Corpus::find("hdfs-13924-observer-locations");
  ASSERT_NE(hbase, nullptr);
  ASSERT_NE(hdfs, nullptr);
  EXPECT_FALSE(hbase->latest_source.empty());
  EXPECT_FALSE(hdfs->latest_source.empty());
}

TEST(Diff, DetectsAddedGuard) {
  const FailureTicket* ticket = Corpus::find("zk-1208-ephemeral-create");
  ASSERT_NE(ticket, nullptr);
  const minilang::Program before = minilang::parse_checked(ticket->buggy_source);
  const minilang::Program after = minilang::parse_checked(ticket->patched_source);
  const ProgramDiff diff = diff_programs(before, after);
  bool found_guard = false;
  for (const DiffEntry& entry : diff.added)
    if (entry.function == "p_request_create" &&
        entry.text.find("is_closing") != std::string::npos)
      found_guard = true;
  EXPECT_TRUE(found_guard);
  EXPECT_TRUE(diff.removed.empty());
  // The regression test function is new in the patch.
  ASSERT_EQ(diff.added_functions.size(), 1u);
  EXPECT_EQ(diff.added_functions[0], "test_zk1208_no_create_on_closing_session");
}

TEST(Diff, IdenticalProgramsAreEmpty) {
  const minilang::Program a = minilang::parse_checked("fn f() { print(1); }");
  const minilang::Program b = minilang::parse_checked("fn f() { print(1); }");
  EXPECT_TRUE(diff_programs(a, b).empty());
}

TEST(Diff, DetectsRemovedStatementsAndDeletedFunctions) {
  const minilang::Program a =
      minilang::parse_checked("fn f() { print(1); print(2); } fn g() { print(3); }");
  const minilang::Program b = minilang::parse_checked("fn f() { print(1); }");
  const ProgramDiff diff = diff_programs(a, b);
  EXPECT_EQ(diff.removed.size(), 2u);  // print(2) from f, print(3) from g
  ASSERT_EQ(diff.removed_functions.size(), 1u);
  EXPECT_EQ(diff.removed_functions[0], "g");
  EXPECT_FALSE(render_diff(diff).empty());
}

TEST(Diff, MultisetSemanticsCountDuplicates) {
  const minilang::Program a = minilang::parse_checked("fn f() { print(1); }");
  const minilang::Program b = minilang::parse_checked("fn f() { print(1); print(1); }");
  const ProgramDiff diff = diff_programs(a, b);
  EXPECT_EQ(diff.added.size(), 1u);
  EXPECT_TRUE(diff.removed.empty());
}

TEST(Diff, MovedBlockingCallShowsInStructuralCases) {
  const FailureTicket* ticket = Corpus::find("zk-2201-sync-serialize");
  ASSERT_NE(ticket, nullptr);
  const minilang::Program before = minilang::parse_checked(ticket->buggy_source);
  const minilang::Program after = minilang::parse_checked(ticket->patched_source);
  const ProgramDiff diff = diff_programs(before, after);
  bool removed_blocking = false;
  for (const DiffEntry& entry : diff.removed)
    if (entry.text.find("write_record") != std::string::npos) removed_blocking = true;
  EXPECT_TRUE(removed_blocking);
}

}  // namespace
}  // namespace lisa::corpus
