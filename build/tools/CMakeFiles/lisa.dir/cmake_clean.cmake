file(REMOVE_RECURSE
  "CMakeFiles/lisa.dir/lisa_cli.cpp.o"
  "CMakeFiles/lisa.dir/lisa_cli.cpp.o.d"
  "lisa"
  "lisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
