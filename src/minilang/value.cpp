#include "minilang/value.hpp"

namespace lisa::minilang {

bool Value::equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_int() && other.is_int()) return as_int() == other.as_int();
  if (is_bool() && other.is_bool()) return as_bool() == other.as_bool();
  if (is_string() && other.is_string()) return as_string() == other.as_string();
  if (is_object() && other.is_object()) return as_object() == other.as_object();
  if (is_list() && other.is_list()) return as_list() == other.as_list();
  if (is_map() && other.is_map()) return as_map() == other.as_map();
  return false;
}

std::string Value::to_display() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(as_int());
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_string()) return as_string();
  if (is_object()) {
    const ObjectPtr& object = as_object();
    std::string out = object->struct_name + "{";
    bool first = true;
    // Render in sorted order for determinism.
    std::map<std::string, const Value*> sorted;
    for (const auto& [name, value] : object->fields) sorted[name] = &value;
    for (const auto& [name, value] : sorted) {
      if (!first) out += ", ";
      first = false;
      out += name + ": " + value->to_display();
    }
    return out + "}";
  }
  if (is_list()) {
    std::string out = "[";
    const auto& items = *as_list();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].to_display();
    }
    return out + "]";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : *as_map()) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + value.to_display();
  }
  return out + "}";
}

}  // namespace lisa::minilang
