// HDFS incident cases.
//
// Case 1 models HDFS-13924 → HDFS-16732 → HDFS-17768: when the observer
// namenode's block report is delayed, listing results return blocks without
// locations. The "latest" version reproduces §4 Bug #2 — the batched-listing
// path added later is missing the location check, and LISA flags it.
#include "corpus/ticket.hpp"

namespace lisa::corpus {
namespace {

// ---------------------------------------------------------------------------
// Case 1: observer namenode returns blocks without locations.
// ---------------------------------------------------------------------------

constexpr const char* kHdfsObserverCommon = R"ml(
struct LocatedBlock { block_id: int; location_count: int; gen_stamp: int; }
struct Listing { results: list<LocatedBlock>; partial: bool; }
struct ObserverNode { blocks: map<string, LocatedBlock>; report_delay_ms: int; }

fn new_observer() -> ObserverNode {
  return new ObserverNode { report_delay_ms: 0 };
}

fn report_block(nn: ObserverNode, path: string, block_id: int, locations: int) {
  put(nn.blocks, path, new LocatedBlock { block_id: block_id,
                                          location_count: locations,
                                          gen_stamp: 1 });
}

fn push_result(out: Listing, blk: LocatedBlock) {
  push(out.results, blk);
}
)ml";

constexpr const char* kHdfsObserverTests = R"ml(
@test
fn test_get_block_locations_returns_located_block() {
  let nn = new_observer();
  report_block(nn, "/data/f1", 100, 3);
  let out = new Listing {};
  get_block_locations(nn, "/data/f1", out);
  assert(len(out.results) == 1, "block returned");
}

@test
fn test_get_block_locations_missing_file() {
  let nn = new_observer();
  let out = new Listing {};
  let failed = false;
  try {
    get_block_locations(nn, "/data/none", out);
  } catch (e) {
    failed = true;
  }
  assert(failed, "missing file raises");
}

@test
fn test_list_status_returns_block() {
  let nn = new_observer();
  report_block(nn, "/data/f2", 200, 2);
  let out = new Listing {};
  list_status(nn, "/data/f2", out);
  assert(len(out.results) == 1, "listing returned block");
}
)ml";

FailureTicket hdfs_observer_case() {
  FailureTicket ticket;
  ticket.case_id = "hdfs-13924-observer-locations";
  ticket.system = "hdfs";
  ticket.feature = "observer namenode reads";
  ticket.title = "Observer read returns blocks without any location";
  ticket.description =
      "When the observer namenode's block report is delayed, read requests "
      "served by the observer return located blocks whose location list is "
      "empty; clients then fail with BlockMissingException instead of "
      "retrying against the active namenode. Developer discussion: a block "
      "must only be returned to the client if it has at least one valid "
      "location — otherwise the observer is stale and the request must be "
      "redirected. Fix adds the location_count check on the "
      "getBlockLocations path before the block is pushed to the result.";

  const std::string buggy_reads = R"ml(
@entry
fn get_block_locations(nn: ObserverNode, path: string, out: Listing) {
  let blk = get(nn.blocks, path);
  if (blk == null) {
    throw "FileNotFoundException";
  }
  push_result(out, blk);
}

@entry
fn list_status(nn: ObserverNode, path: string, out: Listing) {
  let blk = get(nn.blocks, path);
  if (blk == null) {
    return;
  }
  push_result(out, blk);
}
)ml";

  const std::string patched_reads = R"ml(
@entry
fn get_block_locations(nn: ObserverNode, path: string, out: Listing) {
  let blk = get(nn.blocks, path);
  if (blk == null) {
    throw "FileNotFoundException";
  }
  if (blk.location_count <= 0) {
    throw "ObserverRetryException";
  }
  push_result(out, blk);
}

@entry
fn list_status(nn: ObserverNode, path: string, out: Listing) {
  let blk = get(nn.blocks, path);
  if (blk == null) {
    return;
  }
  push_result(out, blk);
}
)ml";

  // Latest release: both original read paths carry the check (HDFS-13924 and
  // HDFS-16732), but the batched-listing API added afterwards does not —
  // this is the previously unknown bug LISA reported (HDFS-17768 analog).
  const std::string latest_reads = R"ml(
@entry
fn get_block_locations(nn: ObserverNode, path: string, out: Listing) {
  let blk = get(nn.blocks, path);
  if (blk == null) {
    throw "FileNotFoundException";
  }
  if (blk.location_count <= 0) {
    throw "ObserverRetryException";
  }
  push_result(out, blk);
}

@entry
fn list_status(nn: ObserverNode, path: string, out: Listing) {
  let blk = get(nn.blocks, path);
  if (blk == null) {
    return;
  }
  if (blk.location_count <= 0) {
    throw "ObserverRetryException";
  }
  push_result(out, blk);
}

@entry
fn get_batched_listing(nn: ObserverNode, paths: list<string>, out: Listing) {
  let i = 0;
  while (i < len(paths)) {
    let blk = get(nn.blocks, paths[i]);
    if (blk != null) {
      push_result(out, blk);
    }
    i = i + 1;
  }
  out.partial = false;
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hdfs13924_stale_observer_redirects() {
  let nn = new_observer();
  report_block(nn, "/data/delayed", 300, 0);
  let out = new Listing {};
  let redirected = false;
  try {
    get_block_locations(nn, "/data/delayed", out);
  } catch (e) {
    redirected = true;
  }
  assert(redirected, "stale observer must redirect");
  assert(len(out.results) == 0, "no locationless block returned");
}
)ml";

  const std::string latest_tests = R"ml(
@test
fn test_batched_listing_returns_blocks() {
  let nn = new_observer();
  report_block(nn, "/data/b1", 400, 2);
  report_block(nn, "/data/b2", 401, 1);
  let paths = list_new();
  push(paths, "/data/b1");
  push(paths, "/data/b2");
  let out = new Listing {};
  get_batched_listing(nn, paths, out);
  assert(len(out.results) == 2, "both blocks listed");
}
)ml";

  ticket.buggy_source = std::string(kHdfsObserverCommon) + buggy_reads + kHdfsObserverTests;
  ticket.patched_source =
      std::string(kHdfsObserverCommon) + patched_reads + kHdfsObserverTests + regression_test;
  ticket.latest_source = std::string(kHdfsObserverCommon) + latest_reads + kHdfsObserverTests +
                         regression_test + latest_tests;
  ticket.regression_tests = {"test_hdfs13924_stale_observer_redirects"};
  ticket.original = {"HDFS-13924", "2018-09-20",
                     "BlockMissingException reading from observer with delayed block report"};
  ticket.regressions = {{"HDFS-16732", "2022-08-16",
                         "Listing path returns location-less blocks from a stale observer; "
                         "same root cause on a second read path"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "push_result(";
  ticket.expected_condition = "!(blk == null) && !(blk.location_count <= 0)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 2: lease recovery started on a file still under construction.
// ---------------------------------------------------------------------------

constexpr const char* kHdfsLeaseCommon = R"ml(
struct INodeFile { id: int; under_construction: bool; holder: string; recoveries: int; }
struct LeaseManager { files: map<string, INodeFile>; }

fn new_lease_manager() -> LeaseManager {
  return new LeaseManager {};
}

fn add_file(mgr: LeaseManager, path: string, under_construction: bool, holder: string) {
  put(mgr.files, path, new INodeFile { id: 1, under_construction: under_construction,
                                       holder: holder });
}

fn start_recovery(f: INodeFile) {
  f.recoveries = f.recoveries + 1;
  f.holder = "";
}

// Expired-lease sweep: releases every file of a dead client.
@entry
fn release_expired_leases(mgr: LeaseManager, holder: string) {
  let paths = keys(mgr.files);
  let i = 0;
  while (i < len(paths)) {
    let f = get(mgr.files, paths[i]);
    if (f != null && f.holder == holder) {
      start_recovery(f);
    }
    i = i + 1;
  }
}
)ml";

constexpr const char* kHdfsLeaseTests = R"ml(
@test
fn test_recover_closed_file() {
  let mgr = new_lease_manager();
  add_file(mgr, "/logs/a", false, "client-1");
  recover_lease(mgr, "/logs/a");
  let f = get(mgr.files, "/logs/a");
  assert(f.recoveries == 1, "recovery ran");
}

@test
fn test_recover_missing_file_raises() {
  let mgr = new_lease_manager();
  let failed = false;
  try {
    recover_lease(mgr, "/logs/none");
  } catch (e) {
    failed = true;
  }
  assert(failed, "missing file raises");
}

@test
fn test_expired_sweep_releases_holder_files() {
  let mgr = new_lease_manager();
  add_file(mgr, "/logs/b", false, "client-2");
  release_expired_leases(mgr, "client-2");
  let f = get(mgr.files, "/logs/b");
  assert(f.recoveries == 1, "swept");
}
)ml";

FailureTicket hdfs_lease_case() {
  FailureTicket ticket;
  ticket.case_id = "hdfs-lease-under-construction";
  ticket.system = "hdfs";
  ticket.feature = "lease recovery";
  ticket.title = "Lease recovery on an under-construction file corrupts the last block";
  ticket.description =
      "Manual lease recovery was triggered while the writer was still "
      "appending; recovery truncated the in-flight last block and the writer's "
      "next flush failed with a generation-stamp mismatch, corrupting the "
      "file. Developer discussion: recovery must not start while the file is "
      "still under construction by a live writer — the under_construction "
      "flag has to be checked before start_recovery. Fix adds the check on "
      "the manual recoverLease path.";

  const std::string buggy_recover = R"ml(
@entry
fn recover_lease(mgr: LeaseManager, path: string) {
  let f = get(mgr.files, path);
  if (f == null) {
    throw "FileNotFoundException";
  }
  start_recovery(f);
}
)ml";

  const std::string patched_recover = R"ml(
@entry
fn recover_lease(mgr: LeaseManager, path: string) {
  let f = get(mgr.files, path);
  if (f == null) {
    throw "FileNotFoundException";
  }
  if (f.under_construction) {
    throw "AlreadyBeingCreatedException";
  }
  start_recovery(f);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hdfslease_no_recovery_while_writing() {
  let mgr = new_lease_manager();
  add_file(mgr, "/logs/open", true, "client-3");
  let rejected = false;
  try {
    recover_lease(mgr, "/logs/open");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "recovery on open file rejected");
  let f = get(mgr.files, "/logs/open");
  assert(f.recoveries == 0, "no recovery ran");
}
)ml";

  ticket.buggy_source = std::string(kHdfsLeaseCommon) + buggy_recover + kHdfsLeaseTests;
  ticket.patched_source =
      std::string(kHdfsLeaseCommon) + patched_recover + kHdfsLeaseTests + regression_test;
  ticket.regression_tests = {"test_hdfslease_no_recovery_while_writing"};
  ticket.original = {"HDFS-L1", "2015-11-03",
                     "Lease recovery truncated an in-flight block; file corrupted"};
  ticket.regressions = {{"HDFS-L2", "2016-09-14",
                         "Expired-lease sweep recovers under-construction files of "
                         "half-dead clients; same missing check"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "start_recovery(";
  ticket.expected_condition = "!(f == null) && !(f.under_construction)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 3: block allocated while the namenode is in safe mode.
// ---------------------------------------------------------------------------

constexpr const char* kHdfsSafemodeCommon = R"ml(
struct BlockEntry { id: string; refcount: int; }
struct NameNodeState { safe_mode: bool; blocks_allocated: int;
                       block_map: map<string, BlockEntry>; }

fn new_namenode(safe: bool) -> NameNodeState {
  return new NameNodeState { safe_mode: safe, blocks_allocated: 0 };
}

fn allocate_block(nn: NameNodeState, path: string) -> int {
  nn.blocks_allocated = nn.blocks_allocated + 1;
  return nn.blocks_allocated;
}

// Append: the second write path that also allocates blocks.
@entry
fn append_file(nn: NameNodeState, path: string) -> int {
  return allocate_block(nn, path);
}

// Replay bookkeeping: looks up a block-map entry, raising on absence, so
// every caller receives a usable entry.
fn checked_entry(nn: NameNodeState, id: string) -> BlockEntry {
  let e = get(nn.block_map, id);
  if (e == null) {
    throw "MissingBlockEntry";
  }
  return e;
}

fn record_allocation(nn: NameNodeState, entry: BlockEntry) {
  entry.refcount = entry.refcount + 1;
  nn.blocks_allocated = nn.blocks_allocated + 1;
}

@entry
fn sync_block_count(nn: NameNodeState, id: string) {
  touch_block(nn, checked_entry(nn, id));
}

// Cache-hit path: the caller already holds an entry (possibly absent).
@entry
fn touch_if_cached(nn: NameNodeState, entry: BlockEntry?) {
  if (entry == null) {
    return;
  }
  touch_block(nn, entry);
}

// Edit-log replay depth gauge (self-recursive).
fn replay_depth(nn: NameNodeState, n: int) -> int {
  if (n <= 0) {
    return 0;
  }
  return replay_depth(nn, n - 1) + 1;
}

// Checkpoint parity probe (mutually recursive pair).
fn verify_even(n: int) -> bool {
  if (n == 0) {
    return true;
  }
  return verify_odd(n - 1);
}

fn verify_odd(n: int) -> bool {
  if (n == 0) {
    return false;
  }
  return verify_even(n - 1);
}
)ml";

constexpr const char* kHdfsSafemodeTests = R"ml(
@test
fn test_create_allocates_block() {
  let nn = new_namenode(false);
  let id = create_file(nn, "/a");
  assert(id == 1, "block allocated");
}

@test
fn test_append_allocates_block() {
  let nn = new_namenode(false);
  create_file(nn, "/a");
  let id = append_file(nn, "/a");
  assert(id == 2, "append allocated next block");
}

@test
fn test_touch_block_counts_refcount() {
  let nn = new_namenode(false);
  put(nn.block_map, "b1", new BlockEntry { id: "b1", refcount: 0 });
  sync_block_count(nn, "b1");
  let e = get(nn.block_map, "b1");
  assert(e.refcount == 1, "refcount bumped");
  assert(nn.blocks_allocated == 1, "allocation recorded");
}

@test
fn test_touch_block_missing_entry_rejected() {
  let nn = new_namenode(false);
  let rejected = false;
  try {
    sync_block_count(nn, "missing");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "missing entry rejected");
  assert(nn.blocks_allocated == 0, "nothing recorded");
}

@test
fn test_replay_depth_and_parity() {
  let nn = new_namenode(false);
  assert(replay_depth(nn, 3) == 3, "replay depth counts");
  assert(verify_even(4), "four is even");
  assert(verify_odd(3), "three is odd");
}
)ml";

FailureTicket hdfs_safemode_case() {
  FailureTicket ticket;
  ticket.case_id = "hdfs-safemode-allocation";
  ticket.system = "hdfs";
  ticket.feature = "safe mode";
  ticket.title = "Block allocated during safe mode breaks namespace consistency";
  ticket.description =
      "During startup safe mode the namenode must be read-only, but the "
      "create path allocated new blocks anyway; after the edit-log replay the "
      "block map disagreed with the namespace and the namenode crashed on "
      "the next checkpoint. Developer discussion: no block may be allocated "
      "while safe_mode is set. Fix rejects create during safe mode. A "
      "follow-up hardening pass also null-checks the block-map entry before "
      "the replay bookkeeping records an allocation.";

  const std::string buggy_create = R"ml(
@entry
fn create_file(nn: NameNodeState, path: string) -> int {
  return allocate_block(nn, path);
}

fn touch_block(nn: NameNodeState, entry: BlockEntry?) {
  record_allocation(nn, entry);
}
)ml";

  const std::string patched_create = R"ml(
@entry
fn create_file(nn: NameNodeState, path: string) -> int {
  if (nn.safe_mode) {
    throw "SafeModeException";
  }
  return allocate_block(nn, path);
}

fn touch_block(nn: NameNodeState, entry: BlockEntry?) {
  if (entry == null) {
    throw "MissingBlockEntry";
  }
  record_allocation(nn, entry);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hdfssafemode_create_rejected() {
  let nn = new_namenode(true);
  let rejected = false;
  try {
    create_file(nn, "/a");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "create rejected in safe mode");
  assert(nn.blocks_allocated == 0, "no block allocated");
}
)ml";

  ticket.buggy_source = std::string(kHdfsSafemodeCommon) + buggy_create + kHdfsSafemodeTests;
  ticket.patched_source =
      std::string(kHdfsSafemodeCommon) + patched_create + kHdfsSafemodeTests + regression_test;
  ticket.regression_tests = {"test_hdfssafemode_create_rejected"};
  ticket.original = {"HDFS-S1", "2014-04-22",
                     "Blocks allocated during safe mode; checkpoint crash"};
  ticket.regressions = {{"HDFS-S2", "2015-02-09",
                         "Append path allocates blocks during safe mode; create-only fix "
                         "missed it"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "allocate_block(";
  ticket.expected_condition = "!(nn.safe_mode)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 4: decommissioning datanode chosen as replication target.
// ---------------------------------------------------------------------------

constexpr const char* kHdfsDecomCommon = R"ml(
struct DataNodeInfo { name: string; decommissioning: bool; alive: bool; assigned: int; }
struct BlockManager { nodes: map<string, DataNodeInfo>; }

fn new_block_manager() -> BlockManager {
  return new BlockManager {};
}

fn add_datanode(bm: BlockManager, name: string, decommissioning: bool, alive: bool) {
  put(bm.nodes, name, new DataNodeInfo { name: name, decommissioning: decommissioning,
                                         alive: alive, assigned: 0 });
}

fn assign_replica(dn: DataNodeInfo, block_id: int) {
  dn.assigned = dn.assigned + 1;
}

// Re-replication sweep after a node loss: the second placement path.
@entry
fn replicate_under_replicated(bm: BlockManager, name: string, block_id: int) {
  let dn = get(bm.nodes, name);
  if (dn == null) {
    return;
  }
  assign_replica(dn, block_id);
}
)ml";

constexpr const char* kHdfsDecomTests = R"ml(
@test
fn test_choose_live_target() {
  let bm = new_block_manager();
  add_datanode(bm, "dn1", false, true);
  choose_target(bm, "dn1", 500);
  let dn = get(bm.nodes, "dn1");
  assert(dn.assigned == 1, "replica placed");
}

@test
fn test_rereplication_places_replica() {
  let bm = new_block_manager();
  add_datanode(bm, "dn2", false, true);
  replicate_under_replicated(bm, "dn2", 501);
  let dn = get(bm.nodes, "dn2");
  assert(dn.assigned == 1, "re-replication placed");
}
)ml";

FailureTicket hdfs_decommission_case() {
  FailureTicket ticket;
  ticket.case_id = "hdfs-decommission-target";
  ticket.system = "hdfs";
  ticket.feature = "replica placement";
  ticket.title = "Decommissioning datanode selected as replication target";
  ticket.description =
      "The block placement policy kept choosing a datanode that was already "
      "decommissioning, so replicas written there were immediately scheduled "
      "for another move and decommissioning never finished. Developer "
      "discussion: a replication target must be alive and must not be "
      "decommissioning. Fix filters targets on the primary placement path.";

  const std::string buggy_choose = R"ml(
@entry
fn choose_target(bm: BlockManager, name: string, block_id: int) {
  let dn = get(bm.nodes, name);
  if (dn == null) {
    return;
  }
  assign_replica(dn, block_id);
}
)ml";

  const std::string patched_choose = R"ml(
@entry
fn choose_target(bm: BlockManager, name: string, block_id: int) {
  let dn = get(bm.nodes, name);
  if (dn == null) {
    return;
  }
  if (dn.decommissioning == false && dn.alive) {
    assign_replica(dn, block_id);
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hdfsdecom_skips_decommissioning_target() {
  let bm = new_block_manager();
  add_datanode(bm, "dn3", true, true);
  choose_target(bm, "dn3", 502);
  let dn = get(bm.nodes, "dn3");
  assert(dn.assigned == 0, "no replica on decommissioning node");
}
)ml";

  ticket.buggy_source = std::string(kHdfsDecomCommon) + buggy_choose + kHdfsDecomTests;
  ticket.patched_source =
      std::string(kHdfsDecomCommon) + patched_choose + kHdfsDecomTests + regression_test;
  ticket.regression_tests = {"test_hdfsdecom_skips_decommissioning_target"};
  ticket.original = {"HDFS-D1", "2017-07-12",
                     "Decommissioning never completes: node keeps receiving replicas"};
  ticket.regressions = {{"HDFS-D2", "2018-05-28",
                         "Re-replication sweep assigns replicas to decommissioning nodes; "
                         "placement-path fix did not cover it"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "assign_replica(";
  ticket.expected_condition = "!(dn == null) && dn.decommissioning == false && dn.alive";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 5: block reports bump the pending-replication counter through a
// helper that skips the namenode monitor.
// ---------------------------------------------------------------------------

constexpr const char* kHdfsPendingCommon = R"ml(
struct NameNode { pending_count: int; scanned: int; }

fn new_name_node() -> NameNode {
  return new NameNode { pending_count: 0, scanned: 0 };
}

// Shared bookkeeping helper: callers are responsible for holding the
// namenode monitor around it.
fn bump_pending(nn: NameNode) {
  nn.pending_count = nn.pending_count + 1;
}

// The replication monitor thread retires one pending item per sweep.
@entry
fn rescan_pending(nn: NameNode) {
  sync (nn) {
    if (nn.pending_count > 0) {
      nn.pending_count = nn.pending_count - 1;
    }
    nn.scanned = nn.scanned + 1;
  }
}
)ml";

constexpr const char* kHdfsPendingTests = R"ml(
@test
fn test_report_counts_pending_replication() {
  let nn = new_name_node();
  report_block(nn, "blk-1");
  report_block(nn, "blk-2");
  assert(nn.pending_count == 2, "both reports pending");
}

@test
fn test_rescan_retires_one_item() {
  let nn = new_name_node();
  report_block(nn, "blk-3");
  rescan_pending(nn);
  assert(nn.pending_count == 0, "item retired");
  assert(nn.scanned == 1, "sweep counted");
}
)ml";

FailureTicket hdfs_pending_race_case() {
  FailureTicket ticket;
  ticket.case_id = "hdfs-pending-race";
  ticket.system = "hdfs";
  ticket.feature = "block replication";
  ticket.title = "Pending-replication counter corrupted by unguarded helper";
  ticket.description =
      "Under a burst of block reports the pending-replication counter "
      "drifted negative: the report path bumped it through a helper without "
      "holding the namenode monitor, racing the replication monitor's sweep "
      "that decrements it — lost updates from the unguarded increment, a "
      "data race with no atomicity across the read-modify-write. Developer "
      "discussion: every update of the pending counter must run while the "
      "namenode is held. Fix takes the monitor around the helper call on "
      "the report path.";

  const std::string buggy_report = R"ml(
@entry
fn report_block(nn: NameNode, block: string) {
  if (block == "") {
    return;
  }
  bump_pending(nn);
}
)ml";

  const std::string patched_report = R"ml(
@entry
fn report_block(nn: NameNode, block: string) {
  if (block == "") {
    return;
  }
  sync (nn) {
    bump_pending(nn);
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_hdfspending_reports_and_sweeps_balance() {
  let nn = new_name_node();
  report_block(nn, "blk-4");
  report_block(nn, "blk-5");
  rescan_pending(nn);
  rescan_pending(nn);
  rescan_pending(nn);
  assert(nn.pending_count == 0, "counter never drifts negative");
  assert(nn.scanned == 3, "all sweeps ran");
}
)ml";

  ticket.buggy_source = std::string(kHdfsPendingCommon) + buggy_report + kHdfsPendingTests;
  ticket.patched_source =
      std::string(kHdfsPendingCommon) + patched_report + kHdfsPendingTests + regression_test;
  ticket.regression_tests = {"test_hdfspending_reports_and_sweeps_balance"};
  ticket.original = {"HDFS-P1", "2016-09-14",
                     "Pending-replication counter drifts negative under block-report burst"};
  ticket.regressions = {{"HDFS-P2", "2018-01-23",
                         "Incremental block-report path calls the bump helper outside the "
                         "monitor; full-report fix did not cover it"}};
  ticket.kind = SemanticsKind::kInterleavingSensitive;
  ticket.expected_target = "pending_count";
  ticket.expected_condition = "holds(nn)";
  return ticket;
}

}  // namespace

std::vector<FailureTicket> hdfs_cases() {
  return {hdfs_observer_case(), hdfs_lease_case(), hdfs_safemode_case(),
          hdfs_decommission_case(), hdfs_pending_race_case()};
}

}  // namespace lisa::corpus
