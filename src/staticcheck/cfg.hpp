// Per-function control-flow graphs over the structured MiniLang AST.
//
// The dataflow framework (dataflow.hpp) and the contract screener
// (screener.hpp) need an explicit graph: the structured AST makes guard
// *enumeration* easy (analysis/paths.cpp) but fixpoint iteration awkward.
// Each function gets one Cfg whose nodes are statements plus synthetic
// entry/exit/join markers; edges carry the branch guard and its polarity so
// analyses can refine facts per branch arm.
//
// Loop semantics deliberately mirror the execution-tree builder
// (analysis/paths.cpp): entering a `while` assumes the guard, but the exit
// edge records *no* refinement — "falling past a loop records no exit guard".
// Keeping the two abstractions aligned is what lets the screener's verdicts
// agree with the path checker's (see screener.hpp).
#pragma once

#include <string>
#include <vector>

#include "minilang/ast.hpp"

namespace lisa::staticcheck {

struct CfgEdge {
  int to = -1;
  /// Branch guard the edge assumes, or nullptr for unconditional edges.
  const minilang::Expr* guard = nullptr;
  /// Polarity of `guard` along this edge.
  bool taken = true;
  /// True when the refinement must not be applied even though `guard` is
  /// set (while-loop exit edges, mirroring the path enumerator).
  bool suppress_refine = false;
  /// Number of `sync` monitors released when control leaves along this edge
  /// (non-zero only on exception edges that unwind out of sync blocks into a
  /// catch handler, and on throw edges leaving the function).
  int sync_unwind = 0;
};

struct CfgNode {
  enum class Kind {
    kEntry,
    kExit,
    kStmt,       // let / assign / expr / return / throw / break / continue
    kBranch,     // if / while condition evaluation
    kSyncEnter,  // monitor acquired
    kSyncExit,   // monitor released
    kJoin,       // synthetic merge point
  };

  Kind kind = Kind::kStmt;
  int id = -1;
  const minilang::Stmt* stmt = nullptr;  // kStmt / kBranch / kSyncEnter
  minilang::SourceLoc loc;
  /// True for kBranch nodes that head a `while` loop (widening points).
  bool loop_head = false;
  std::vector<CfgEdge> succs;
  std::vector<int> preds;
};

/// Control-flow graph of one function. Nodes are owned by the graph;
/// statement pointers borrow from the Program, which must outlive it.
class Cfg {
 public:
  [[nodiscard]] static Cfg build(const minilang::FuncDecl& fn);

  [[nodiscard]] const minilang::FuncDecl& function() const { return *fn_; }
  [[nodiscard]] const std::vector<CfgNode>& nodes() const { return nodes_; }
  [[nodiscard]] const CfgNode& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] int entry() const { return entry_; }
  [[nodiscard]] int exit() const { return exit_; }

  /// Node ids in reverse post-order from the entry (the canonical iteration
  /// order for forward dataflow; unreachable nodes come last).
  [[nodiscard]] std::vector<int> reverse_post_order() const;

  /// The node whose statement is `stmt`, or -1. For branch statements this
  /// is the condition node.
  [[nodiscard]] int node_of(const minilang::Stmt* stmt) const;

  /// Human-readable dump for tests and debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  const minilang::FuncDecl* fn_ = nullptr;
  std::vector<CfgNode> nodes_;
  int entry_ = -1;
  int exit_ = -1;
};

}  // namespace lisa::staticcheck
