file(REMOVE_RECURSE
  "CMakeFiles/minilang_property_test.dir/minilang_property_test.cpp.o"
  "CMakeFiles/minilang_property_test.dir/minilang_property_test.cpp.o.d"
  "minilang_property_test"
  "minilang_property_test.pdb"
  "minilang_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minilang_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
