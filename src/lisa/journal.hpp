// Checkpoint journal: crash-safe resume for long checking runs.
//
// A governed run (deadline, query budget) can be cut off mid-corpus — by
// its own budget, a CI timeout, or a crash. The journal makes the work
// durable at contract granularity: every finished ContractCheckReport is
// appended as one JSONL line, and a resumed run (`lisa check --resume`,
// `lisa gate --resume`) replays conclusive entries from the journal instead
// of re-checking them. Inconclusive entries (budget-refused paths, degraded
// replays) are deliberately *not* reused — resuming is the second chance to
// settle them.
//
// Format (one JSON document per line):
//   {"journal":"lisa-check","version":1,"fingerprint":"<hex>"}
//   {<ContractCheckReport::to_json()>}
//   ...
//
// The header fingerprint records the (case, source) the journal was written
// against. Callers that demand identical inputs pass it to load(); the
// pipeline and gate instead load any compatible journal (empty expected
// fingerprint) and decide replay per entry by matching each report's
// slice fingerprint (staticcheck/slice.hpp) against the current program —
// a one-function edit then re-checks only the contracts whose verdict cone
// contains it. A torn final line (crash mid-append) is dropped; everything
// before it survives.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lisa/checker.hpp"

namespace lisa::core {

class CheckJournal {
 public:
  explicit CheckJournal(std::string path) : path_(std::move(path)) {}

  /// Stable content fingerprint over the journal's identifying inputs
  /// (e.g. case id + source text, or store ids + source text).
  [[nodiscard]] static std::string fingerprint(const std::string& inputs);

  /// Loads an existing journal. Returns true iff the file exists, its
  /// header matches `expected_fingerprint` (empty = accept any journal of
  /// this kind/version), and at least the header parsed. Entries with
  /// unparseable lines (torn tail) are skipped with a warning.
  [[nodiscard]] bool load(const std::string& expected_fingerprint);

  /// Starts a fresh journal: truncates the file and writes the header.
  /// Returns false (and disables recording) when the file cannot be opened.
  bool begin(const std::string& fingerprint);

  /// Appends one finished report and flushes, so a crash right after loses
  /// nothing. No-op when the journal is disabled (begin failed / no path).
  void record(const ContractCheckReport& report);

  /// The journaled report for `contract_id`, or nullptr. Loaded entries
  /// only — records written this run are not replayed back.
  [[nodiscard]] const ContractCheckReport* find(const std::string& contract_id) const;

  [[nodiscard]] std::size_t loaded_entries() const { return entries_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool writable_ = false;
  std::map<std::string, ContractCheckReport> entries_;
};

}  // namespace lisa::core
