#include "lisa/checker.hpp"

#include <algorithm>
#include <set>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "analysis/patterns.hpp"
#include "concolic/engine.hpp"
#include "concolic/schedule.hpp"
#include "inference/embedding.hpp"
#include "minilang/printer.hpp"
#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "smt/solver.hpp"
#include "staticcheck/concurrency.hpp"
#include "staticcheck/screener.hpp"
#include "staticcheck/slice.hpp"
#include "support/faultpoint.hpp"

namespace lisa::core {

using support::Json;
using support::JsonArray;
using support::JsonObject;

const char* path_verdict_name(PathVerdict verdict) {
  switch (verdict) {
    case PathVerdict::kVerified: return "verified";
    case PathVerdict::kViolated: return "violated";
    case PathVerdict::kUnmappable: return "unmappable";
    case PathVerdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

std::optional<PathVerdict> path_verdict_from_name(const std::string& name) {
  if (name == "verified") return PathVerdict::kVerified;
  if (name == "violated") return PathVerdict::kViolated;
  if (name == "unmappable") return PathVerdict::kUnmappable;
  if (name == "inconclusive") return PathVerdict::kInconclusive;
  return std::nullopt;
}

Json ContractCheckReport::to_json() const {
  // Degradation hook for the robustness harness: a faulted serialization
  // yields a minimal-but-valid record instead of a torn artifact. Consumers
  // see `serialization_degraded` and keep the verdict counts.
  if (support::faultpoint("report.serialize") != support::FaultAction::kNone) {
    obs::metrics().counter("fault.report.serialize").add();
    JsonObject stub;
    stub["contract_id"] = contract_id;
    stub["target_fragment"] = target_fragment;
    stub["verified"] = verified;
    stub["violated"] = violated;
    stub["unmappable"] = unmappable;
    stub["inconclusive"] = inconclusive;
    stub["passed"] = passed();
    stub["conclusive"] = conclusive();
    stub["serialization_degraded"] = true;
    return Json(std::move(stub));
  }
  JsonObject root;
  root["contract_id"] = contract_id;
  root["target_fragment"] = target_fragment;
  root["target_statements"] = target_statements;
  root["verified"] = verified;
  root["violated"] = violated;
  root["unmappable"] = unmappable;
  if (inconclusive > 0) root["inconclusive"] = inconclusive;
  root["uncovered"] = uncovered;
  root["raw_paths"] = raw_paths;
  root["truncated"] = truncated;
  root["sanity_ok"] = sanity_ok;
  root["passed"] = passed();
  if (!conclusive()) root["conclusive"] = false;
  if (budget_exhausted) {
    root["budget_exhausted"] = true;
    root["budget_reason"] = budget_reason;
    if (!budget_resource.empty()) root["budget_resource"] = budget_resource;
  }
  JsonArray path_entries;
  for (const PathReport& path : paths) {
    JsonObject entry;
    std::string chain;
    for (const std::string& fn : path.call_chain) {
      if (!chain.empty()) chain += " -> ";
      chain += fn;
    }
    entry["chain"] = chain;
    entry["target_stmt"] = path.target_text;
    entry["target_stmt_id"] = path.target_stmt_id;
    entry["path_condition"] = path.path_condition;
    entry["contract_condition"] = path.contract_condition;
    entry["verdict"] = path_verdict_name(path.verdict);
    if (!path.counterexample.empty()) entry["counterexample"] = path.counterexample;
    if (!path.detail.empty()) entry["detail"] = path.detail;
    entry["covered_by_test"] = path.covered_by_test;
    if (!path.covering_tests.empty()) {
      JsonArray covering;
      for (const std::string& test : path.covering_tests) covering.push_back(Json(test));
      entry["covering_tests"] = Json(std::move(covering));
    }
    path_entries.emplace_back(std::move(entry));
  }
  root["paths"] = Json(std::move(path_entries));
  JsonObject dyn;
  JsonArray selected;
  for (const std::string& test : dynamic.selected_tests) selected.push_back(Json(test));
  dyn["selected_tests"] = Json(std::move(selected));
  dyn["tests_run"] = dynamic.tests_run;
  dyn["tests_passed"] = dynamic.tests_passed;
  dyn["target_hits"] = dynamic.target_hits;
  dyn["symbolic_violations"] = dynamic.symbolic_violations;
  dyn["concrete_violations"] = dynamic.concrete_violations;
  if (dynamic.inconclusive_hits > 0) dyn["inconclusive_hits"] = dynamic.inconclusive_hits;
  if (dynamic.degraded_runs > 0) dyn["degraded_runs"] = dynamic.degraded_runs;
  if (!dynamic.violation_details.empty()) {
    JsonArray details;
    for (const std::string& detail : dynamic.violation_details)
      details.push_back(Json(detail));
    dyn["violation_details"] = Json(std::move(details));
  }
  root["dynamic"] = Json(std::move(dyn));
  JsonArray structural;
  for (const std::string& violation : structural_violations)
    structural.push_back(Json(violation));
  root["structural_violations"] = Json(std::move(structural));
  if (!screen_verdict.empty()) {
    JsonObject screen;
    screen["verdict"] = screen_verdict;
    if (!screen_witness.empty()) screen["witness"] = screen_witness;
    screen["reason"] = screen_reason;
    screen["elapsed_ms"] = screen_ms;
    screen["summary_ms"] = summary_ms;
    screen["skipped_concolic"] = screen_skipped_concolic;
    root["screen"] = Json(std::move(screen));
  }
  // Emitted only when exploration actually ran (or degraded), so reports for
  // thread-free programs stay byte-identical to the pre-scheduler checker.
  if (schedules_explored > 0 || !schedule_conclusive) {
    JsonObject schedule;
    schedule["explored"] = schedules_explored;
    schedule["conclusive"] = schedule_conclusive;
    schedule["violations"] = schedule_violations;
    if (!schedule_witness.empty()) schedule["witness"] = schedule_witness;
    if (!schedule_inconclusive_reason.empty())
      schedule["reason"] = schedule_inconclusive_reason;
    if (!schedule_violation_details.empty()) {
      JsonArray details;
      for (const std::string& detail : schedule_violation_details)
        details.push_back(Json(detail));
      schedule["violation_details"] = Json(std::move(details));
    }
    root["schedule"] = Json(std::move(schedule));
  }
  if (!slice_fp.empty()) root["slice_fp"] = slice_fp;
  return Json(std::move(root));
}

ContractCheckReport ContractCheckReport::from_json(const Json& json) {
  ContractCheckReport report;
  if (!json.is_object()) return report;
  report.contract_id = json.get_string("contract_id");
  report.target_fragment = json.get_string("target_fragment");
  report.target_statements = static_cast<std::size_t>(json.get_int("target_statements"));
  report.verified = static_cast<int>(json.get_int("verified"));
  report.violated = static_cast<int>(json.get_int("violated"));
  report.unmappable = static_cast<int>(json.get_int("unmappable"));
  report.inconclusive = static_cast<int>(json.get_int("inconclusive"));
  report.uncovered = static_cast<int>(json.get_int("uncovered"));
  report.raw_paths = static_cast<std::size_t>(json.get_int("raw_paths"));
  report.truncated = json.has("truncated") && json.at("truncated").is_bool() &&
                     json.at("truncated").as_bool();
  report.sanity_ok = json.has("sanity_ok") && json.at("sanity_ok").is_bool() &&
                     json.at("sanity_ok").as_bool();
  report.budget_exhausted = json.has("budget_exhausted") &&
                            json.at("budget_exhausted").is_bool() &&
                            json.at("budget_exhausted").as_bool();
  report.budget_reason = json.get_string("budget_reason");
  report.budget_resource = json.get_string("budget_resource");
  if (json.has("paths") && json.at("paths").is_array()) {
    for (const Json& entry : json.at("paths").as_array()) {
      if (!entry.is_object()) continue;
      PathReport path;
      const std::string chain = entry.get_string("chain");
      for (std::size_t pos = 0; pos <= chain.size();) {
        const std::size_t arrow = chain.find(" -> ", pos);
        const std::size_t end = arrow == std::string::npos ? chain.size() : arrow;
        if (end > pos) path.call_chain.push_back(chain.substr(pos, end - pos));
        if (arrow == std::string::npos) break;
        pos = arrow + 4;
      }
      path.target_text = entry.get_string("target_stmt");
      path.target_stmt_id = static_cast<int>(entry.get_int("target_stmt_id", -1));
      path.path_condition = entry.get_string("path_condition");
      path.contract_condition = entry.get_string("contract_condition");
      path.verdict = path_verdict_from_name(entry.get_string("verdict"))
                         .value_or(PathVerdict::kInconclusive);
      path.counterexample = entry.get_string("counterexample");
      path.detail = entry.get_string("detail");
      path.covered_by_test = entry.has("covered_by_test") &&
                             entry.at("covered_by_test").is_bool() &&
                             entry.at("covered_by_test").as_bool();
      if (entry.has("covering_tests") && entry.at("covering_tests").is_array())
        for (const Json& test : entry.at("covering_tests").as_array())
          if (test.is_string()) path.covering_tests.push_back(test.as_string());
      report.paths.push_back(std::move(path));
    }
  }
  if (json.has("dynamic") && json.at("dynamic").is_object()) {
    const Json& dyn = json.at("dynamic");
    if (dyn.has("selected_tests") && dyn.at("selected_tests").is_array())
      for (const Json& test : dyn.at("selected_tests").as_array())
        if (test.is_string()) report.dynamic.selected_tests.push_back(test.as_string());
    report.dynamic.tests_run = static_cast<int>(dyn.get_int("tests_run"));
    report.dynamic.tests_passed = static_cast<int>(dyn.get_int("tests_passed"));
    report.dynamic.target_hits = static_cast<int>(dyn.get_int("target_hits"));
    report.dynamic.symbolic_violations =
        static_cast<int>(dyn.get_int("symbolic_violations"));
    report.dynamic.concrete_violations =
        static_cast<int>(dyn.get_int("concrete_violations"));
    report.dynamic.inconclusive_hits = static_cast<int>(dyn.get_int("inconclusive_hits"));
    report.dynamic.degraded_runs = static_cast<int>(dyn.get_int("degraded_runs"));
    if (dyn.has("violation_details") && dyn.at("violation_details").is_array())
      for (const Json& detail : dyn.at("violation_details").as_array())
        if (detail.is_string())
          report.dynamic.violation_details.push_back(detail.as_string());
  }
  if (json.has("structural_violations") && json.at("structural_violations").is_array())
    for (const Json& violation : json.at("structural_violations").as_array())
      if (violation.is_string())
        report.structural_violations.push_back(violation.as_string());
  if (json.has("screen") && json.at("screen").is_object()) {
    const Json& screen = json.at("screen");
    report.screen_verdict = screen.get_string("verdict");
    report.screen_witness = screen.get_string("witness");
    report.screen_reason = screen.get_string("reason");
    if (screen.has("elapsed_ms") && screen.at("elapsed_ms").is_number())
      report.screen_ms = screen.at("elapsed_ms").as_double();
    if (screen.has("summary_ms") && screen.at("summary_ms").is_number())
      report.summary_ms = screen.at("summary_ms").as_double();
    report.screen_skipped_concolic = screen.has("skipped_concolic") &&
                                     screen.at("skipped_concolic").is_bool() &&
                                     screen.at("skipped_concolic").as_bool();
  }
  if (json.has("schedule") && json.at("schedule").is_object()) {
    const Json& schedule = json.at("schedule");
    report.schedules_explored = static_cast<int>(schedule.get_int("explored"));
    report.schedule_conclusive = !schedule.has("conclusive") ||
                                 !schedule.at("conclusive").is_bool() ||
                                 schedule.at("conclusive").as_bool();
    report.schedule_violations = static_cast<int>(schedule.get_int("violations"));
    report.schedule_witness = schedule.get_string("witness");
    report.schedule_inconclusive_reason = schedule.get_string("reason");
    if (schedule.has("violation_details") && schedule.at("violation_details").is_array())
      for (const Json& detail : schedule.at("violation_details").as_array())
        if (detail.is_string())
          report.schedule_violation_details.push_back(detail.as_string());
  }
  report.slice_fp = json.get_string("slice_fp");
  return report;
}

std::string ContractCheckReport::verdict_signature() const {
  std::string sig = contract_id + "|" + target_fragment;
  sig += "|verified=" + std::to_string(verified);
  sig += "|violated=" + std::to_string(violated);
  sig += "|unmappable=" + std::to_string(unmappable);
  sig += "|inconclusive=" + std::to_string(inconclusive);
  sig += "|uncovered=" + std::to_string(uncovered);
  if (truncated) sig += "|truncated";
  sig += sanity_ok ? "|sane" : "|unsane";
  sig += passed() ? "|passed" : "|failed";
  for (const PathReport& path : paths) {
    sig += "\npath ";
    for (const std::string& fn : path.call_chain) sig += fn + ">";
    // The target is named by its text, not its statement id: ids are
    // positional and shift when an edit inserts statements elsewhere, and a
    // pure shift is not a verdict change.
    sig += "[" + path.target_text + "]";
    sig += " " + std::string(path_verdict_name(path.verdict));
    if (!path.counterexample.empty()) sig += " " + path.counterexample;
  }
  for (const std::string& violation : structural_violations)
    sig += "\nstructural " + violation;
  sig += "\ndynamic tests=" + std::to_string(dynamic.tests_run);
  sig += " passed=" + std::to_string(dynamic.tests_passed);
  sig += " hits=" + std::to_string(dynamic.target_hits);
  sig += " symbolic=" + std::to_string(dynamic.symbolic_violations);
  sig += " concrete=" + std::to_string(dynamic.concrete_violations);
  for (const std::string& detail : dynamic.violation_details) sig += "\nviolation " + detail;
  if (!screen_verdict.empty()) sig += "\nscreen " + screen_verdict;
  if (schedules_explored > 0 || !schedule_conclusive) {
    sig += "\nschedule explored=" + std::to_string(schedules_explored);
    sig += " violations=" + std::to_string(schedule_violations);
    sig += schedule_conclusive ? " conclusive" : " inconclusive";
    if (!schedule_witness.empty()) sig += " " + schedule_witness;
  }
  return sig;
}

namespace {

/// True if `hit_chain` (test frame first) ends with `path_chain`.
bool chain_suffix_matches(const std::vector<std::string>& hit_chain,
                          const std::vector<std::string>& path_chain) {
  if (path_chain.size() > hit_chain.size()) return false;
  return std::equal(path_chain.rbegin(), path_chain.rend(), hit_chain.rbegin());
}

}  // namespace

namespace {

/// Folds one finished contract check into the metrics registry and closes
/// its span with the outcome attributes.
void record_contract_outcome(obs::ScopedSpan& span, const ContractCheckReport& report,
                             double elapsed_ms) {
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("checker.contracts").add();
  registry.counter("checker.paths_verified").add(report.verified);
  registry.counter("checker.paths_violated").add(report.violated);
  registry.counter("checker.paths_unmappable").add(report.unmappable);
  registry.counter("checker.paths_uncovered").add(report.uncovered);
  if (report.inconclusive > 0)
    registry.counter("checker.paths_inconclusive").add(report.inconclusive);
  if (!report.conclusive()) registry.counter("checker.inconclusive_contracts").add();
  if (report.budget_exhausted) {
    registry.counter("checker.budget_exhausted").add();
    // Typed exhaustion cause as a labeled counter, so a metrics dump shows
    // *which* resource the fleet keeps running out of.
    if (!report.budget_resource.empty())
      registry.counter("budget.exhausted{reason=" + report.budget_resource + "}").add();
  }
  registry.histogram("checker.contract_ms").record(elapsed_ms);
  if (!report.screen_verdict.empty()) {
    registry.counter("screen." + report.screen_verdict).add();
    registry.histogram("screen.ms").record(report.screen_ms);
    if (report.summary_ms > 0.0) registry.histogram("summaries.ms").record(report.summary_ms);
    if (report.screen_skipped_concolic) registry.counter("screen.concolic_skipped").add();
  }
  span.attr("paths", report.paths.size());
  span.attr("verified", report.verified);
  span.attr("violated", report.violated);
  span.attr("unmappable", report.unmappable);
  span.attr("passed", report.passed());
  if (!report.screen_verdict.empty()) span.attr("screen_verdict", report.screen_verdict);
  if (report.budget_exhausted && !report.budget_resource.empty())
    span.attr("budget.exhausted_reason", report.budget_resource);
}

/// Creates (or re-opens) the capture cell for `contract` and fills its
/// identity fields. Inert handle when no ledger is attached.
obs::CaptureHandle bind_capture(obs::ProvenanceLedger* ledger,
                                const SemanticContract& contract) {
  if (ledger == nullptr) return {};
  obs::ContractCapture* capture = ledger->capture_for(contract.id);
  capture->contract_id = contract.id;
  capture->system = contract.system;
  capture->kind = contract.kind == corpus::SemanticsKind::kStructuralPattern
                      ? "structural-pattern"
                  : contract.kind == corpus::SemanticsKind::kInterleavingSensitive
                      ? "interleaving-sensitive"
                      : "state-predicate";
  capture->target_fragment = contract.target_fragment;
  capture->condition_text = contract.condition_text;
  capture->description = contract.description;
  capture->fingerprint = obs::evidence_digest(contract.id + "|" + contract.target_fragment +
                                              "|" + contract.condition_text);
  return {ledger, capture};
}

/// Copies the final verdict and budget accounting onto the capture cell.
/// Charges are counter snapshots (deterministic for non-deadline budgets);
/// elapsed time deliberately stays out of the ledger.
void finalize_capture(const obs::CaptureHandle& capture, const ContractCheckReport& report,
                      const support::Budget* budget) {
  if (!capture.active()) return;
  obs::ContractCapture* cell = capture.capture;
  if (!report.slice_fp.empty()) cell->slice_fp = report.slice_fp;
  cell->passed = report.passed();
  cell->conclusive = report.conclusive();
  cell->verdict =
      !report.passed() ? "violated" : (report.conclusive() ? "passed" : "inconclusive");
  cell->screen_verdict = report.screen_verdict;
  cell->screen_reason = report.screen_reason;
  cell->screen_witness = report.screen_witness;
  cell->budget.attached = budget != nullptr;
  if (budget != nullptr) {
    cell->budget.exhausted = budget->exhausted();
    if (budget->exhausted()) {
      cell->budget.resource = support::budget_resource_name(budget->exhausted_resource());
      cell->budget.reason = budget->exhausted_reason();
    }
    cell->budget.charges["smt-queries"] = budget->smt_queries();
    cell->budget.charges["paths"] = budget->paths();
    cell->budget.charges["fork-points"] = budget->fork_points();
    cell->budget.charges["steps"] = budget->steps();
    cell->budget.charges["schedules"] = budget->schedules();
  }
}

}  // namespace

staticcheck::SliceRequest contract_slice_request(const SemanticContract& contract,
                                                 bool run_concolic) {
  staticcheck::SliceRequest request;
  switch (contract.kind) {
    case corpus::SemanticsKind::kStructuralPattern:
      request.kind = staticcheck::SliceRequest::Kind::kStructural;
      request.include_tests = true;  // the lock-state scan covers test bodies
      break;
    case corpus::SemanticsKind::kInterleavingSensitive:
      request.kind = staticcheck::SliceRequest::Kind::kInterleaving;
      request.include_tests = true;  // thread roots may be anywhere
      break;
    case corpus::SemanticsKind::kStatePredicate:
      request.kind = staticcheck::SliceRequest::Kind::kStatePredicate;
      request.include_tests = run_concolic;
      break;
  }
  request.target_fragment = contract.target_fragment;
  request.condition = contract.condition;
  request.condition_text = contract.condition_text;
  request.pattern = contract.pattern;
  request.contract_text = contract.id + "|" + contract.target_fragment + "|" +
                          contract.condition_text + "|" + contract.pattern;
  return request;
}

std::string contract_slice_fingerprint(const staticcheck::SliceEngine& engine,
                                       const SemanticContract& contract,
                                       bool run_concolic) {
  return engine.slice(contract_slice_request(contract, run_concolic)).fingerprint;
}

ContractCheckReport Checker::check(const minilang::Program& program,
                                   const SemanticContract& contract,
                                   const CheckOptions& options) const {
  obs::ScopedSpan span("checker.contract");
  span.attr("contract", contract.id);
  span.attr("target", contract.target_fragment);

  ContractCheckReport report;
  report.contract_id = contract.id;
  report.target_fragment = contract.target_fragment;

  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  const obs::CaptureHandle capture = bind_capture(options.ledger, contract);

  if (contract.kind == corpus::SemanticsKind::kStructuralPattern) {
    // The path-sensitive lock-state dataflow subsumes the older structural
    // walk (analysis/patterns.cpp): same monitor rule, but exception edges
    // release monitors and nested sync depth is tracked per path.
    const staticcheck::Screener screener(program, options.use_summaries);
    staticcheck::ScreenOptions screen_options;
    screen_options.capture = capture;
    const staticcheck::ScreenResult screen = screener.screen_structural(screen_options);
    if (screener.summaries() != nullptr)
      report.summary_ms = screener.summaries()->stats().elapsed_ms;
    if (options.compute_slice_fp) {
      const staticcheck::SliceEngine slicer(program, screener.graph(), screener.summaries());
      report.slice_fp = contract_slice_fingerprint(slicer, contract, options.run_concolic);
    }
    for (const staticcheck::Diagnostic& diagnostic : screen.diagnostics)
      report.structural_violations.push_back(diagnostic.render());
    report.screen_verdict = staticcheck::screen_verdict_name(screen.verdict);
    report.screen_witness = screen.witness;
    report.screen_reason = screen.reason;
    report.screen_ms = screen.elapsed_ms;
    report.target_statements =
        analysis::find_target_statements(program, contract.target_fragment).size();
    report.sanity_ok = true;  // structural rules need no fixed-path witness
    if (capture.active() && !report.passed()) {
      // Narrate the deadlock-shaped witness: replay tests until a blocking
      // call executes under a held monitor.
      obs::NarrationRequest request;
      request.contract_id = contract.id;
      request.kind = "structural-pattern";
      request.target_fragment = contract.target_fragment;
      for (const minilang::FuncDecl* fn : program.functions_with("test"))
        request.candidate_tests.push_back(fn->name);
      capture.capture->narration = obs::narrate_counterexample(program, request);
    }
    finalize_capture(capture, report, options.budget);
    record_contract_outcome(span, report, span.elapsed_ms());
    return report;
  }

  if (contract.kind == corpus::SemanticsKind::kInterleavingSensitive &&
      (contract.pattern == "atomic" || contract.pattern == "eventually")) {
    // Atomicity and liveness patterns cannot be settled by the lockset
    // screen: the violation is a specific interleaving of spawned threads,
    // not a missing lock edge. The schedule explorer quantifies over
    // interleavings instead — every spawning @test is re-run under the
    // cooperative scheduler, one thread order per run, bounded by
    // max_schedules and charged to the budget. Serial replay of the same
    // tests sees exactly one schedule and is provably blind to these bugs
    // (schedule_test.cpp asserts it), so the explorer's verdict is final:
    // a violating schedule fails the contract with a replayable witness;
    // an undrained schedule space is a typed inconclusive, never a pass.
    const staticcheck::Screener screener(program, options.use_summaries);
    if (screener.summaries() != nullptr)
      report.summary_ms = screener.summaries()->stats().elapsed_ms;
    if (options.compute_slice_fp) {
      const staticcheck::SliceEngine slicer(program, screener.graph(), screener.summaries());
      report.slice_fp = contract_slice_fingerprint(slicer, contract, options.run_concolic);
    }
    report.target_statements =
        analysis::find_target_statements(program, contract.target_fragment).size();
    report.sanity_ok = true;  // the witness schedule is its own evidence

    concolic::ScheduleExploreOptions schedule_options;
    schedule_options.max_schedules = options.max_schedules;
    schedule_options.seed = options.schedule_seed;
    schedule_options.budget = options.budget;
    concolic::ScheduleExplorer explorer(program, schedule_options);
    const concolic::ScheduleExplorationResult explored = explorer.explore();
    report.schedules_explored = explored.schedules_explored;
    report.schedule_conclusive = explored.conclusive;
    report.schedule_inconclusive_reason = explored.inconclusive_reason;
    report.schedule_violations = static_cast<int>(explored.witnesses.size());
    for (const concolic::ScheduleWitness& witness : explored.witnesses) {
      report.schedule_violation_details.push_back(
          witness.test + ": " + witness.outcome + " under schedule [" +
          witness.decisions_text() + "]" +
          (witness.detail.empty() ? "" : " — " + witness.detail));
      if (report.schedule_witness.empty())
        report.schedule_witness = witness.to_compact();
    }
    if (options.budget != nullptr && options.budget->exhausted()) {
      report.budget_exhausted = true;
      report.budget_reason = options.budget->exhausted_reason();
      report.budget_resource =
          support::budget_resource_name(options.budget->exhausted_resource());
    }
    obs::metrics().counter("checker.interleaving_contracts").add();
    obs::metrics().counter("checker.schedule_contracts").add();
    obs::metrics().counter("checker.schedules_explored").add(explored.schedules_explored);
    if (explored.violation_found)
      obs::metrics().counter("checker.schedule_violations").add();
    if (!explored.conclusive)
      obs::metrics().counter("checker.schedule_inconclusive").add();
    if (capture.active()) {
      capture.capture->schedules_explored = report.schedules_explored;
      capture.capture->schedule_conclusive = report.schedule_conclusive;
      capture.capture->schedule_witness = report.schedule_witness;
      capture.capture->schedule_reason =
          !report.schedule_violation_details.empty()
              ? report.schedule_violation_details.front()
              : report.schedule_inconclusive_reason;
      if (!explored.witnesses.empty())
        // Narrate the violating interleaving: replay the witness with a
        // recording observer, each step tagged with its MiniLang thread id.
        capture.capture->narration =
            concolic::narrate_schedule(program, explored.witnesses.front());
    }
    finalize_capture(capture, report, options.budget);
    record_contract_outcome(span, report, span.elapsed_ms());
    return report;
  }

  if (contract.kind == corpus::SemanticsKind::kInterleavingSensitive) {
    // Interleaving-sensitive contracts are settled by the static concurrency
    // pass (locksets + the lock-acquisition-order graph): single-threaded
    // concolic replay cannot observe interleavings, so the screen *is* the
    // check — Unknown when summaries are unavailable, never a false
    // ProvedSafe.
    const staticcheck::Screener screener(program, options.use_summaries);
    if (screener.summaries() != nullptr)
      report.summary_ms = screener.summaries()->stats().elapsed_ms;
    if (options.compute_slice_fp) {
      const staticcheck::SliceEngine slicer(program, screener.graph(), screener.summaries());
      report.slice_fp = contract_slice_fingerprint(slicer, contract, options.run_concolic);
    }
    staticcheck::ScreenOptions screen_options;
    screen_options.capture = capture;
    const staticcheck::ScreenResult screen = screener.screen_interleaving(
        contract.pattern, contract.target_fragment, contract.condition_text,
        screen_options);
    for (const staticcheck::Diagnostic& diagnostic : screen.diagnostics)
      report.structural_violations.push_back(diagnostic.render());
    report.screen_verdict = staticcheck::screen_verdict_name(screen.verdict);
    report.screen_witness = screen.witness;
    report.screen_reason = screen.reason;
    report.screen_ms = screen.elapsed_ms;
    report.target_statements =
        analysis::find_target_statements(program, contract.target_fragment).size();
    report.sanity_ok = true;  // the screened verdict carries its own witness
    obs::metrics().counter("checker.interleaving_contracts").add();
    obs::metrics()
        .counter(std::string("screen.interleaving.") +
                 staticcheck::screen_verdict_name(screen.verdict))
        .add();
    if (capture.active() && !report.passed()) {
      // Narrate the concrete schedule: replay tests until one acquires a
      // cycle-edge monitor pair nested, or writes the guarded field bare.
      obs::NarrationRequest request;
      request.contract_id = contract.id;
      request.kind = "interleaving-sensitive";
      request.target_fragment = contract.target_fragment;
      if (contract.pattern == "lock_order_acyclic" && screener.summaries() != nullptr) {
        const staticcheck::LockGraph lock_graph = staticcheck::LockGraph::build(
            program, screener.graph(), *screener.summaries());
        for (const staticcheck::LockCycle& cycle : lock_graph.cycles)
          for (const staticcheck::LockOrderEdge& edge : cycle.edges)
            request.cycle_edges.emplace_back(edge.first, edge.second);
      } else if (contract.pattern == "guarded_field") {
        request.guarded_field = contract.target_fragment;
        const std::size_t open = contract.condition_text.find("holds(");
        const std::size_t close = contract.condition_text.rfind(')');
        if (open != std::string::npos && close != std::string::npos &&
            close > open + 6)
          request.guard_monitor =
              contract.condition_text.substr(open + 6, close - open - 6);
      }
      for (const minilang::FuncDecl* fn : program.functions_with("test"))
        request.candidate_tests.push_back(fn->name);
      capture.capture->narration = obs::narrate_counterexample(program, request);
    }
    finalize_capture(capture, report, options.budget);
    record_contract_outcome(span, report, span.elapsed_ms());
    return report;
  }

  // ---- Static screening (src/staticcheck) ---------------------------------
  bool skip_concolic = false;
  if (options.static_screen) {
    const staticcheck::Screener screener(program, options.use_summaries);
    if (screener.summaries() != nullptr)
      report.summary_ms = screener.summaries()->stats().elapsed_ms;
    staticcheck::ScreenOptions screen_options;
    screen_options.max_paths = options.max_paths;
    screen_options.prune_irrelevant = options.prune_irrelevant;
    screen_options.capture = capture;
    const staticcheck::ScreenResult screen = screener.screen_state_predicate(
        contract.target_fragment, contract.condition, screen_options);
    report.screen_verdict = staticcheck::screen_verdict_name(screen.verdict);
    report.screen_witness = screen.witness;
    report.screen_reason = screen.reason;
    report.screen_ms = screen.elapsed_ms;
    // Forced tests are always honoured: ablations that request specific
    // replays expect them to run regardless of the screening verdict.
    if (options.forced_tests.empty()) {
      skip_concolic =
          screen.verdict == staticcheck::ScreenVerdict::kProvedSafe ||
          (screen.verdict == staticcheck::ScreenVerdict::kProvedViolated &&
           options.trust_screen_verdicts);
    }
    report.screen_skipped_concolic = skip_concolic && options.run_concolic;
    if (options.compute_slice_fp) {
      const staticcheck::SliceEngine slicer(program, screener.graph(), screener.summaries());
      report.slice_fp = contract_slice_fingerprint(slicer, contract, options.run_concolic);
    }
  }
  if (options.compute_slice_fp && report.slice_fp.empty()) {
    // Screening off: no summaries around, so the fingerprint degrades to the
    // whole-program cone — maximally conservative, never stale.
    const staticcheck::SliceEngine slicer(program, graph, nullptr);
    report.slice_fp = contract_slice_fingerprint(slicer, contract, options.run_concolic);
  }

  // ---- Static assertion over the execution tree ---------------------------
  analysis::TreeOptions tree_options;
  tree_options.max_paths = options.max_paths;
  tree_options.prune_irrelevant = options.prune_irrelevant;
  tree_options.contract_condition = contract.condition;
  obs::ScopedSpan tree_span("checker.tree");
  const analysis::ExecutionTree tree = analysis::build_execution_tree(
      program, graph, contract.target_fragment, tree_options);
  tree_span.attr("paths", tree.paths.size());
  tree_span.attr("raw_paths", tree.enumerated_raw);
  tree_span.close();
  report.target_statements = tree.targets.size();
  report.raw_paths = tree.enumerated_raw;
  report.truncated = tree.truncated;

  obs::ScopedSpan static_span("checker.static_paths");
  smt::Solver solver;
  solver.set_budget(options.budget);
  obs::PhasedSmtCapture static_smt_capture(capture.ledger, capture.capture, "static-path");
  if (capture.active()) solver.set_capture(&static_smt_capture);
  // The first violated path's satisfying model, kept structured for the
  // counterexample narrator (names in canonical frame vocabulary).
  smt::Model narration_model;
  int narration_stmt_id = -1;
  std::vector<std::string> narration_path_chain;
  for (const analysis::ExecutionPath& path : tree.paths) {
    PathReport path_report;
    path_report.call_chain = path.call_chain;
    path_report.target_stmt_id = path.target != nullptr ? path.target->id : -1;
    path_report.target_text =
        path.target != nullptr ? minilang::stmt_header_text(*path.target) : "";
    path_report.path_condition = path.condition->to_string();
    path_report.contract_condition = path.renamed_contract->to_string();
    smt::Model violated_model;
    if (options.budget != nullptr && !options.budget->charge_path()) {
      // A refused path is inconclusive, never silently verified: the report
      // keeps the full path entry so a resumed run can pick it back up.
      path_report.verdict = PathVerdict::kInconclusive;
      path_report.detail = options.budget->exhausted_reason();
      ++report.inconclusive;
    } else if (!path.mappable) {
      path_report.verdict = PathVerdict::kUnmappable;
      ++report.unmappable;
    } else {
      const smt::SolveResult result = solver.solve(smt::Formula::conj2(
          path.condition, smt::Formula::negate(path.renamed_contract)));
      if (result.unknown()) {
        path_report.verdict = PathVerdict::kInconclusive;
        path_report.detail = result.reason;
        ++report.inconclusive;
      } else if (result.sat()) {
        path_report.verdict = PathVerdict::kViolated;
        path_report.counterexample = result.model.to_string();
        violated_model = result.model;
        if (narration_stmt_id < 0) {
          narration_model = result.model;
          narration_stmt_id = path_report.target_stmt_id;
          narration_path_chain = path.call_chain;
        }
        ++report.violated;
      } else {
        path_report.verdict = PathVerdict::kVerified;
        ++report.verified;
      }
    }
    if (capture.active()) {
      obs::PathEvidence evidence;
      std::string chain;
      for (const std::string& fn : path_report.call_chain) {
        if (!chain.empty()) chain += " -> ";
        chain += fn;
      }
      evidence.chain = std::move(chain);
      evidence.target_stmt_id = path_report.target_stmt_id;
      evidence.target_text = path_report.target_text;
      evidence.path_condition = path_report.path_condition;
      evidence.contract_condition = path_report.contract_condition;
      evidence.verdict = path_verdict_name(path_report.verdict);
      evidence.counterexample = path_report.counterexample;
      evidence.detail = path_report.detail;
      evidence.model_bools = violated_model.bools;
      evidence.model_ints = violated_model.ints;
      capture.path(std::move(evidence));
    }
    report.paths.push_back(std::move(path_report));
  }
  solver.set_capture(nullptr);  // the sink is stack-local
  static_span.attr("verified", report.verified);
  static_span.attr("violated", report.violated);
  if (report.inconclusive > 0) static_span.attr("inconclusive", report.inconclusive);
  static_span.close();
  report.sanity_ok = report.verified > 0;

  // ---- Dynamic confirmation via concolic replay of selected tests ---------
  // The witness model for the narrator, and the test that produced it when
  // it came from a concolic hit rather than a static path.
  std::string narration_hit_test;
  if (options.run_concolic && !skip_concolic) {
    obs::ScopedSpan concolic_span("checker.concolic");
    std::vector<std::string> tests = options.forced_tests;
    if (tests.empty()) {
      // Per-path selection (§3.2: "selects relevant tests for each path"):
      // rank the suite against each path's description, then take picks
      // round-robin across paths so every path gets its best candidates
      // before any path gets its second-best.
      const inference::TestSelector selector(program);
      std::vector<std::vector<inference::TestRanking>> rankings;
      rankings.reserve(tree.paths.size());
      for (const analysis::ExecutionPath& path : tree.paths)
        rankings.push_back(
            selector.rank(contract.target_fragment + " " + contract.condition_text + " " +
                          inference::TestSelector::describe_path(path)));
      std::set<std::string> seen;
      for (std::size_t round = 0; tests.size() < options.max_tests_per_contract; ++round) {
        bool any = false;
        for (const std::vector<inference::TestRanking>& ranking : rankings) {
          if (round >= ranking.size()) continue;
          if (ranking[round].score < options.min_test_score) continue;
          any = true;
          if (seen.insert(ranking[round].test_name).second) {
            tests.push_back(ranking[round].test_name);
            if (tests.size() >= options.max_tests_per_contract) break;
          }
        }
        if (!any) break;
      }
    }
    report.dynamic.selected_tests = tests;

    concolic::Engine engine(program);
    concolic::CheckConfig config;
    config.target_fragment = contract.target_fragment;
    config.contract = contract.condition;
    config.prune_irrelevant = options.prune_irrelevant;
    config.budget = options.budget;
    config.capture = capture;
    for (const std::string& test : tests) {
      if (options.budget != nullptr && options.budget->exhausted()) {
        // Unrun tests degrade the run count, not the verdict: the report's
        // budget_exhausted flag marks the contract as needing attention.
        ++report.dynamic.degraded_runs;
        continue;
      }
      const concolic::RunResult run = engine.run_test(test, config);
      ++report.dynamic.tests_run;
      if (run.test_passed) ++report.dynamic.tests_passed;
      if (run.degraded()) ++report.dynamic.degraded_runs;
      for (const concolic::TargetHit& hit : run.hits) {
        ++report.dynamic.target_hits;
        if (hit.inconclusive) ++report.dynamic.inconclusive_hits;
        if (hit.symbolic_violation) {
          ++report.dynamic.symbolic_violations;
          report.dynamic.violation_details.push_back(
              test + " -> " + hit.function + ": missing-check path, witness " + hit.witness);
        }
        if (hit.concrete_violation) {
          ++report.dynamic.concrete_violations;
          report.dynamic.violation_details.push_back(
              test + " -> " + hit.function + ": contract concretely false at target");
        }
        if (hit.symbolic_violation && narration_stmt_id < 0 &&
            !(hit.witness_bools.empty() && hit.witness_ints.empty())) {
          // No static path produced a model (e.g. all paths unmappable):
          // fall back to this hit's π ∧ ¬P witness for the narration.
          narration_model.bools = hit.witness_bools;
          narration_model.ints = hit.witness_ints;
          narration_stmt_id = hit.stmt_id;
          narration_hit_test = test;
        }
        if (capture.active()) {
          obs::HitEvidence evidence;
          evidence.test = test;
          evidence.function = hit.function;
          evidence.stmt_id = hit.stmt_id;
          evidence.trace_condition =
              hit.trace_condition != nullptr ? hit.trace_condition->to_string() : "";
          evidence.instantiated_contract =
              hit.instantiated_contract != nullptr ? hit.instantiated_contract->to_string()
                                                   : "";
          evidence.outcome = hit.concrete_violation   ? "concrete-violation"
                             : hit.symbolic_violation ? "symbolic-violation"
                             : hit.inconclusive       ? "inconclusive"
                                                      : "ok";
          evidence.witness = hit.witness;
          capture.hit(std::move(evidence));
        }
        // Mark static paths covered by this hit.
        for (PathReport& path : report.paths) {
          if (path.target_stmt_id != hit.stmt_id) continue;
          if (!chain_suffix_matches(hit.call_chain, path.call_chain)) continue;
          path.covered_by_test = true;
          if (std::find(path.covering_tests.begin(), path.covering_tests.end(), test) ==
              path.covering_tests.end())
            path.covering_tests.push_back(test);
        }
      }
    }
    for (const PathReport& path : report.paths)
      if (!path.covered_by_test) ++report.uncovered;
    concolic_span.attr("tests_run", report.dynamic.tests_run);
    concolic_span.attr("target_hits", report.dynamic.target_hits);
  }
  if (options.budget != nullptr && options.budget->exhausted()) {
    report.budget_exhausted = true;
    report.budget_reason = options.budget->exhausted_reason();
    report.budget_resource =
        support::budget_resource_name(options.budget->exhausted_resource());
  }
  if (capture.active() && !report.passed()) {
    // Narrate the counterexample: replay the best covering test with the
    // violated path's model injected into the live state.
    obs::NarrationRequest request;
    request.contract_id = contract.id;
    request.kind = "state-predicate";
    request.target_fragment = contract.target_fragment;
    request.target_stmt_id = narration_stmt_id;
    request.contract = contract.condition;
    request.model_bools = narration_model.bools;
    request.model_ints = narration_model.ints;
    // Candidate order: tests covering the violated path, then the test whose
    // hit supplied the witness, then every selected test, then the rest of
    // the suite. The narrator dedups and returns the first reproduction.
    for (const PathReport& path : report.paths) {
      if (path.verdict != PathVerdict::kViolated) continue;
      for (const std::string& test : path.covering_tests)
        request.candidate_tests.push_back(test);
    }
    if (!narration_hit_test.empty()) request.candidate_tests.push_back(narration_hit_test);
    for (const std::string& test : report.dynamic.selected_tests)
      request.candidate_tests.push_back(test);
    for (const minilang::FuncDecl* fn : program.functions_with("test"))
      request.candidate_tests.push_back(fn->name);
    capture.capture->narration = obs::narrate_counterexample(program, request);
  }
  finalize_capture(capture, report, options.budget);
  record_contract_outcome(span, report, span.elapsed_ms());
  return report;
}

}  // namespace lisa::core
