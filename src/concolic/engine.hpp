// Concolic execution engine — the reproduction's WeBridge.
//
// Runs a @test function concretely while collecting a symbolic path
// condition over locations relevant to a semantic contract, and fires an
// injected check every time execution reaches a target statement:
//
//   1. The *trace condition* π is the conjunction of recorded branch guards
//      (only guards whose shadows touch contract-relevant fields, mirroring
//      the paper's selective branch exploration; an option disables the
//      filter for the pruning ablation).
//   2. The contract P is *instantiated* at the hit: its variable paths are
//      resolved against the live frame, naming atoms by object identity.
//   3. Per §3.2, the path VIOLATES the contract iff π ∧ ¬P is satisfiable —
//      "the trace fulfills the complement of the checker formula"; a missing
//      check is treated as an unconstrained (true) condition exactly as the
//      paper prescribes.
//   4. Independently, P is evaluated on the concrete state; a false result
//      is a concrete witness (the injected assertion actually failing).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "minilang/ast.hpp"
#include "obs/provenance.hpp"
#include "smt/formula.hpp"
#include "support/budget.hpp"

namespace lisa::concolic {

/// What to check during a run.
struct CheckConfig {
  /// Canonical-text fragment identifying target statements.
  std::string target_fragment;
  /// Contract precondition in target-frame local names (e.g. over `s.ttl`).
  smt::FormulaPtr contract;
  /// Record only guards touching fields the contract mentions (paper's
  /// relevant-variable pruning). Disable for the ablation bench.
  bool prune_irrelevant = true;
  /// Cooperative resource budget (support/budget.hpp): the engine charges
  /// interpreter steps and recorded fork points, and its per-hit solver
  /// charges SMT queries. Exhaustion ends the run with a structured
  /// RunResult::budget_exhausted outcome. nullptr = ungoverned.
  support::Budget* budget = nullptr;
  /// Provenance capture: every per-hit π ∧ ¬P query is recorded with phase
  /// "concolic". An inert handle (the default) is the zero-cost path.
  obs::CaptureHandle capture;
};

/// One arrival at a target statement.
struct TargetHit {
  int stmt_id = -1;
  std::string function;                  // function containing the target
  std::vector<std::string> call_chain;   // test frame first, target last
  smt::FormulaPtr trace_condition;       // π over object-named atoms
  smt::FormulaPtr instantiated_contract; // P over object-named atoms
  bool instantiable = true;   // all contract paths resolved to locations
  bool concrete_violation = false;  // P false on the live concrete state
  bool symbolic_violation = false;  // sat(π ∧ ¬P): a missing-check path
  bool inconclusive = false;  // the π ∧ ¬P query came back kUnknown (budget)
  std::string witness;              // model of π ∧ ¬P when symbolically violated
  /// Structured form of `witness` (object-identity variable names), kept so
  /// the counterexample narrator can replay the model without re-parsing.
  std::map<std::string, bool> witness_bools;
  std::map<std::string, std::int64_t> witness_ints;
};

struct RunResult {
  bool test_passed = false;
  std::string failure;                 // populated when !test_passed
  /// Structured resource outcomes — distinct from test failure so the
  /// checker can account them as inconclusive rather than broken:
  bool step_limit_hit = false;         // engine fuel ran out mid-test
  bool budget_exhausted = false;       // the attached Budget cut the run off
  std::string degraded_reason;         // which resource ran out
  std::vector<TargetHit> hits;
  std::int64_t branches_total = 0;     // branch decisions executed
  std::int64_t branches_recorded = 0;  // decisions recorded into π
  std::int64_t stmts_executed = 0;

  /// True when any structured degradation occurred during the run.
  [[nodiscard]] bool degraded() const {
    if (step_limit_hit || budget_exhausted) return true;
    for (const TargetHit& hit : hits)
      if (hit.inconclusive) return true;
    return false;
  }
};

class Engine {
 public:
  /// `program` must outlive the engine.
  explicit Engine(const minilang::Program& program);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `test_name` under `config`. Deterministic.
  [[nodiscard]] RunResult run_test(const std::string& test_name, const CheckConfig& config);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lisa::concolic
