file(REMOVE_RECURSE
  "liblisa_analysis.a"
)
