# Empty compiler generated dependencies file for lisa_smt.
# This may be replaced when dependencies are built.
