// Structural diff between two MiniLang program versions.
//
// The mock LLM reasons over "the code patch (the diff)" exactly like the
// paper's prompt. Rather than a textual line diff, LISA diffs at statement
// granularity: for each function present in both versions, statements are
// compared by canonical header text (multiset semantics), yielding the
// added/removed statements with their enclosing function — which is what
// guard-extraction needs.
#pragma once

#include <string>
#include <vector>

#include "minilang/ast.hpp"

namespace lisa::corpus {

struct DiffEntry {
  std::string function;               // enclosing function name
  const minilang::Stmt* stmt = nullptr;  // borrowed from the owning Program
  std::string text;                   // canonical header text
};

struct ProgramDiff {
  std::vector<DiffEntry> added;       // statements only in `after`
  std::vector<DiffEntry> removed;     // statements only in `before`
  std::vector<std::string> added_functions;
  std::vector<std::string> removed_functions;

  [[nodiscard]] bool empty() const {
    return added.empty() && removed.empty() && added_functions.empty() &&
           removed_functions.empty();
  }
};

/// Computes the structural diff. Pointers in `added` borrow from `after`;
/// pointers in `removed` borrow from `before`.
[[nodiscard]] ProgramDiff diff_programs(const minilang::Program& before,
                                        const minilang::Program& after);

/// Renders a unified-diff-like text summary (for reports and tickets).
[[nodiscard]] std::string render_diff(const ProgramDiff& diff);

}  // namespace lisa::corpus
