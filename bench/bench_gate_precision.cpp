// CI-gate precision/recall over a simulated commit stream.
//
// The paper's vision stands or falls on the gate being trustworthy in both
// directions: it must block every commit that re-opens a fixed failure class
// (recall) and must not harass developers on unrelated changes (precision).
// This bench replays a seeded stream of commits against the fully-fixed
// ZK-1208 codebase:
//   * benign commits  — new functions, new entry points, new tests,
//   * regressing ones — a guard deleted (the classic refactoring accident)
//     or a new unguarded path to the protected operation (the ZK-1496 shape),
// and reports the confusion matrix.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace {

using namespace lisa;

const char* kGuard = "  if (s.is_closing) {\n    throw \"SessionClosingException\";\n  }\n";

std::string fully_fixed_base() {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  std::string source = ticket->patched_source;
  const std::string anchor =
      "  let i = 0;\n  while (i < len(paths)) {\n    create_ephemeral_node(";
  const std::size_t pos = source.find(anchor);
  source.insert(pos, kGuard);  // the eventual ZK-1496 fix
  return source;
}

struct Commit {
  std::string source;
  bool regressing = false;
  std::string kind;
};

Commit make_commit(const std::string& base, support::Rng& rng, int index) {
  Commit commit;
  commit.source = base;
  switch (rng.next_below(5)) {
    case 0:
      commit.kind = "benign: helper function";
      commit.source += "\nfn audit_" + std::to_string(index) +
                       "(n: int) -> int { print(\"audit\", n); return n; }\n";
      break;
    case 1:
      commit.kind = "benign: new entry point";
      commit.source += "\n@entry\nfn health_check_" + std::to_string(index) +
                       "(server: Server) -> int { return len(keys(server.tree.nodes)); }\n";
      break;
    case 2:
      commit.kind = "benign: new test";
      commit.source += "\n@test\nfn test_generated_" + std::to_string(index) +
                       "() { assert(1 + 1 == 2, \"math\"); }\n";
      break;
    case 3: {
      commit.kind = "REGRESSING: guard deleted";
      commit.regressing = true;
      // Delete one of the two closing-session guards (refactoring accident).
      std::size_t pos = commit.source.find(kGuard);
      if (rng.next_bool() && pos != std::string::npos) {
        const std::size_t second = commit.source.find(kGuard, pos + 1);
        if (second != std::string::npos) pos = second;
      }
      commit.source.erase(pos, std::string(kGuard).size());
      break;
    }
    default:
      commit.kind = "REGRESSING: new unguarded path";
      commit.regressing = true;
      commit.source += "\n@entry\nfn register_watcher_" + std::to_string(index) +
                       "(server: Server, session_id: int, path: string) {\n"
                       "  let s = get_session(server, session_id);\n"
                       "  if (s == null) {\n    throw \"SessionExpiredException\";\n  }\n"
                       "  create_ephemeral_node(server, path, \"watcher\", session_id);\n"
                       "}\n";
      break;
  }
  return commit;
}

struct Confusion {
  int true_positives = 0;   // regressing blocked
  int false_negatives = 0;  // regressing admitted (!)
  int false_positives = 0;  // benign blocked (!)
  int true_negatives = 0;   // benign admitted
};

Confusion run_stream(int commits, std::uint64_t seed) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  core::TranslationResult translation = core::translate(proposal, ticket->system);
  core::ContractStore store;
  store.add_all(std::move(translation.contracts));
  core::CheckOptions options;
  options.run_concolic = false;
  const core::CiGate gate(options);

  const std::string base = fully_fixed_base();
  support::Rng rng(seed);
  Confusion confusion;
  for (int i = 0; i < commits; ++i) {
    const Commit commit = make_commit(base, rng, i);
    const bool blocked = !gate.evaluate(commit.source, store).allowed;
    if (commit.regressing && blocked) ++confusion.true_positives;
    if (commit.regressing && !blocked) ++confusion.false_negatives;
    if (!commit.regressing && blocked) ++confusion.false_positives;
    if (!commit.regressing && !blocked) ++confusion.true_negatives;
  }
  return confusion;
}

void print_confusion_table() {
  std::printf("=== CI-gate precision/recall over a mutated commit stream ===\n\n");
  std::printf("%8s %6s | %9s %9s %9s %9s | %9s %9s\n", "commits", "seed", "TP", "FN",
              "FP", "TN", "recall", "precision");
  for (const auto& [commits, seed] :
       std::vector<std::pair<int, std::uint64_t>>{{40, 7}, {40, 21}, {120, 42}}) {
    const Confusion c = run_stream(commits, seed);
    const double recall =
        c.true_positives + c.false_negatives > 0
            ? static_cast<double>(c.true_positives) / (c.true_positives + c.false_negatives)
            : 1.0;
    const double precision =
        c.true_positives + c.false_positives > 0
            ? static_cast<double>(c.true_positives) / (c.true_positives + c.false_positives)
            : 1.0;
    std::printf("%8d %6llu | %9d %9d %9d %9d | %8.0f%% %8.0f%%\n", commits,
                static_cast<unsigned long long>(seed), c.true_positives,
                c.false_negatives, c.false_positives, c.true_negatives, 100 * recall,
                100 * precision);
  }
  std::printf("\nshape check: every guard-deletion and every new unguarded path is\n"
              "blocked (recall 100%%) while benign helpers, entry points, and tests\n"
              "pass untouched (precision 100%%) — the property that makes enforcement\n"
              "deployable in CI.\n\n");
}

void BM_CommitStream(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_stream(static_cast<int>(state.range(0)), 7).true_positives);
  state.counters["commits"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CommitStream)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_confusion_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
