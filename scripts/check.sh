#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [--sanitize]
#   --sanitize   build with -fsanitize=address,undefined (LISA_SANITIZE=ON)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
SANITIZE=OFF
if [[ "${1:-}" == "--sanitize" ]]; then
  SANITIZE=ON
  BUILD_DIR=build-asan
fi

cmake -B "$BUILD_DIR" -S . -DLISA_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
