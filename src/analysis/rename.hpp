// Frame-qualified renaming of formula variables.
//
// Execution paths cross function boundaries; a guard `s.is_closing` inside
// `touch_session` and a guard `req.session.is_closing` inside its caller may
// or may not denote the same storage. LISA canonicalizes every variable to a
// frame-qualified name: parameters are substituted through the call-site
// argument map (so data that flows through calls unifies), while locals are
// prefixed with their owning function ("touch_session::s"). This mirrors the
// paper's step of "mapping the condition's placeholders to concrete
// variables" before Z3 comparison.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "smt/formula.hpp"

namespace lisa::analysis {

/// The marker a frame map uses for parameters bound to non-path arguments
/// (e.g. `touch(make_session())`): their callee-side contents cannot be
/// expressed in caller terms.
inline constexpr const char* kOpaqueRoot = "!opaque";

/// Maps local variable roots of one frame to canonical names. Roots absent
/// from the map are locals and canonicalize to "<frame>::<root>".
struct FrameMap {
  std::string frame;                         // function name
  std::map<std::string, std::string> roots;  // param root → canonical path (or kOpaqueRoot)
};

/// Canonicalizes one variable name ("s.ttl", "s#null") under `map`.
/// Returns kOpaqueRoot when the variable's root maps to an opaque argument.
[[nodiscard]] std::string canonical_var(const std::string& var, const FrameMap& map);

/// Renames every variable in `f` via `rename`. If `rename` returns
/// kOpaqueRoot for a variable, the atom collapses to an unconstrained opaque
/// boolean variable (unique per original spelling).
[[nodiscard]] smt::FormulaPtr rename_formula(
    const smt::FormulaPtr& f, const std::function<std::string(const std::string&)>& rename);

/// Convenience: rename_formula under a FrameMap.
[[nodiscard]] smt::FormulaPtr rename_formula(const smt::FormulaPtr& f, const FrameMap& map);

/// True if any variable of `f` would canonicalize to an opaque root.
[[nodiscard]] bool has_opaque_root(const smt::FormulaPtr& f, const FrameMap& map);

}  // namespace lisa::analysis
