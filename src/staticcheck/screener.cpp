#include "staticcheck/screener.hpp"

#include <utility>

#include "analysis/paths.hpp"
#include "obs/trace.hpp"
#include "smt/solver.hpp"
#include "staticcheck/concurrency.hpp"
#include "staticcheck/dataflow.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace lisa::staticcheck {

using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;
using smt::Atom;
using smt::CmpOp;
using smt::Formula;
using smt::FormulaPtr;

const char* screen_verdict_name(ScreenVerdict verdict) {
  switch (verdict) {
    case ScreenVerdict::kProvedSafe: return "proved-safe";
    case ScreenVerdict::kProvedViolated: return "proved-violated";
    case ScreenVerdict::kUnknown: return "unknown";
  }
  return "?";
}

Screener::Screener(const Program& program, bool use_summaries)
    : program_(&program), graph_(analysis::CallGraph::build(program)) {
  if (!use_summaries) return;
  try {
    summaries_ = SummaryMap::compute(program, graph_);
  } catch (const std::exception& error) {
    // Summaries only strengthen facts; losing them degrades the screener to
    // its summary-free (PR 2) precision instead of taking the pipeline down.
    support::log(support::LogLevel::warn,
                 "summary computation failed, screening without summaries: ",
                 error.what());
    summaries_.reset();
  }
}

const Cfg& Screener::cfg_for(const FuncDecl& fn) const {
  const auto it = cfgs_.find(&fn);
  if (it != cfgs_.end()) return it->second;
  return cfgs_.emplace(&fn, Cfg::build(fn)).first->second;
}

const SliceEngine& Screener::slicer() const {
  if (!slicer_.has_value()) slicer_.emplace(*program_, graph_, summaries());
  return *slicer_;
}

FormulaPtr Screener::facts_at(const FuncDecl& fn, const Stmt* stmt) const {
  return facts_at(fn, stmt, obs::CaptureHandle{});
}

FormulaPtr Screener::facts_at(const FuncDecl& fn, const Stmt* stmt,
                              const obs::CaptureHandle& capture) const {
  const Cfg& cfg = cfg_for(fn);
  const int node = cfg.node_of(stmt);
  if (node < 0) return Formula::truth(true);

  const auto record = [&](const char* analysis, std::string fact) {
    if (!capture.active()) return;
    obs::FactEvidence evidence;
    evidence.analysis = analysis;
    evidence.function = fn.name;
    evidence.line = stmt->loc.line;
    evidence.column = stmt->loc.column;
    evidence.fact = std::move(fact);
    capture.fact(std::move(evidence));
  };

  std::vector<FormulaPtr> facts;

  NullnessAnalysis nullness(*program_, summaries());
  const auto null_result = run_forward(cfg, nullness);
  if (null_result.reached[static_cast<std::size_t>(node)]) {
    for (const auto& [path, fact] : null_result.in[static_cast<std::size_t>(node)]) {
      record("nullness", path + (fact == NullFact::kNull ? " = null" : " = non-null"));
      FormulaPtr is_null = Formula::make_atom(Atom::bool_var(path + "#null"));
      facts.push_back(fact == NullFact::kNull ? std::move(is_null)
                                              : Formula::negate(std::move(is_null)));
    }
  }

  IntervalAnalysis intervals(*program_, summaries());
  const auto interval_result = run_forward(cfg, intervals);
  if (interval_result.reached[static_cast<std::size_t>(node)]) {
    for (const auto& [path, range] : interval_result.in[static_cast<std::size_t>(node)]) {
      if (range.lo != Interval::kMin) {
        record("intervals", path + " >= " + std::to_string(range.lo));
        facts.push_back(Formula::make_atom(Atom::cmp_const(path, CmpOp::kGe, range.lo)));
      }
      if (range.hi != Interval::kMax) {
        record("intervals", path + " <= " + std::to_string(range.hi));
        facts.push_back(Formula::make_atom(Atom::cmp_const(path, CmpOp::kLe, range.hi)));
      }
    }
  }

  return facts.empty() ? Formula::truth(true) : Formula::conj(std::move(facts));
}

namespace {

/// Summary evidence for a target function: the interprocedural facts that
/// strengthened the dataflow analyses above. Rendered compactly so the
/// ledger stays readable.
void record_summary_evidence(const obs::CaptureHandle& capture,
                             const SummaryMap* summaries, const FuncDecl& fn) {
  if (!capture.active() || summaries == nullptr) return;
  const FunctionSummary* summary = summaries->find(fn.name);
  if (summary == nullptr) return;

  const auto join = [](const std::set<std::string>& items) {
    std::string out;
    for (const std::string& item : items) {
      if (!out.empty()) out += ", ";
      out += item;
    }
    return out;
  };

  std::string text = "mod-fields {" + join(summary->mod_fields) + "}";
  text += summary->may_throw ? "; may-throw" : "; no-throw";
  text += summary->may_block ? "; may-block" : "; no-block";
  if (summary->opaque_effects) text += "; opaque-effects";
  for (const auto& [path, fact] : summary->nullness_on_return) {
    text += "; on-return " + path + (fact == NullFact::kNull ? " = null" : " = non-null");
  }
  for (const auto& [path, fact] : summary->boundary_nullness) {
    text += "; boundary " + path + (fact == NullFact::kNull ? " = null" : " = non-null");
  }

  obs::FactEvidence evidence;
  evidence.analysis = "summary";
  evidence.function = fn.name;
  evidence.fact = std::move(text);
  capture.fact(std::move(evidence));
}

}  // namespace

bool Screener::slice_closure_refutes(const std::string& target_fragment,
                                     const FormulaPtr& condition,
                                     const ScreenOptions& options,
                                     obs::PhasedSmtCapture& smt_capture) const {
  // The rule leans on the same interprocedural facts as the fact closure:
  // without summaries every call havocs the depgraph and the slice degrades.
  if (summaries() == nullptr) return false;

  SliceRequest request;
  request.kind = SliceRequest::Kind::kStatePredicate;
  request.target_fragment = target_fragment;
  request.condition = condition;
  // A ProvedSafe verdict can skip the concolic replay, so the cone must
  // cover @test drivers: a test constructing the footprint and calling the
  // target is as verdict-relevant as any production caller.
  request.include_tests = true;
  const SliceResult sliced = slicer().slice(request);
  if (sliced.degraded || sliced.footprint.empty()) return false;

  // Every footprint path must be a depth-1 field of one shared root local
  // ("s.closed"), so a single construction characterizes the whole
  // footprint.
  std::string root;
  for (const std::string& path : sliced.footprint) {
    const auto dot = path.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == path.size()) return false;
    if (path.find('.', dot + 1) != std::string::npos) return false;
    const std::string path_root = path.substr(0, dot);
    if (root.empty())
      root = path_root;
    else if (root != path_root)
      return false;
  }

  // No write into the footprint anywhere in the cone other than fully
  // literal constructions — a field store or an unknown call effect abstains.
  for (const SliceWriteSite& site : sliced.footprint_writes)
    if (!site.literal_construction) return false;

  // At every target the root must be bound exclusively to literal
  // constructions. A reaching parameter or call-produced binding means the
  // object may arrive from a frame the construction facts do not cover.
  const auto targets = analysis::find_target_statements(*program_, target_fragment);
  if (targets.empty()) return false;
  std::vector<std::pair<const Definition*, const FuncDecl*>> candidates;
  std::set<const Definition*> seen;
  for (const auto& [fn, stmt] : targets) {
    const FuncDepGraph& dep = slicer().depgraph_for(*fn);
    if (dep.degraded) return false;
    const int node = dep.cfg.node_of(stmt);
    if (node < 0) return false;
    bool any_binding = false;
    for (const std::size_t def_index : dep.reach_in[static_cast<std::size_t>(node)]) {
      const Definition& def = dep.defs[def_index];
      if (!def.may_write(root)) continue;
      if (def.kind != Definition::Kind::kLet && def.kind != Definition::Kind::kAssign)
        return false;
      if (def.stmt == nullptr) return false;
      const minilang::Expr* rhs = def.kind == Definition::Kind::kLet
                                      ? def.stmt->expr.get()
                                      : def.stmt->expr2.get();
      if (rhs == nullptr || !is_literal_new(*rhs)) return false;
      any_binding = true;
      if (seen.insert(&def).second) candidates.emplace_back(&def, fn);
    }
    if (!any_binding) return false;
  }

  // Each candidate construction's field facts must make ¬P unsatisfiable:
  // then any interleaving of constructions and reads satisfies the contract.
  // Field encoding mirrors facts_at (values plus "#null" indicators);
  // fields whose initializer or default the fragment cannot express (strings,
  // lists, maps) contribute no fact, which only weakens the refutation.
  smt::Solver solver;
  if (options.capture.active()) solver.set_capture(&smt_capture);
  const FormulaPtr not_p = Formula::negate(condition);
  for (const auto& [def, fn] : candidates) {
    const minilang::Expr* ctor =
        def->kind == Definition::Kind::kLet ? def->stmt->expr.get() : def->stmt->expr2.get();
    const minilang::StructDecl* decl = program_->find_struct(ctor->text);
    if (decl == nullptr) return false;
    std::vector<FormulaPtr> facts;
    facts.push_back(Formula::negate(Formula::make_atom(Atom::bool_var(root + "#null"))));
    for (const minilang::FieldDecl& field : decl->fields) {
      const std::string path = root + "." + field.name;
      const minilang::Expr* init = nullptr;
      for (std::size_t i = 0; i < ctor->field_names.size() && i < ctor->args.size(); ++i)
        if (ctor->field_names[i] == field.name) init = ctor->args[i].get();
      const FormulaPtr non_null =
          Formula::negate(Formula::make_atom(Atom::bool_var(path + "#null")));
      if (init != nullptr) {
        switch (init->kind) {
          case minilang::Expr::Kind::kIntLit:
            facts.push_back(
                Formula::make_atom(Atom::cmp_const(path, CmpOp::kEq, init->int_value)));
            facts.push_back(non_null);
            break;
          case minilang::Expr::Kind::kBoolLit: {
            FormulaPtr value = Formula::make_atom(Atom::bool_var(path));
            facts.push_back(init->bool_value ? std::move(value)
                                             : Formula::negate(std::move(value)));
            facts.push_back(non_null);
            break;
          }
          case minilang::Expr::Kind::kNullLit:
            facts.push_back(Formula::make_atom(Atom::bool_var(path + "#null")));
            break;
          default:
            break;
        }
      } else {
        // Omitted fields default per the interpreter (interp.cpp kNew).
        switch (field.type->kind) {
          case minilang::Type::Kind::kInt:
            facts.push_back(Formula::make_atom(Atom::cmp_const(path, CmpOp::kEq, 0)));
            facts.push_back(non_null);
            break;
          case minilang::Type::Kind::kBool:
            facts.push_back(
                Formula::negate(Formula::make_atom(Atom::bool_var(path))));
            facts.push_back(non_null);
            break;
          case minilang::Type::Kind::kStruct:
          case minilang::Type::Kind::kAny:
            facts.push_back(Formula::make_atom(Atom::bool_var(path + "#null")));
            break;
          default:
            break;
        }
      }
    }
    const smt::SolveResult closed =
        solver.solve(Formula::conj2(Formula::conj(std::move(facts)), not_p));
    // Unknown never counts: an unanswered query must not ground ProvedSafe.
    if (closed.sat() || closed.unknown()) return false;
  }

  if (options.capture.active()) {
    for (const auto& [def, fn] : candidates) {
      obs::FactEvidence evidence;
      evidence.analysis = "slice";
      evidence.function = fn->name;
      evidence.line = def->loc.line;
      evidence.column = def->loc.column;
      evidence.fact = "construction of '" + root +
                      "' satisfies the contract; the slice has no other write "
                      "to the footprint";
      options.capture.fact(std::move(evidence));
    }
  }
  return true;
}

ScreenResult Screener::screen_state_predicate(const std::string& target_fragment,
                                              const FormulaPtr& condition,
                                              const ScreenOptions& options) const {
  obs::ScopedSpan span("screen.state_predicate");
  span.attr("target", target_fragment);
  const support::Stopwatch timer;
  ScreenResult result;
  if (condition == nullptr) {
    result.reason = "contract has no decidable condition";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  const auto targets = analysis::find_target_statements(*program_, target_fragment);
  result.targets = targets.size();
  if (targets.empty()) {
    result.reason = "no statement matches the target fragment";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  // Dataflow facts per target statement, in target-local names (the same
  // vocabulary `condition` is written in).
  std::map<const Stmt*, FormulaPtr> target_facts;
  std::set<const FuncDecl*> target_fns;
  for (const auto& [fn, stmt] : targets) {
    target_facts[stmt] = facts_at(*fn, stmt, options.capture);
    if (target_fns.insert(fn).second)
      record_summary_evidence(options.capture, summaries(), *fn);
  }

  // Fact closure (summaries only): ¬P unsatisfiable under the facts at
  // every target statement. Strong enough to settle a contract even when
  // the guard-only tree cannot map some paths — the facts are a fixpoint
  // over *all* paths, so no execution can reach a target with ¬P true.
  // Without summaries the facts are too weak for this to fire soundly
  // (call-site havoc erases exactly the cross-function guarantees needed).
  obs::PhasedSmtCapture smt_capture(options.capture.ledger, options.capture.capture,
                                    "screen");
  const auto facts_refute_everywhere = [&]() -> bool {
    if (summaries() == nullptr) return false;
    smt::Solver closure_solver;
    if (options.capture.active()) closure_solver.set_capture(&smt_capture);
    const FormulaPtr not_p = Formula::negate(condition);
    for (const auto& [stmt, facts] : target_facts) {
      const smt::SolveResult closed = closure_solver.solve(Formula::conj2(facts, not_p));
      // An unknown result never counts as a refutation: claiming ProvedSafe
      // off a solver that refused to answer would silence real violations.
      if (closed.sat() || closed.unknown()) return false;
    }
    return true;
  };

  // The guard-only execution tree — deliberately the exact abstraction the
  // path checker decides, so "all paths verify" here implies the checker
  // reports zero violations.
  analysis::TreeOptions tree_options;
  tree_options.max_paths = options.max_paths;
  tree_options.prune_irrelevant = options.prune_irrelevant;
  tree_options.contract_condition = condition;
  const analysis::ExecutionTree tree =
      analysis::build_execution_tree(*program_, graph_, target_fragment, tree_options);
  result.paths_checked = tree.paths.size();

  if (tree.truncated) {
    result.reason = "path enumeration truncated at " + std::to_string(options.max_paths);
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }
  if (tree.paths.empty()) {
    if (facts_refute_everywhere()) {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason = "dataflow facts refute the contract's complement at every target";
    } else if (slice_closure_refutes(target_fragment, condition, options, smt_capture)) {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason =
          "slice: no write reaches the contract footprint and every "
          "construction satisfies the predicate";
    } else {
      result.reason = "no entry->target path to screen";
    }
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  smt::Solver solver;
  if (options.capture.active()) solver.set_capture(&smt_capture);
  const FormulaPtr not_condition = Formula::negate(condition);
  bool any_unmappable = false;
  bool any_facts_refuted = false;
  bool any_unknown = false;
  for (const analysis::ExecutionPath& path : tree.paths) {
    if (!path.mappable) {
      any_unmappable = true;
      continue;
    }
    const smt::SolveResult sat = solver.solve(
        Formula::conj2(path.condition, Formula::negate(path.renamed_contract)));
    if (sat.unknown()) {
      any_unknown = true;
      continue;
    }
    if (!sat.sat()) continue;  // path verifies

    // The guard-only condition misses assignment effects; require the
    // dataflow facts at the target to be consistent with ¬P before trusting
    // the violation. Refuted witnesses fall back to Unknown (full check).
    const auto facts = target_facts.find(path.target);
    const FormulaPtr fact_formula =
        facts == target_facts.end() ? Formula::truth(true) : facts->second;
    const smt::SolveResult confirmed =
        solver.solve(Formula::conj2(fact_formula, not_condition));
    if (confirmed.unknown()) {
      any_unknown = true;
      continue;
    }
    if (!confirmed.sat()) {
      any_facts_refuted = true;
      continue;
    }

    result.verdict = ScreenVerdict::kProvedViolated;
    std::string chain;
    for (const std::string& fn : path.call_chain) {
      if (!chain.empty()) chain += " -> ";
      chain += fn;
    }
    result.witness = chain + " | " + sat.model.to_string();
    result.reason = "path condition admits the contract's complement";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  if (any_unknown) {
    // A refused query means some path was never decided; any ProvedSafe
    // claim from here would rest on the undecided remainder.
    result.reason = "solver inconclusive on some path (budget or fault)";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  if (any_unmappable) {
    // Every mappable path verified; only unmappable ones stand between us
    // and ProvedSafe. A facts-refuted mappable path would signal that the
    // guard-only tree and the facts disagree — leave those to the checker.
    if (!any_facts_refuted && facts_refute_everywhere()) {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason =
          "unmappable paths closed: dataflow facts refute the contract's "
          "complement at every target";
    } else if (!any_facts_refuted &&
               slice_closure_refutes(target_fragment, condition, options, smt_capture)) {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason =
          "unmappable paths closed: slice shows no write reaches the "
          "contract footprint and every construction satisfies the predicate";
    } else {
      result.reason = "contract variables unmappable on some path";
    }
  } else if (any_facts_refuted) {
    result.reason = "violating paths refuted by dataflow facts";
  } else {
    result.verdict = ScreenVerdict::kProvedSafe;
    result.reason = "every entry->target path verifies";
  }
  result.elapsed_ms = timer.elapsed_ms();
  return result;
}

ScreenResult Screener::screen_structural() const {
  return screen_structural(ScreenOptions{});
}

ScreenResult Screener::screen_structural(const ScreenOptions& options) const {
  obs::ScopedSpan span("screen.structural");
  const support::Stopwatch timer;
  ScreenResult result;
  for (const FuncDecl& fn : program_->functions) {
    const Cfg& cfg = cfg_for(fn);
    LockStateAnalysis locks(*program_, graph_, summaries());
    const auto fixpoint = run_forward(cfg, locks);
    locks.report(cfg, fixpoint.in, fixpoint.reached, result.diagnostics);
  }
  if (options.capture.active()) {
    for (const Diagnostic& diagnostic : result.diagnostics) {
      obs::FactEvidence evidence;
      evidence.analysis = diagnostic.analysis;
      evidence.function = diagnostic.function;
      evidence.line = diagnostic.loc.line;
      evidence.column = diagnostic.loc.column;
      evidence.fact = diagnostic.message;
      options.capture.fact(std::move(evidence));
    }
  }
  if (result.diagnostics.empty()) {
    result.verdict = ScreenVerdict::kProvedSafe;
    result.reason = "no blocking call reachable while a monitor is held";
  } else {
    result.verdict = ScreenVerdict::kProvedViolated;
    result.witness = result.diagnostics.front().render();
    result.reason = std::to_string(result.diagnostics.size()) +
                    " blocking call(s) reachable while a monitor is held";
  }
  result.elapsed_ms = timer.elapsed_ms();
  return result;
}

ScreenResult Screener::screen_interleaving(const std::string& pattern,
                                           const std::string& target_fragment,
                                           const std::string& condition_text,
                                           const ScreenOptions& options) const {
  obs::ScopedSpan span("screen.interleaving");
  span.attr("pattern", pattern);
  const support::Stopwatch timer;
  ScreenResult result;
  if (summaries() == nullptr) {
    result.reason = "interprocedural summaries unavailable";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  const LockGraph lock_graph = LockGraph::build(*program_, graph_, *summaries());
  const auto record = [&](const char* analysis, std::string function, int line,
                          int column, std::string fact) {
    if (!options.capture.active()) return;
    obs::FactEvidence evidence;
    evidence.analysis = analysis;
    evidence.function = std::move(function);
    evidence.line = line;
    evidence.column = column;
    evidence.fact = std::move(fact);
    options.capture.fact(std::move(evidence));
  };
  for (const LockOrderEdge& edge : lock_graph.edges)
    record("lock-graph", edge.function, edge.line, edge.column,
           "'" + edge.first + "' -> '" + edge.second + "'" +
               (edge.via.empty() ? "" : " (via " + edge.via + ")"));

  if (pattern == "lock_order_acyclic") {
    if (!lock_graph.cycles.empty()) {
      result.verdict = ScreenVerdict::kProvedViolated;
      result.witness = lock_graph.cycles.front().render();
      result.reason = std::to_string(lock_graph.cycles.size()) +
                      " lock-order cycle(s) in the acquisition graph";
      result.diagnostics = deadlock_diagnostics(lock_graph);
    } else if (lock_graph.degraded) {
      result.reason = "a summary degraded to conservative: edge set incomplete";
    } else {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason = "lock-acquisition-order graph is acyclic over " +
                      std::to_string(lock_graph.edges.size()) + " edge(s)";
    }
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  if (pattern == "guarded_field") {
    // condition_text carries the guard as "holds(<monitor>)".
    std::string guard = condition_text;
    const auto open = guard.find("holds(");
    const auto close = guard.rfind(')');
    if (open != std::string::npos && close != std::string::npos && close > open + 6)
      guard = guard.substr(open + 6, close - open - 6);
    if (guard.empty() || guard == condition_text) {
      result.reason = "guarded_field contract names no monitor";
      result.elapsed_ms = timer.elapsed_ms();
      return result;
    }

    const auto fields = shared_field_accesses(*program_, graph_, *summaries());
    const auto found = fields.find(target_fragment);
    if (found == fields.end() || found->second.sites.empty()) {
      result.reason = "no root-reachable access of field '" + target_fragment + "'";
      result.elapsed_ms = timer.elapsed_ms();
      return result;
    }
    const FieldAccesses& accesses = found->second;
    result.targets = accesses.sites.size();
    for (const auto& [root, site] : accesses.sites) {
      std::string locks;
      for (const std::string& monitor : site.lockset) {
        if (!locks.empty()) locks += ", ";
        locks += monitor;
      }
      record("lockset", site.function, site.line, site.column,
             std::string(site.is_write ? "write" : "read") + " of '" +
                 target_fragment + "' holds {" + locks + "} (root " + root + ")");
    }
    // A concretely uncovered site refutes the contract even when the site
    // set is otherwise incomplete — the witness access is real.
    for (const auto& [root, site] : accesses.sites) {
      if (lockset_covers(site.lockset, guard)) continue;
      result.verdict = ScreenVerdict::kProvedViolated;
      result.witness = site.function + ":" + std::to_string(site.line) + ":" +
                       std::to_string(site.column) + " " +
                       (site.is_write ? "writes" : "reads") + " '" +
                       target_fragment + "' without '" + guard +
                       "' (thread root " + root + ")";
      result.reason = "an access site does not hold the guard monitor";
      Diagnostic diagnostic;
      diagnostic.analysis = "race";
      diagnostic.severity = Severity::kError;
      diagnostic.function = site.function;
      diagnostic.loc = {site.line, site.column};
      diagnostic.message = std::string(site.is_write ? "write" : "read") +
                           " of field '" + target_fragment + "' without monitor '" +
                           guard + "' held (thread root " + root + ")";
      result.diagnostics.push_back(std::move(diagnostic));
      result.elapsed_ms = timer.elapsed_ms();
      return result;
    }
    if (accesses.truncated) {
      result.reason = "field access summary truncated: coverage unprovable";
    } else if (!lock_graph.acyclic()) {
      result.reason =
          "every access holds the guard but the lock graph is not provably "
          "acyclic";
    } else {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason = "every root-reachable access of '" + target_fragment +
                      "' holds '" + guard + "' and the lock graph is acyclic";
    }
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  result.reason = "unknown interleaving pattern '" + pattern + "'";
  result.elapsed_ms = timer.elapsed_ms();
  return result;
}

}  // namespace lisa::staticcheck
