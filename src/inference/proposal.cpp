#include "inference/proposal.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "support/log.hpp"

namespace lisa::inference {

using support::Json;
using support::JsonArray;
using support::JsonObject;

Json SemanticsProposal::to_json() const {
  JsonObject root;
  root["case_id"] = case_id;
  root["high_level_semantics"] = high_level_semantics;
  JsonArray lows;
  for (const LowLevelSemantics& low : low_level) {
    JsonObject entry;
    entry["description"] = low.description;
    entry["target_statement"] = low.target_statement;
    entry["condition_statement"] = low.condition_statement;
    lows.push_back(Json(std::move(entry)));
  }
  root["low_level_semantics"] = Json(std::move(lows));
  root["reasoning"] = reasoning;
  root["kind"] = kind == corpus::SemanticsKind::kStatePredicate ? "state_predicate"
                 : kind == corpus::SemanticsKind::kStructuralPattern
                     ? "structural_pattern"
                     : "interleaving_sensitive";
  if (!pattern.empty()) root["pattern"] = pattern;
  return Json(std::move(root));
}

SemanticsProposal SemanticsProposal::from_json(const Json& json) {
  SemanticsProposal proposal;
  proposal.case_id = json.get_string("case_id");
  proposal.high_level_semantics = json.get_string("high_level_semantics");
  proposal.reasoning = json.get_string("reasoning");
  const std::string kind_text = json.get_string("kind");
  proposal.kind = kind_text == "structural_pattern"
                      ? corpus::SemanticsKind::kStructuralPattern
                  : kind_text == "interleaving_sensitive"
                      ? corpus::SemanticsKind::kInterleavingSensitive
                      : corpus::SemanticsKind::kStatePredicate;
  proposal.pattern = json.get_string("pattern");
  if (json.has("low_level_semantics")) {
    for (const Json& entry : json.at("low_level_semantics").as_array()) {
      LowLevelSemantics low;
      low.description = entry.get_string("description");
      low.target_statement = entry.get_string("target_statement");
      low.condition_statement = entry.get_string("condition_statement");
      proposal.low_level.push_back(std::move(low));
    }
  }
  return proposal;
}

std::string validate_proposal(const SemanticsProposal& proposal,
                              const std::string& expected_case_id) {
  if (!expected_case_id.empty() && proposal.case_id != expected_case_id)
    return "case id mismatch: expected " + expected_case_id + ", got '" +
           proposal.case_id + "'";
  if ((proposal.kind == corpus::SemanticsKind::kStructuralPattern ||
       proposal.kind == corpus::SemanticsKind::kInterleavingSensitive) &&
      proposal.pattern.empty())
    return "structural proposal names no pattern";
  for (std::size_t i = 0; i < proposal.low_level.size(); ++i) {
    const LowLevelSemantics& low = proposal.low_level[i];
    if (low.target_statement.empty())
      return "low-level semantics " + std::to_string(i) + " has no target statement";
    if (low.condition_statement.empty())
      return "low-level semantics " + std::to_string(i) + " has no condition statement";
  }
  return "";
}

InferenceOutcome infer_with_retry(const std::function<SemanticsProposal()>& attempt,
                                  const std::string& ticket_id,
                                  const RetryPolicy& policy) {
  InferenceOutcome outcome;
  obs::MetricsRegistry& registry = obs::metrics();
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  double backoff_ms = policy.initial_backoff_ms;
  for (int round = 1; round <= max_attempts; ++round) {
    ++outcome.attempts;
    registry.counter("infer.attempts").add();
    try {
      SemanticsProposal proposal = attempt();
      const std::string problem = validate_proposal(proposal, ticket_id);
      if (problem.empty()) {
        if (round > 1) registry.counter("infer.recovered").add();
        outcome.proposal = std::move(proposal);
        outcome.succeeded = true;
        outcome.error.clear();
        return outcome;
      }
      ++outcome.validation_failures;
      registry.counter("infer.validation_failures").add();
      outcome.error = "malformed proposal: " + problem;
    } catch (const InferenceError& error) {
      outcome.error = error.what();
      if (!error.transient()) {
        registry.counter("infer.terminal_errors").add();
        return outcome;
      }
      ++outcome.transient_errors;
      registry.counter("infer.transient_errors").add();
    }
    if (round == max_attempts) break;
    registry.counter("infer.retries").add();
    support::log(support::LogLevel::info, "inference retry ", round, "/",
                 max_attempts - 1, " for ", ticket_id, ": ", outcome.error);
    if (policy.sleep_between_attempts && backoff_ms > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::int64_t>(backoff_ms)));
    backoff_ms *= policy.backoff_multiplier;
  }
  registry.counter("infer.exhausted").add();
  support::log(support::LogLevel::warn, "inference gave up on ", ticket_id, " after ",
               outcome.attempts, " attempt(s): ", outcome.error);
  return outcome;
}

}  // namespace lisa::inference
