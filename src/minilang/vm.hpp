// Stack-based bytecode VM for MiniLang — the fast execution engine.
//
// Observationally equivalent to the tree-walking Interp (enforced by
// differential property tests); used where throughput matters: the CI gate
// replays whole test suites on every commit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "minilang/bytecode.hpp"
#include "minilang/interp.hpp"
#include "minilang/value.hpp"

namespace lisa::minilang {

class Vm {
 public:
  /// `module` (and the Program it borrows) must outlive the VM.
  explicit Vm(const Module& module);

  /// Calls a compiled function by name. Throws MiniThrow for uncaught
  /// MiniLang exceptions and InterpError for engine errors.
  Value call(const std::string& function, std::vector<Value> args);

  /// Runs one @test function; mirrors Interp::run_test.
  bool run_test(const std::string& test_name);
  std::pair<int, int> run_all_tests();
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  [[nodiscard]] std::string take_output() { return std::exchange(output_, std::string()); }
  void set_now_ms(std::int64_t ms) { now_ms_ = ms; }
  [[nodiscard]] std::int64_t now_ms() const { return now_ms_; }
  void set_blocking_latency_ms(std::int64_t ms) { blocking_latency_ms_ = ms; }
  void set_fuel(std::int64_t fuel) { fuel_limit_ = fuel; }
  void set_observer(ExecObserver* observer) { observer_ = observer; }

  /// Instructions executed since construction (throughput metric).
  [[nodiscard]] std::int64_t instructions_executed() const { return executed_; }

 private:
  struct Frame {
    const Chunk* chunk;
    std::size_t ip;
    std::size_t base;          // stack index of slot 0
    int sync_base;             // sync depth on entry
    std::size_t handler_base;  // handler-stack size on entry
  };
  struct Handler {
    std::size_t frame_index;
    std::size_t ip;
    std::size_t stack_size;
    int catch_slot;
    int sync_depth;
  };

  Value run(int chunk_index, std::vector<Value> args);
  void unwind(Value thrown);
  [[noreturn]] void engine_error(const std::string& message);

  const Module& module_;
  std::vector<Value> stack_;
  std::vector<Frame> frames_;
  std::vector<Handler> handlers_;
  std::string output_;
  std::string last_error_;
  std::int64_t now_ms_ = 0;
  std::int64_t blocking_latency_ms_ = 5;
  std::int64_t fuel_limit_ = 20'000'000;
  std::int64_t executed_ = 0;
  int sync_depth_ = 0;
  std::uint64_t next_object_id_ = 1;
  ExecObserver* observer_ = nullptr;
};

}  // namespace lisa::minilang
