// Unit tests for the MiniLang interpreter: evaluation, control flow,
// builtins, exceptions, the virtual clock, and the blocking observer.
#include <gtest/gtest.h>

#include "minilang/interp.hpp"
#include "minilang/sema.hpp"

namespace lisa::minilang {
namespace {

Value run(const std::string& body_program, const std::string& fn = "main",
          std::vector<Value> args = {}) {
  static std::vector<std::unique_ptr<Program>> keepalive;
  keepalive.push_back(std::make_unique<Program>(parse_checked(body_program)));
  Interp interp(*keepalive.back());
  return interp.call(fn, std::move(args));
}

TEST(Interp, ArithmeticAndComparison) {
  EXPECT_EQ(run("fn main() -> int { return (2 + 3) * 4 - 10 / 2; }").as_int(), 15);
  EXPECT_TRUE(run("fn main() -> bool { return 7 % 3 == 1; }").as_bool());
  EXPECT_TRUE(run("fn main() -> bool { return \"abc\" < \"abd\"; }").as_bool());
  EXPECT_EQ(run("fn main() -> string { return \"n=\" + 4; }").as_string(), "n=4");
}

TEST(Interp, ShortCircuitEvaluation) {
  // Division by zero on the right side must not evaluate when short-circuited.
  EXPECT_FALSE(
      run("fn main() -> bool { let x = 0; return x != 0 && 10 / x > 1; }").as_bool());
  EXPECT_TRUE(
      run("fn main() -> bool { let x = 0; return x == 0 || 10 / x > 1; }").as_bool());
}

TEST(Interp, WhileLoopAndBreakContinue) {
  const std::string program = R"(
fn main() -> int {
  let total = 0;
  let i = 0;
  while (true) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    total = total + i;
  }
  return total;
}
)";
  EXPECT_EQ(run(program).as_int(), 25);  // 1+3+5+7+9
}

TEST(Interp, StructsAndFieldMutation) {
  const std::string program = R"(
struct Point { x: int; y: int; }
fn bump(p: Point) { p.x = p.x + 1; }
fn main() -> int {
  let p = new Point { x: 1, y: 2 };
  bump(p);
  bump(p);
  return p.x * 10 + p.y;
}
)";
  EXPECT_EQ(run(program).as_int(), 32);  // reference semantics
}

TEST(Interp, DefaultFieldInitialization) {
  const std::string program = R"(
struct S { n: int; b: bool; s: string; xs: list<int>; m: map<string, int>; ref: S?; }
fn main() -> bool {
  let s = new S {};
  return s.n == 0 && s.b == false && s.s == "" && len(s.xs) == 0 && len(s.m) == 0
      && s.ref == null;
}
)";
  EXPECT_TRUE(run(program).as_bool());
}

TEST(Interp, ListAndMapBuiltins) {
  const std::string program = R"(
fn main() -> int {
  let xs = list_new();
  push(xs, 10);
  push(xs, 20);
  xs[1] = 25;
  let m = map_new();
  put(m, "a", 1);
  put(m, 7, 2);
  let ks = keys(m);
  let total = xs[0] + xs[1] + len(ks);
  if (has(m, "a")) { total = total + get(m, "a"); }
  del(m, "a");
  if (get(m, "a") == null) { total = total + 100; }
  if (contains(xs, 25)) { total = total + 1000; }
  return total;
}
)";
  EXPECT_EQ(run(program).as_int(), 1138);
}

TEST(Interp, NullPointerBecomesMiniThrow) {
  const std::string program = R"(
struct S { x: int; }
fn main() -> int { let s: S? = null; return s.x; }
)";
  EXPECT_THROW(run(program), MiniThrow);
}

TEST(Interp, IndexOutOfBoundsThrows) {
  EXPECT_THROW(run("fn main() -> int { let xs = list_new(); return xs[0]; }"), MiniThrow);
}

TEST(Interp, DivideByZeroThrows) {
  EXPECT_THROW(run("fn main() -> int { let z = 0; return 1 / z; }"), MiniThrow);
}

TEST(Interp, TryCatchHandlesThrow) {
  const std::string program = R"(
fn risky(n: int) -> int {
  if (n > 2) { throw "too big"; }
  return n;
}
fn main() -> string {
  try {
    let v = risky(5);
    return "no throw";
  } catch (e) {
    return "caught: " + e;
  }
}
)";
  EXPECT_EQ(run(program).as_string(), "caught: too big");
}

TEST(Interp, UncaughtThrowEscapesToHost) {
  try {
    run("fn main() { throw \"kaboom\"; }");
    FAIL() << "expected MiniThrow";
  } catch (const MiniThrow& thrown) {
    EXPECT_EQ(thrown.value().as_string(), "kaboom");
  }
}

TEST(Interp, RecursionWorksAndDepthIsBounded) {
  const std::string fib = R"(
fn fib(n: int) -> int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
)";
  Program program = parse_checked(fib);
  Interp interp(program);
  EXPECT_EQ(interp.call("fib", {Value::of_int(12)}).as_int(), 144);

  Program runaway = parse_checked("fn loop_forever(n: int) -> int { return loop_forever(n); }");
  Interp interp2(runaway);
  EXPECT_THROW(interp2.call("loop_forever", {Value::of_int(0)}), InterpError);
}

TEST(Interp, FuelLimitStopsInfiniteLoops) {
  Program program = parse_checked("fn main() { while (true) { advance_clock(1); } }");
  Interp interp(program);
  interp.set_fuel(10'000);
  EXPECT_THROW(interp.call("main", {}), InterpError);
}

TEST(Interp, VirtualClockAdvances) {
  Program program = parse_checked(R"(
fn main() -> int {
  let t0 = now();
  advance_clock(250);
  write_record(t0, "x");
  return now() - t0;
}
)");
  Interp interp(program);
  interp.set_blocking_latency_ms(7);
  EXPECT_EQ(interp.call("main", {}).as_int(), 257);
}

class BlockingObserver : public ExecObserver {
 public:
  void on_blocking(const std::string& name, int sync_depth) override {
    events.emplace_back(name, sync_depth);
  }
  std::vector<std::pair<std::string, int>> events;
};

TEST(Interp, ObserverSeesBlockingInsideSync) {
  Program program = parse_checked(R"(
struct Lock { id: int; }
fn main() {
  let l = new Lock { id: 1 };
  write_record(l, "outside");
  sync (l) {
    write_record(l, "inside");
  }
}
)");
  Interp interp(program);
  BlockingObserver observer;
  interp.set_observer(&observer);
  interp.call("main", {});
  ASSERT_EQ(observer.events.size(), 2u);
  EXPECT_EQ(observer.events[0].second, 0);
  EXPECT_EQ(observer.events[1].second, 1);
}

TEST(Interp, PrintAccumulatesOutput) {
  Program program = parse_checked(R"(fn main() { print("a", 1); print("b"); })");
  Interp interp(program);
  interp.call("main", {});
  EXPECT_EQ(interp.take_output(), "a 1\nb\n");
  EXPECT_EQ(interp.take_output(), "");
}

TEST(Interp, RunAllTestsCountsPassAndFail) {
  Program program = parse_checked(R"(
@test
fn test_ok() { assert(1 + 1 == 2, "math"); }
@test
fn test_fails() { assert(false, "expected failure"); }
fn helper() {}
)");
  Interp interp(program);
  const auto [passed, failed] = interp.run_all_tests();
  EXPECT_EQ(passed, 1);
  EXPECT_EQ(failed, 1);
  EXPECT_NE(interp.last_error().find("expected failure"), std::string::npos);
}

TEST(Interp, CoverageTracksExecutedStatements) {
  Program program = parse_checked(R"(
fn main(flag: bool) -> int {
  if (flag) {
    return 1;
  }
  return 2;
}
)");
  Interp interp(program);
  interp.call("main", {Value::of_bool(true)});
  const std::size_t after_true = interp.covered_stmts().size();
  interp.call("main", {Value::of_bool(false)});
  EXPECT_GT(interp.covered_stmts().size(), after_true);
}

TEST(Interp, MethodSugarDispatch) {
  const std::string program = R"(
struct Counter { n: int; }
fn inc(c: Counter, by: int) -> int {
  c.n = c.n + by;
  return c.n;
}
fn main() -> int {
  let c = new Counter { n: 5 };
  return c.inc(3);
}
)";
  EXPECT_EQ(run(program).as_int(), 8);
}

}  // namespace
}  // namespace lisa::minilang
