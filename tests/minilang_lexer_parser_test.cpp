// Unit tests for the MiniLang lexer, parser, printer, and semantic checker.
#include <gtest/gtest.h>

#include "minilang/lexer.hpp"
#include "minilang/parser.hpp"
#include "minilang/printer.hpp"
#include "minilang/sema.hpp"

namespace lisa::minilang {
namespace {

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  const auto tokens = lex("fn x() { let a = 1 <= 2 && !b; }");
  std::vector<TokenKind> kinds;
  for (const Token& token : tokens) kinds.push_back(token.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kFn);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kLe), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kAndAnd), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kBang), kinds.end());
}

TEST(Lexer, SkipsComments) {
  const auto tokens = lex("// a comment\nfn f() {} // trailing");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFn);
}

TEST(Lexer, StringEscapes) {
  const auto tokens = lex(R"("a\n\"b\"")");
  ASSERT_EQ(tokens[0].kind, TokenKind::kStrLit);
  EXPECT_EQ(tokens[0].text, "a\n\"b\"");
}

TEST(Lexer, TracksLineNumbers) {
  const auto tokens = lex("fn\nf\n()");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(lex("fn f() { a # b; }"), LexError);
  EXPECT_THROW(lex("\"unterminated"), LexError);
  EXPECT_THROW(lex("a & b"), LexError);
}

TEST(Parser, ParsesStructAndFunction) {
  const Program program = parse(R"(
struct S { x: int; y: bool; nested: S?; items: list<int>; table: map<string, S>; }
@entry
fn f(s: S, n: int) -> bool {
  return s.x == n;
}
)");
  ASSERT_EQ(program.structs.size(), 1u);
  EXPECT_EQ(program.structs[0].fields.size(), 5u);
  EXPECT_TRUE(program.structs[0].fields[2].type->nullable);
  ASSERT_EQ(program.functions.size(), 1u);
  EXPECT_TRUE(program.functions[0].has_annotation("entry"));
  EXPECT_EQ(program.functions[0].return_type->kind, Type::Kind::kBool);
}

TEST(Parser, OperatorPrecedence) {
  const ExprPtr expr = parse_expression("a + b * c == d && e || f");
  // Top-level must be ||.
  ASSERT_EQ(expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(expr->bin_op, BinOp::kOr);
  EXPECT_EQ(expr_text(*expr), "((((a + (b * c)) == d) && e) || f)");
}

TEST(Parser, MethodCallSugarDesugarsToCall) {
  const ExprPtr expr = parse_expression("server.touch(1, x.y)");
  ASSERT_EQ(expr->kind, Expr::Kind::kCall);
  EXPECT_EQ(expr->text, "touch");
  ASSERT_EQ(expr->args.size(), 3u);
  EXPECT_EQ(expr_text(*expr->args[0]), "server");
  EXPECT_EQ(expr_text(*expr->args[2]), "x.y");
}

TEST(Parser, StatementKinds) {
  const Program program = parse(R"(
fn g(n: int) -> int {
  let total = 0;
  let i = 0;
  while (i < n) {
    if (i % 2 == 0) {
      total = total + i;
    } else {
      total = total - 1;
    }
    i = i + 1;
  }
  sync (total) {
    total = total * 2;
  }
  try {
    throw "boom";
  } catch (e) {
    total = total + 1;
  }
  return total;
}
)");
  const FuncDecl& fn = program.functions[0];
  EXPECT_EQ(fn.body.size(), 6u);
  EXPECT_EQ(fn.body[2]->kind, Stmt::Kind::kWhile);
  EXPECT_EQ(fn.body[3]->kind, Stmt::Kind::kSync);
  EXPECT_EQ(fn.body[4]->kind, Stmt::Kind::kTry);
}

TEST(Parser, AssignsUniqueStatementIds) {
  const Program program = parse("fn f() { let a = 1; let b = 2; if (a == b) { a = 3; } }");
  std::set<int> ids;
  program.for_each_stmt([&](const FuncDecl&, const Stmt& stmt) { ids.insert(stmt.id); });
  EXPECT_EQ(ids.size(), 4u);  // all distinct
}

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_THROW(parse("fn f( { }"), ParseError);
  EXPECT_THROW(parse("struct S { x }"), ParseError);
  EXPECT_THROW(parse("fn f() { 1 = 2; }"), ParseError);
  EXPECT_THROW(parse_expression("a +"), ParseError);
  EXPECT_THROW(parse_expression("a b"), ParseError);
}

TEST(Printer, RoundTripIsStable) {
  const std::string source = R"(
struct S { x: int; }
fn f(s: S?) -> int {
  if (s == null) {
    return 0 - 1;
  }
  return s.x;
}
)";
  const Program once = parse(source);
  const std::string printed = program_text(once);
  const Program twice = parse(printed);
  EXPECT_EQ(printed, program_text(twice));
}

TEST(Printer, StmtHeaderText) {
  const Program program = parse("fn f(x: int) { if (x > 3) { return; } }");
  EXPECT_EQ(stmt_header_text(*program.functions[0].body[0]), "if ((x > 3))");
}

TEST(Sema, CleanProgramHasNoDiagnostics) {
  const Program program = parse("fn f(x: int) -> int { let y = x + 1; return y; }");
  EXPECT_TRUE(check(program).empty());
}

TEST(Sema, ReportsUnknownVariable) {
  const Program program = parse("fn f() { let y = ghost; }");
  const auto diags = check(program);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("ghost"), std::string::npos);
}

TEST(Sema, ReportsUnknownFunctionAndArity) {
  const Program program = parse("fn f(x: int) { f(1, 2); nothere(); }");
  const auto diags = check(program);
  EXPECT_EQ(diags.size(), 2u);
}

TEST(Sema, ReportsUnknownStructAndField) {
  const Program program =
      parse("struct S { x: int; } fn f() { let a = new S { y: 1 }; let b = new T {}; }");
  const auto diags = check(program);
  EXPECT_EQ(diags.size(), 2u);
}

TEST(Sema, ScopingLetIsBlockLocal) {
  const Program program = parse("fn f(c: bool) { if (c) { let y = 1; } let z = y; }");
  EXPECT_FALSE(check(program).empty());
}

TEST(Sema, CatchVariableInScope) {
  const Program program = parse(R"(fn f() { try { throw "x"; } catch (e) { print(e); } })");
  EXPECT_TRUE(check(program).empty());
}

TEST(Sema, ParseCheckedThrowsOnDiagnostics) {
  EXPECT_THROW(parse_checked("fn f() { let y = ghost; }"), std::runtime_error);
  EXPECT_NO_THROW(parse_checked("fn f() { let y = 1; }"));
}

}  // namespace
}  // namespace lisa::minilang
